//! Correctness of the page-major fused batch executor: every query of a
//! fused batch must produce the bit-identical outcome — results, documents,
//! activity counters, modelled latency and energy — of running that query
//! alone through `ReisSystem::search` / `ivf_search`, across edge cases
//! (batch of one, duplicate queries, candidate counts past the corpus
//! size), mutated and compacted indexes, every `ScanParallelism` setting,
//! and random flash geometries.

use proptest::prelude::*;

use reis_core::{
    BatchFusion, CompactionPolicy, ReisConfig, ReisSystem, ScanParallelism, SearchOutcome,
    VectorDatabase,
};
use reis_nand::Geometry;
use reis_ssd::SsdConfig;

fn vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| (((i * 17 + d * 11) % 29) as f32 - 14.0) / 6.0)
                .collect()
        })
        .collect()
}

fn documents(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("doc {i}").into_bytes()).collect()
}

/// Full-outcome equality modulo the raw error-injection counter, which
/// tracks the device RNG's position in its stream (TLC rerank reads of a
/// batch draw from different points than a standalone query would). Every
/// modelled quantity — including energy, which is derived from the other
/// counters — must agree exactly.
fn assert_outcome_eq(a: &SearchOutcome, b: &SearchOutcome, ctx: &str) {
    assert_eq!(a.results, b.results, "results: {ctx}");
    assert_eq!(a.documents, b.documents, "documents: {ctx}");
    assert_eq!(a.latency, b.latency, "latency: {ctx}");
    assert_eq!(a.activity, b.activity, "activity: {ctx}");
    assert_eq!(a.energy, b.energy, "energy: {ctx}");
    let mut fa = a.flash_stats;
    let mut fb = b.flash_stats;
    fa.injected_bit_errors = 0;
    fb.injected_bit_errors = 0;
    assert_eq!(fa, fb, "flash stats: {ctx}");
}

/// Run the batch both fused and per-query-sequentially on `system` and
/// compare every outcome (brute force when `nprobe` is `None`).
fn check_batch(
    system: &mut ReisSystem,
    db_id: u32,
    queries: &[Vec<f32>],
    k: usize,
    nprobe: Option<usize>,
    workers: usize,
    ctx: &str,
) {
    let sequential: Vec<SearchOutcome> = queries
        .iter()
        .map(|q| match nprobe {
            Some(np) => system.ivf_search_with_nprobe(db_id, q, k, np).unwrap(),
            None => system.search(db_id, q, k).unwrap(),
        })
        .collect();
    let batch = match nprobe {
        Some(np) => system
            .ivf_search_batch_with_nprobe(db_id, queries, k, np, workers)
            .unwrap(),
        None => system.search_batch(db_id, queries, k, workers).unwrap(),
    };
    assert_eq!(batch.len(), sequential.len(), "{ctx}");
    for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
        assert_outcome_eq(b, s, &format!("{ctx}, query {i}"));
    }
}

#[test]
fn fused_batch_matches_sequential_for_brute_force_and_ivf() {
    let mut system = ReisSystem::new(ReisConfig::tiny());
    let all = vectors(160, 64);
    let db = VectorDatabase::ivf(&all, documents(160), 8).unwrap();
    let id = system.deploy(&db).unwrap();
    let queries: Vec<Vec<f32>> = (0..7).map(|q| all[q * 19].clone()).collect();
    check_batch(&mut system, id, &queries, 10, None, 4, "brute force");
    check_batch(&mut system, id, &queries, 10, Some(4), 4, "ivf nprobe 4");
}

#[test]
fn fused_batch_of_one_matches_single_search() {
    let mut system = ReisSystem::new(ReisConfig::tiny());
    let all = vectors(96, 64);
    let db = VectorDatabase::flat(&all, documents(96)).unwrap();
    let id = system.deploy(&db).unwrap();
    let queries = vec![all[33].clone()];
    check_batch(&mut system, id, &queries, 5, None, 1, "batch of one");
    check_batch(
        &mut system,
        id,
        &queries,
        5,
        None,
        8,
        "batch of one, 8 workers",
    );
}

#[test]
fn fused_batch_with_duplicate_queries() {
    let mut system = ReisSystem::new(ReisConfig::tiny());
    let all = vectors(120, 64);
    let db = VectorDatabase::ivf(&all, documents(120), 6).unwrap();
    let id = system.deploy(&db).unwrap();
    // The same embedding three times plus two distinct ones.
    let queries = vec![
        all[7].clone(),
        all[50].clone(),
        all[7].clone(),
        all[7].clone(),
        all[91].clone(),
    ];
    check_batch(
        &mut system,
        id,
        &queries,
        5,
        None,
        2,
        "duplicates, brute force",
    );
    check_batch(&mut system, id, &queries, 5, Some(3), 2, "duplicates, ivf");
    // Duplicates must also agree with each other exactly.
    let batch = system.search_batch(id, &queries, 5, 2).unwrap();
    assert_outcome_eq(&batch[0], &batch[2], "duplicate 0 vs 2");
    assert_outcome_eq(&batch[0], &batch[3], "duplicate 0 vs 3");
}

#[test]
fn fused_batch_with_candidate_count_beyond_the_corpus() {
    // rerank_factor (10) × k (10) = 100 candidates requested from a
    // 24-entry corpus: the Temporal Top List never fills its quickselect
    // capacity, and every live entry becomes a candidate.
    let mut system = ReisSystem::new(ReisConfig::tiny());
    let all = vectors(24, 64);
    let db = VectorDatabase::flat(&all, documents(24)).unwrap();
    let id = system.deploy(&db).unwrap();
    let queries: Vec<Vec<f32>> = (0..5).map(|q| all[q * 4].clone()).collect();
    check_batch(&mut system, id, &queries, 10, None, 2, "k beyond corpus");
    let outcome = &system.search_batch(id, &queries, 10, 2).unwrap()[0];
    assert!(!outcome.results.is_empty());
    // Every filter-passing entry became a candidate — far fewer than the
    // 100 requested, and bounded by the corpus size.
    assert!(outcome.activity.rerank_candidates <= 24);
    assert_eq!(
        outcome.results.len(),
        10usize.min(outcome.activity.rerank_candidates)
    );
}

#[test]
fn fused_batch_over_mutated_and_compacted_index() {
    let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());
    let mut system = ReisSystem::new(config);
    let all = vectors(96, 64);
    let db = VectorDatabase::ivf(&all, documents(96), 4).unwrap();
    let id = system.deploy(&db).unwrap();

    // Dirty the index: segment appends, tombstones, a revival.
    let fresh = vectors(8, 64);
    let ids = system
        .insert_batch(
            id,
            &fresh,
            (0..8).map(|i| format!("fresh {i}").into_bytes()).collect(),
        )
        .unwrap()
        .ids;
    system.delete(id, 11).unwrap();
    system.delete(id, ids[2]).unwrap();
    system.upsert(id, ids[3], &fresh[5], b"rewritten").unwrap();

    let queries: Vec<Vec<f32>> = (0..4)
        .map(|q| all[q * 23].clone())
        .chain(fresh.iter().take(2).cloned())
        .collect();
    check_batch(&mut system, id, &queries, 5, None, 2, "dirty, brute force");
    check_batch(&mut system, id, &queries, 5, Some(3), 2, "dirty, ivf");
    // Adaptive everywhere exercises the grouped segment pass under IVF.
    let mut adaptive = ReisSystem::new(
        ReisConfig::tiny()
            .with_compaction(CompactionPolicy::manual())
            .with_adaptive_filtering(true),
    );
    let adaptive_id = adaptive.deploy(&db).unwrap();
    adaptive
        .insert_batch(
            adaptive_id,
            &fresh,
            (0..8).map(|i| format!("fresh {i}").into_bytes()).collect(),
        )
        .unwrap();
    adaptive.delete(adaptive_id, 11).unwrap();
    check_batch(
        &mut adaptive,
        adaptive_id,
        &queries,
        5,
        Some(3),
        2,
        "dirty, ivf, adaptive-all",
    );

    // A freshly compacted index fuses over its new dense generation.
    system.compact(id).unwrap();
    check_batch(
        &mut system,
        id,
        &queries,
        5,
        None,
        2,
        "compacted, brute force",
    );
    check_batch(&mut system, id, &queries, 5, Some(3), 2, "compacted, ivf");
}

#[test]
fn fused_batch_composes_with_intra_query_sharding() {
    // Static thresholds (adaptation off) let the fused union scan shard
    // across channel/die workers; results stay bit-identical.
    let config = ReisConfig::tiny()
        .with_adaptive_filtering(false)
        .with_scan_parallelism(ScanParallelism::sharded(4).with_min_pages_per_shard(1));
    let mut system = ReisSystem::new(config);
    let all = vectors(160, 64);
    let db = VectorDatabase::ivf(&all, documents(160), 8).unwrap();
    let id = system.deploy(&db).unwrap();
    let queries: Vec<Vec<f32>> = (0..6).map(|q| all[q * 13].clone()).collect();
    check_batch(&mut system, id, &queries, 10, None, 4, "sharded fused, bf");
    check_batch(
        &mut system,
        id,
        &queries,
        10,
        Some(4),
        4,
        "sharded fused, ivf",
    );
}

#[test]
fn fused_and_replica_batches_return_identical_outcomes() {
    let all = vectors(120, 64);
    let db = VectorDatabase::ivf(&all, documents(120), 6).unwrap();
    let queries: Vec<Vec<f32>> = (0..5).map(|q| all[q * 21].clone()).collect();
    let mut fused = ReisSystem::new(ReisConfig::tiny());
    let fused_id = fused.deploy(&db).unwrap();
    let mut replicas = ReisSystem::new(ReisConfig::tiny().with_batch_fusion(BatchFusion::Replicas));
    let replica_id = replicas.deploy(&db).unwrap();
    let a = fused.search_batch(fused_id, &queries, 5, 3).unwrap();
    let b = replicas.search_batch(replica_id, &queries, 5, 3).unwrap();
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_outcome_eq(x, y, &format!("fused vs replicas, query {i}"));
    }
}

proptest! {
    /// The fused batch executor is bit-identical to per-query sequential
    /// search across random flash geometries, database shapes, mutation
    /// traces and scan-parallelism settings, for both brute-force and IVF
    /// batches.
    #[test]
    fn fused_batch_matches_sequential_across_geometries_and_mutations(
        channels in 1usize..4,
        dies in 1usize..3,
        planes in 1usize..3,
        entries in 16usize..40,
        dim_words in 1usize..3,
        shards in 1usize..4,
        mutations in 0usize..10,
        seed in 0usize..1_000,
    ) {
        let dim = dim_words * 32;
        let geometry = Geometry {
            channels,
            dies_per_channel: dies,
            planes_per_die: planes,
            blocks_per_plane: 8,
            pages_per_block: 8,
            page_size_bytes: 4096,
            oob_size_bytes: 256,
        };
        let ssd = SsdConfig { geometry, ..SsdConfig::tiny() };
        let parallelism = if shards == 1 {
            ScanParallelism::sequential()
        } else {
            ScanParallelism::sharded(shards).with_min_pages_per_shard(1)
        };
        let config = ReisConfig { ssd, ..ReisConfig::tiny() }
            .with_compaction(CompactionPolicy::manual())
            .with_scan_parallelism(parallelism);

        let all = vectors(entries, dim);
        let nlist = 4usize.min(entries / 4).max(1);
        let db = VectorDatabase::ivf(&all, documents(entries), nlist).expect("database");
        let mut system = ReisSystem::new(config);
        let id = system.deploy(&db).expect("deploy");

        // A deterministic little mutation trace: inserts, deletes, upserts.
        let mut live_extra = Vec::new();
        for m in 0..mutations {
            let x = (seed * 31 + m * 7) % 10;
            let vector: Vec<f32> = (0..dim)
                .map(|d| (((m * 13 + d * 5 + seed) % 19) as f32 - 9.0) / 4.0)
                .collect();
            if x < 5 {
                let outcome = system
                    .insert(id, &vector, format!("ins {m}").into_bytes())
                    .expect("insert");
                live_extra.push(outcome.ids[0]);
            } else if x < 7 {
                let target = ((seed + m * 3) % entries) as u32;
                // Deleting an already-deleted id is an error; ignore those.
                let _ = system.delete(id, target);
            } else {
                let target = ((seed + m * 5) % entries) as u32;
                let _ = system.upsert(id, target, &vector, format!("ups {m}").as_bytes());
            }
        }

        let queries: Vec<Vec<f32>> = (0..4).map(|q| all[(seed + q * 11) % entries].clone()).collect();
        let sequential: Vec<SearchOutcome> = queries
            .iter()
            .map(|q| system.search(id, q, 5).expect("sequential"))
            .collect();
        let batch = system.search_batch(id, &queries, 5, shards).expect("fused batch");
        for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            prop_assert_eq!(&b.results, &s.results, "results, query {}", i);
            prop_assert_eq!(&b.documents, &s.documents, "documents, query {}", i);
            prop_assert_eq!(&b.latency, &s.latency, "latency, query {}", i);
            prop_assert_eq!(&b.activity, &s.activity, "activity, query {}", i);
        }
        let nprobe = nlist.min(2);
        let ivf_sequential: Vec<SearchOutcome> = queries
            .iter()
            .map(|q| system.ivf_search_with_nprobe(id, q, 5, nprobe).expect("sequential ivf"))
            .collect();
        let ivf_batch = system
            .ivf_search_batch_with_nprobe(id, &queries, 5, nprobe, shards)
            .expect("fused ivf batch");
        for (i, (b, s)) in ivf_batch.iter().zip(&ivf_sequential).enumerate() {
            prop_assert_eq!(&b.results, &s.results, "ivf results, query {}", i);
            prop_assert_eq!(&b.documents, &s.documents, "ivf documents, query {}", i);
            prop_assert_eq!(&b.latency, &s.latency, "ivf latency, query {}", i);
            prop_assert_eq!(&b.activity, &s.activity, "ivf activity, query {}", i);
        }
    }
}
