//! Crash-recovery fault injection: a durably opened system driven through a
//! seeded mutation trace, killed at an arbitrary byte of its write stream,
//! must recover to exactly the *durable prefix* of that history — every
//! mutation whose WAL frame fully reached storage, none after the first
//! that did not — and answer searches bit-identically to a from-scratch
//! deployment of the prefix's survivors, under both sequential and sharded
//! scans. Recovery itself must never panic, whatever the crash point.

use proptest::prelude::*;

use reis_core::{
    CompactionPolicy, DurableStore, FaultHandle, FaultVfs, MemVfs, RecoveryReport, ReisConfig,
    ReisSystem, ScanParallelism, SearchOutcome, VectorDatabase,
};
use reis_workloads::{CrashSchedule, MutationMix, MutationOp, MutationTrace};

const DIM: usize = 32;
/// Initial documents are padded to this size so every trace-generated
/// document (sized `TRACE_DOC_BYTES`) fits the deployed document slots.
const INIT_DOC_BYTES: usize = 40;
const TRACE_DOC_BYTES: usize = 32;
/// Fold the index every this many mutating operations, so the crash stream
/// also contains Compact frames.
const COMPACT_EVERY: usize = 7;

fn vector_for(id: u32, salt: u64) -> Vec<f32> {
    (0..DIM)
        .map(|d| {
            let x = (id as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(d as u64 * 0x85EB_CA6B)
                .wrapping_add(salt.wrapping_mul(0xC2B2_AE35));
            ((x >> 7) % 23) as f32 - 11.0
        })
        .collect()
}

fn doc_for(id: u32) -> Vec<u8> {
    let mut text = format!("doc {id} ");
    while text.len() < INIT_DOC_BYTES {
        text.push('.');
    }
    text.into_bytes()
}

/// One durably logged operation, replayable against the host-side mirror.
#[derive(Debug, Clone)]
enum Effective {
    Insert {
        id: u32,
        vector: Vec<f32>,
        document: Vec<u8>,
    },
    Delete {
        id: u32,
    },
    Upsert {
        id: u32,
        vector: Vec<f32>,
        document: Vec<u8>,
    },
    Compact,
}

/// Host-side mirror of the logical corpus in the system's scan order (base
/// survivors in storage order, then appends; compaction preserves this).
struct Mirror {
    order: Vec<u32>,
    versions: std::collections::HashMap<u32, (Vec<f32>, Vec<u8>)>,
}

impl Mirror {
    fn initial(entries: usize) -> Self {
        Mirror {
            order: (0..entries as u32).collect(),
            versions: (0..entries as u32)
                .map(|id| (id, (vector_for(id, 0), doc_for(id))))
                .collect(),
        }
    }

    fn apply(&mut self, op: &Effective) {
        match op {
            Effective::Insert {
                id,
                vector,
                document,
            }
            | Effective::Upsert {
                id,
                vector,
                document,
            } => {
                self.order.retain(|x| x != id);
                self.order.push(*id);
                self.versions
                    .insert(*id, (vector.clone(), document.clone()));
            }
            Effective::Delete { id } => {
                self.order.retain(|x| x != id);
                self.versions.remove(id);
            }
            Effective::Compact => {}
        }
    }

    fn rebuild_flat(&self, template: &VectorDatabase) -> Option<VectorDatabase> {
        if self.order.is_empty() {
            return None;
        }
        let vectors: Vec<Vec<f32>> = self
            .order
            .iter()
            .map(|id| self.versions[id].0.clone())
            .collect();
        let documents: Vec<Vec<u8>> = self
            .order
            .iter()
            .map(|id| self.versions[id].1.clone())
            .collect();
        Some(
            VectorDatabase::flat_with_quantizers(
                &vectors,
                documents,
                template.binary_quantizer().clone(),
                template.int8_quantizer().clone(),
            )
            .expect("reference rebuild"),
        )
    }
}

fn assert_equivalent(
    recovered: &SearchOutcome,
    reference: &SearchOutcome,
    order: &[u32],
    ctx: &str,
) {
    assert_eq!(
        recovered
            .results
            .iter()
            .map(|n| n.id as u32)
            .collect::<Vec<_>>(),
        reference
            .results
            .iter()
            .map(|n| order[n.id])
            .collect::<Vec<_>>(),
        "result ids: {ctx}"
    );
    let d_rec: Vec<f32> = recovered.results.iter().map(|n| n.distance).collect();
    let d_ref: Vec<f32> = reference.results.iter().map(|n| n.distance).collect();
    assert_eq!(d_rec, d_ref, "result distances: {ctx}");
    assert_eq!(recovered.documents, reference.documents, "documents: {ctx}");
}

/// Drive `trace` against a durably opened system, interleaving a manual
/// compaction every [`COMPACT_EVERY`] mutations. Returns, per *mutating*
/// op, the cumulative post-`base` bytes its WAL frame ends at, plus the op
/// itself in mirror-replayable form. The in-memory outcome is identical
/// whether or not a kill is armed (a dying VFS still returns `Ok`), so the
/// pilot and every crash run share this exact driver.
fn drive(
    system: &mut ReisSystem,
    db: u32,
    trace: &MutationTrace,
    handle: &FaultHandle,
    base: u64,
) -> (Vec<u64>, Vec<Effective>) {
    let mut marks = Vec::new();
    let mut effective: Vec<Effective> = Vec::new();
    let mutated = |system: &mut ReisSystem,
                   marks: &mut Vec<u64>,
                   effective: &mut Vec<Effective>,
                   op: Effective| {
        effective.push(op);
        marks.push(handle.bytes_written() - base);
        if effective.len().is_multiple_of(COMPACT_EVERY) {
            system.compact(db).expect("compact");
            effective.push(Effective::Compact);
            marks.push(handle.bytes_written() - base);
        }
    };
    for op in trace.ops() {
        match op {
            MutationOp::Insert { vector, document } => {
                let id = system
                    .insert(db, vector, document.clone())
                    .expect("insert")
                    .ids[0];
                mutated(
                    system,
                    &mut marks,
                    &mut effective,
                    Effective::Insert {
                        id,
                        vector: vector.clone(),
                        document: document.clone(),
                    },
                );
            }
            MutationOp::Delete { target } => {
                // Trace logical ids coincide with assigned stable ids: the
                // initial corpus gets 0..n-1 and inserts continue from n in
                // trace order on both sides.
                let id = *target as u32;
                system.delete(db, id).expect("delete");
                mutated(system, &mut marks, &mut effective, Effective::Delete { id });
            }
            MutationOp::Upsert {
                target,
                vector,
                document,
            } => {
                let id = *target as u32;
                system.upsert(db, id, vector, document).expect("upsert");
                mutated(
                    system,
                    &mut marks,
                    &mut effective,
                    Effective::Upsert {
                        id,
                        vector: vector.clone(),
                        document: document.clone(),
                    },
                );
            }
            MutationOp::Search { query } => {
                let hit = system.search(db, query, 5).expect("search under churn");
                assert!(hit.results.len() <= 5);
            }
        }
    }
    (marks, effective)
}

/// Open a fresh fault-wrapped store, deploy the initial corpus (which
/// checkpoints it as epoch 1), and return everything a run needs.
fn open_deployed(
    entries: usize,
    config: ReisConfig,
) -> (ReisSystem, u32, MemVfs, FaultHandle, u64, VectorDatabase) {
    let vectors: Vec<Vec<f32>> = (0..entries as u32).map(|id| vector_for(id, 0)).collect();
    let documents: Vec<Vec<u8>> = (0..entries as u32).map(doc_for).collect();
    let template = VectorDatabase::flat(&vectors, documents).expect("initial database");

    let mem = MemVfs::new();
    let (fault, handle) = FaultVfs::new(mem.clone());
    let store = DurableStore::new(Box::new(fault));
    let (mut system, report) = ReisSystem::open(config, store).expect("open fresh store");
    assert!(report.is_none(), "fresh store has nothing to recover");
    let db = system.deploy(&template).expect("deploy");
    assert_eq!(system.durable_seq(), Some(1), "deploy checkpoints epoch 1");
    let base = handle.bytes_written();
    (system, db, mem, handle, base, template)
}

/// The whole property for one `(trace, crash point, parallelism)` triple:
/// crash at byte `point` of the mutation stream, recover from the
/// survivors, check the report against the durable prefix, and check
/// search equivalence against a from-scratch rebuild of that prefix.
fn check_crash_point(
    entries: usize,
    trace: &MutationTrace,
    marks: &[u64],
    effective: &[Effective],
    point: u64,
    config: ReisConfig,
) {
    let total = marks.last().copied().unwrap_or(0);
    let (mut doomed, db, mem, handle, _base, template) = open_deployed(entries, config);
    handle.arm_kill_after(point);
    drive(&mut doomed, db, trace, &handle, 0);
    drop(doomed); // the crash

    let store = DurableStore::new(Box::new(mem.clone()));
    let (mut recovered, report): (ReisSystem, RecoveryReport) =
        ReisSystem::recover(config, store).expect("recovery must succeed from any crash point");

    // The durable prefix: every mutation whose frame fully landed.
    let durable = marks.iter().filter(|&&m| m <= point).count();
    assert_eq!(
        report.snapshot_seq, 1,
        "the pre-crash deploy checkpoint is the newest intact snapshot"
    );
    assert_eq!(report.snapshots_skipped, 0);
    assert_eq!(report.records_skipped_unknown_db, 0);
    assert_eq!(
        report.wal_records_applied, durable as u64,
        "replay applies exactly the durable prefix (crash at byte {point})"
    );
    assert_eq!(report.checkpoint_seq, 2, "recovery re-checkpoints");
    let torn = point > 0 && point < total && !marks.contains(&point);
    assert_eq!(
        report.quarantined.is_some(),
        torn,
        "a tail is quarantined iff the crash tore a frame (crash at byte {point})"
    );

    let mut mirror = Mirror::initial(entries);
    for op in &effective[..durable] {
        mirror.apply(op);
    }
    assert_eq!(
        recovered.database(db).expect("db survives").live_entries(),
        mirror.order.len(),
        "live entries after crash at byte {point}"
    );

    let reference_db = mirror
        .rebuild_flat(&template)
        .expect("trace never empties the corpus");
    let mut reference = ReisSystem::new(ReisConfig::tiny());
    let ref_id = reference.deploy(&reference_db).expect("reference deploy");
    for q in 0..3u32 {
        let query = vector_for(9_000 + q, 17);
        let a = recovered.search(db, &query, 5).expect("recovered search");
        let b = reference
            .search(ref_id, &query, 5)
            .expect("reference search");
        assert_equivalent(
            &a,
            &b,
            &mirror.order,
            &format!("crash byte {point}, query {q}"),
        );
    }
}

/// The crash points a trace run is checked at: the edges, seeded interior
/// bytes, and every frame boundary ±1 byte.
fn schedule_for(marks: &[u64], samples: usize, seed: u64) -> CrashSchedule {
    let total = marks.last().copied().unwrap_or(0);
    CrashSchedule::covering(total, samples, seed).with_boundaries(marks)
}

/// Exhaustive-at-the-boundaries deterministic run: one seeded trace, every
/// WAL frame boundary (±1 byte) plus seeded interior points, sequential
/// scan. This is the suite's anchor — a failure here replays exactly.
#[test]
fn recovery_matches_durable_prefix_at_every_frame_boundary() {
    let entries = 16;
    let trace = MutationTrace::generate(
        entries,
        DIM,
        TRACE_DOC_BYTES,
        20,
        MutationMix::churn_heavy(),
        0xC0FF_EE01,
    );
    let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());

    let (mut pilot, db, _mem, handle, base, _template) = open_deployed(entries, config);
    let (marks, effective) = drive(&mut pilot, db, &trace, &handle, base);
    assert!(
        marks.len() >= 10,
        "trace must produce a substantial mutation stream"
    );
    assert!(
        effective.iter().any(|op| matches!(op, Effective::Compact)),
        "the stream must contain Compact frames"
    );

    let schedule = schedule_for(&marks, 8, 0xC0FF_EE01);
    for &point in schedule.points() {
        check_crash_point(entries, &trace, &marks, &effective, point, config);
    }
}

/// The same anchor trace under intra-query sharded scans: the recovered
/// index must answer identically however the fine scan is partitioned.
#[test]
fn recovery_matches_durable_prefix_under_sharded_scans() {
    let entries = 14;
    let trace = MutationTrace::generate(
        entries,
        DIM,
        TRACE_DOC_BYTES,
        14,
        MutationMix::churn_heavy(),
        0xC0FF_EE02,
    );
    let config = ReisConfig::tiny()
        .with_scan_parallelism(ScanParallelism::sharded(3).with_min_pages_per_shard(1))
        .with_compaction(CompactionPolicy::manual());

    let (mut pilot, db, _mem, handle, base, _template) = open_deployed(entries, config);
    let (marks, effective) = drive(&mut pilot, db, &trace, &handle, base);

    let schedule = schedule_for(&marks, 4, 0xC0FF_EE02);
    for &point in schedule.points() {
        check_crash_point(entries, &trace, &marks, &effective, point, config);
    }
}

proptest! {
    /// Seeded traces of varying shape, killed at seeded crash points plus a
    /// few frame boundaries, recover to the durable prefix (sequential
    /// scan). `PROPTEST_CASES` scales this up in the CI recovery gate.
    #[test]
    fn recovery_matches_durable_prefix_at_seeded_points(
        seed in 0u64..1_000_000,
        entries in 8usize..18,
        ops in 6usize..14,
        churny in 0u8..2,
    ) {
        let mix = if churny == 1 { MutationMix::churn_heavy() } else { MutationMix::ingest_heavy() };
        let trace = MutationTrace::generate(entries, DIM, TRACE_DOC_BYTES, ops, mix, seed);
        let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());

        let (mut pilot, db, _mem, handle, base, _template) = open_deployed(entries, config);
        let (marks, effective) = drive(&mut pilot, db, &trace, &handle, base);

        // A lean schedule per case: edges + 3 seeded interior points + the
        // boundaries of one seeded frame; breadth comes from case count.
        let total = marks.last().copied().unwrap_or(0);
        let mut schedule = CrashSchedule::covering(total, 3, seed);
        if !marks.is_empty() {
            let pick = (seed as usize) % marks.len();
            schedule = schedule.with_boundaries(&marks[pick..=pick]);
        }
        for &point in schedule.points() {
            check_crash_point(entries, &trace, &marks, &effective, point, config);
        }
    }
}

/// A recovered system is fully live: it keeps accepting mutations, its id
/// sequence continues past every pre-crash assignment (durable or not, so
/// ids never collide with lost entries), and it can checkpoint and recover
/// again — crash, recover, crash, recover.
#[test]
fn recovered_system_stays_mutable_and_survives_a_second_crash() {
    let entries = 12;
    let trace = MutationTrace::generate(
        entries,
        DIM,
        TRACE_DOC_BYTES,
        12,
        MutationMix::ingest_heavy(),
        0xC0FF_EE03,
    );
    let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());

    let (mut pilot, db, _mem, handle, base, _template) = open_deployed(entries, config);
    let (marks, _effective) = drive(&mut pilot, db, &trace, &handle, base);
    let mid = marks[marks.len() / 2] + 3; // strictly inside a frame

    // First crash.
    let (mut doomed, db, mem, handle, _base, _template) = open_deployed(entries, config);
    handle.arm_kill_after(mid);
    drive(&mut doomed, db, &trace, &handle, 0);
    drop(doomed);

    let store = DurableStore::new(Box::new(mem.clone()));
    let (mut recovered, report) = ReisSystem::recover(config, store).expect("first recovery");
    assert!(
        report.quarantined.is_some(),
        "mid-frame crash tears a frame"
    );

    // Still mutable: a fresh insert gets an id past the initial corpus and
    // continuing the durable prefix's sequence (lost assignments are
    // legitimately reusable — the entries they named never became durable).
    let fresh = vector_for(7_777, 7);
    let id = recovered
        .insert(db, &fresh, doc_for(7_777))
        .expect("insert after recovery")
        .ids[0];
    assert!(
        id >= entries as u32,
        "post-recovery ids continue past the initial corpus"
    );
    let hit = recovered
        .search(db, &fresh, 1)
        .expect("search after recovery");
    assert_eq!(hit.results[0].id as u32, id);
    assert_eq!(hit.documents[0], doc_for(7_777));

    // Second crash: tear the WAL frame of a post-recovery delete, then
    // recover again — the insert above (logged before the kill) survives.
    let (fault, handle2) = FaultVfs::new(mem.clone());
    let checkpoint = {
        let store = DurableStore::new(Box::new(fault));
        let (mut second, _) = ReisSystem::recover(config, store).expect("reopen");
        let checkpoint = second.durable_seq().expect("durable");
        handle2.arm_kill_after(4); // tear the very next frame
        second.delete(db, id).expect("delete in memory");
        checkpoint
    };
    let store = DurableStore::new(Box::new(mem.clone()));
    let (mut third, report) = ReisSystem::recover(config, store).expect("second recovery");
    assert_eq!(report.snapshot_seq, checkpoint);
    assert!(
        report.quarantined.is_some(),
        "torn delete frame quarantined"
    );
    assert_eq!(report.wal_records_applied, 0);
    let hit = third
        .search(db, &fresh, 1)
        .expect("search after second recovery");
    assert_eq!(
        hit.results[0].id as u32, id,
        "the torn delete never happened"
    );
}
