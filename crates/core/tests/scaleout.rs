//! Multi-device scale-out bit-identity.
//!
//! A cluster of N leaf devices serving one sharded corpus must be
//! *indistinguishable* from a single device serving the union: identical
//! result ids, identical rerank distances, identical documents, and an
//! identical transferred-entry count (the sum over leaves equals the
//! single device's, because leaf scans pin the static distance threshold,
//! which is partition-invariant). This suite proves that for leaf counts
//! {1, 2, 3, 5, 8}, for fresh flat and IVF deployments, under sequential,
//! sharded and auto-defaulted scan parallelism and both batch-fusion
//! modes, across random mutation traces (pre- and post-compaction),
//! through hedged straggler schedules, and across per-leaf crash points
//! with recovery from each leaf's durable prefix.
//!
//! # The CI determinism gate
//!
//! When `REIS_TEST_SUMMARY_DIR` is set, the identity tests write one line
//! per checked case (result ids, distances, transferred-entry sums). CI
//! runs the suite under `REIS_TEST_PARALLELISM=1` and `=4` — which changes
//! how every leaf's fine scan is partitioned via the auto-shard upgrade —
//! and diffs the summaries: only true partition invariance of the
//! scale-out merge makes them byte-identical.

use std::io::Write;

use proptest::prelude::*;

use reis_cluster::{ClusterSystem, HedgePolicy, LatencyModel};
use reis_core::{
    BatchFusion, CompactionPolicy, DurableStore, FaultVfs, MemVfs, ReisConfig, ReisSystem,
    ScanParallelism, SearchOutcome, VectorDatabase,
};
use reis_nand::Nanos;
use reis_workloads::LeafCrashSchedule;

const DIM: usize = 32;
const LEAF_COUNTS: [usize; 5] = [1, 2, 3, 5, 8];

fn vector_for(id: u32, salt: u64) -> Vec<f32> {
    (0..DIM)
        .map(|d| {
            let x = (id as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(d as u64 * 0x85EB_CA6B)
                .wrapping_add(salt.wrapping_mul(0xC2B2_AE35));
            ((x >> 7) % 23) as f32 - 11.0
        })
        .collect()
}

fn doc_for(id: u32, version: u32) -> Vec<u8> {
    format!("doc {id} v{version}").into_bytes()
}

fn corpus(entries: usize) -> (Vec<Vec<f32>>, Vec<Vec<u8>>) {
    let vectors = (0..entries as u32).map(|id| vector_for(id, 0)).collect();
    let documents = (0..entries as u32).map(|id| doc_for(id, 0)).collect();
    (vectors, documents)
}

/// Append one summary line to `<REIS_TEST_SUMMARY_DIR>/<test>.txt` (no-op
/// when the variable is unset); the first line a test writes truncates its
/// file so reruns diff cleanly.
fn record_summary(test: &str, line: &str) {
    let Some(dir) = std::env::var_os("REIS_TEST_SUMMARY_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("summary dir");
    let path = dir.join(format!("{test}.txt"));
    thread_local! {
        static STARTED: std::cell::RefCell<std::collections::HashSet<String>> =
            std::cell::RefCell::new(std::collections::HashSet::new());
    }
    let fresh = STARTED.with(|s| s.borrow_mut().insert(test.to_string()));
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .append(!fresh)
        .truncate(fresh)
        .open(&path)
        .expect("summary file");
    writeln!(file, "{line}").expect("summary write");
}

/// Cluster outcome == single-device outcome: ids, distances, documents,
/// the transferred-entry sum and the candidate-cut width.
fn assert_cluster_matches(
    cluster: &reis_cluster::ClusterSearchOutcome,
    single: &SearchOutcome,
    ctx: &str,
) {
    let cluster_ids: Vec<usize> = cluster.results.iter().map(|n| n.id).collect();
    let single_ids: Vec<usize> = single.results.iter().map(|n| n.id).collect();
    assert_eq!(cluster_ids, single_ids, "result ids: {ctx}");
    let cluster_d: Vec<f32> = cluster.results.iter().map(|n| n.distance).collect();
    let single_d: Vec<f32> = single.results.iter().map(|n| n.distance).collect();
    assert_eq!(cluster_d, single_d, "result distances: {ctx}");
    assert_eq!(cluster.documents, single.documents, "documents: {ctx}");
    assert_eq!(
        cluster.activity.activity.fine_entries, single.activity.fine_entries,
        "transferred fine entries: {ctx}"
    );
    assert_eq!(
        cluster.activity.cut_candidates, single.activity.rerank_candidates,
        "global candidate cut width: {ctx}"
    );
}

/// The scan-parallelism modes identity is checked under. The auto default
/// is the CI gate's sensitive leg: `REIS_TEST_PARALLELISM` changes its
/// actual shard count, and the summaries must not move.
fn modes() -> [(&'static str, ReisConfig); 3] {
    let base = ReisConfig::tiny();
    [
        ("auto", base),
        (
            "sequential",
            base.with_scan_parallelism(ScanParallelism::sequential()),
        ),
        (
            "sharded3",
            base.with_scan_parallelism(ScanParallelism::sharded(3).with_min_pages_per_shard(1)),
        ),
    ]
}

/// Fresh flat deployments: every leaf count, every parallelism mode, both
/// batch-fusion settings, single and batched queries.
#[test]
fn fresh_flat_cluster_matches_single_device() {
    let (vectors, documents) = corpus(48);
    let queries: Vec<Vec<f32>> = (0..4u32).map(|q| vector_for(900 + q, 17)).collect();

    for (mode, config) in modes() {
        for fusion in [BatchFusion::Fused, BatchFusion::Replicas] {
            let config = config.with_batch_fusion(fusion);
            let mut single = ReisSystem::new(config.with_adaptive_filtering(false));
            let db = single
                .deploy(&VectorDatabase::flat(&vectors, documents.clone()).unwrap())
                .unwrap();

            for leaves in LEAF_COUNTS {
                let mut cluster = ClusterSystem::new(config, leaves).unwrap();
                cluster.deploy_flat(&vectors, &documents).unwrap();

                for (q, query) in queries.iter().enumerate() {
                    let a = cluster.search(query, 6).unwrap();
                    let b = single.search(db, query, 6).unwrap();
                    let ctx = format!("{mode}/{fusion:?}/{leaves} leaves/query {q}");
                    assert_cluster_matches(&a, &b, &ctx);
                    if fusion == BatchFusion::Fused {
                        record_summary(
                            "scaleout_fresh_flat",
                            &format!(
                                "{mode} leaves={leaves} q={q} ids={:?} fine={} cut={}",
                                a.results.iter().map(|n| n.id).collect::<Vec<_>>(),
                                a.activity.activity.fine_entries,
                                a.activity.cut_candidates
                            ),
                        );
                    }
                }

                // Batched fan-out must equal one-at-a-time fan-out.
                let batch = cluster.search_batch(&queries, 6, None).unwrap();
                for (q, (b_out, query)) in batch.iter().zip(&queries).enumerate() {
                    let s_out = single.search(db, query, 6).unwrap();
                    assert_cluster_matches(
                        b_out,
                        &s_out,
                        &format!("{mode}/{fusion:?}/{leaves} leaves/batch query {q}"),
                    );
                }

                // k exceeding the corpus returns the full ranking.
                let all = cluster.search(&queries[0], 60).unwrap();
                let all_single = single.search(db, &queries[0], 60).unwrap();
                assert_cluster_matches(
                    &all,
                    &all_single,
                    &format!("{mode}/{fusion:?}/{leaves} leaves/k=60"),
                );
            }
        }
    }
}

/// Fresh IVF deployments: the full centroid set is replicated to every
/// leaf, so each leaf probes the same clusters and the union of probed
/// members equals the single device's.
#[test]
fn fresh_ivf_cluster_matches_single_device() {
    let (vectors, documents) = corpus(60);
    let queries: Vec<Vec<f32>> = (0..3u32).map(|q| vector_for(700 + q, 29)).collect();
    let nlist = 5;

    for (mode, config) in modes() {
        let mut single = ReisSystem::new(config.with_adaptive_filtering(false));
        let db = single
            .deploy(&VectorDatabase::ivf(&vectors, documents.clone(), nlist).unwrap())
            .unwrap();

        for leaves in [1usize, 2, 3, 5] {
            let mut cluster = ClusterSystem::new(config, leaves).unwrap();
            cluster.deploy_ivf(&vectors, &documents, nlist).unwrap();

            for (q, query) in queries.iter().enumerate() {
                for nprobe in [1usize, 3, nlist] {
                    let a = cluster.ivf_search_with_nprobe(query, 6, nprobe).unwrap();
                    let b = single.ivf_search_with_nprobe(db, query, 6, nprobe).unwrap();
                    let ctx = format!("{mode}/{leaves} leaves/query {q}/nprobe {nprobe}");
                    assert_cluster_matches(&a, &b, &ctx);
                    record_summary(
                        "scaleout_fresh_ivf",
                        &format!(
                            "{mode} leaves={leaves} q={q} nprobe={nprobe} ids={:?} fine={}",
                            a.results.iter().map(|n| n.id).collect::<Vec<_>>(),
                            a.activity.activity.fine_entries
                        ),
                    );
                }
                // Brute force over an IVF deployment scans everything on
                // both sides.
                let a = cluster.search(query, 6).unwrap();
                let b = single.search(db, query, 6).unwrap();
                assert_cluster_matches(&a, &b, &format!("{mode}/{leaves} leaves/brute q{q}"));
            }
        }
    }
}

/// Host-side mirror of one leaf's logical corpus in its scan order (base
/// survivors in storage order, then appends; compaction preserves this).
struct Mirror {
    order: Vec<u32>,
    versions: std::collections::HashMap<u32, (Vec<f32>, Vec<u8>)>,
}

impl Mirror {
    fn empty() -> Self {
        Mirror {
            order: Vec::new(),
            versions: std::collections::HashMap::new(),
        }
    }

    fn seed(&mut self, id: u32, vector: Vec<f32>, doc: Vec<u8>) {
        self.order.push(id);
        self.versions.insert(id, (vector, doc));
    }

    fn remove(&mut self, id: u32) {
        self.order.retain(|&x| x != id);
        self.versions.remove(&id);
    }

    fn append(&mut self, id: u32, vector: Vec<f32>, doc: Vec<u8>) {
        self.order.retain(|&x| x != id);
        self.order.push(id);
        self.versions.insert(id, (vector, doc));
    }
}

/// Per-leaf mirrors seeded with the deploy-time shard slices (for a flat
/// corpus the slices are contiguous ranges of entry order).
fn seeded_mirrors(
    cluster: &ClusterSystem,
    vectors: &[Vec<f32>],
    documents: &[Vec<u8>],
) -> Vec<Mirror> {
    let mut mirrors: Vec<Mirror> = (0..cluster.num_leaves()).map(|_| Mirror::empty()).collect();
    for id in 0..vectors.len() as u32 {
        let leaf = cluster.router().owner(id);
        mirrors[leaf].seed(
            id,
            vectors[id as usize].clone(),
            documents[id as usize].clone(),
        );
    }
    mirrors
}

/// The union reference: each leaf's mirror order concatenated leaf-major —
/// exactly the order the lifted `(distance, leaf, storage index)` merge
/// key induces — rebuilt as a fresh flat deployment under the union
/// quantizers.
fn union_rebuild(
    mirrors: &[Mirror],
    template: &VectorDatabase,
) -> Option<(Vec<u32>, VectorDatabase)> {
    let order: Vec<u32> = mirrors
        .iter()
        .flat_map(|m| m.order.iter().copied())
        .collect();
    if order.is_empty() {
        return None;
    }
    let versions: std::collections::HashMap<u32, &(Vec<f32>, Vec<u8>)> = mirrors
        .iter()
        .flat_map(|m| m.versions.iter().map(|(&id, v)| (id, v)))
        .collect();
    let vectors: Vec<Vec<f32>> = order.iter().map(|id| versions[id].0.clone()).collect();
    let documents: Vec<Vec<u8>> = order.iter().map(|id| versions[id].1.clone()).collect();
    let db = VectorDatabase::flat_with_quantizers(
        &vectors,
        documents,
        template.binary_quantizer().clone(),
        template.int8_quantizer().clone(),
    )
    .expect("reference rebuild");
    Some((order, db))
}

/// Cluster results == reference results (reference ids are dense positions
/// into `order`).
fn assert_matches_rebuild(
    cluster: &reis_cluster::ClusterSearchOutcome,
    reference: &SearchOutcome,
    order: &[u32],
    ctx: &str,
) {
    let cluster_ids: Vec<u32> = cluster.results.iter().map(|n| n.id as u32).collect();
    let mapped: Vec<u32> = reference.results.iter().map(|n| order[n.id]).collect();
    assert_eq!(cluster_ids, mapped, "result ids: {ctx}");
    let cluster_d: Vec<f32> = cluster.results.iter().map(|n| n.distance).collect();
    let reference_d: Vec<f32> = reference.results.iter().map(|n| n.distance).collect();
    assert_eq!(cluster_d, reference_d, "result distances: {ctx}");
    assert_eq!(cluster.documents, reference.documents, "documents: {ctx}");
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert,
    Delete,
    Upsert,
    Compact,
}

fn decode_op(code: u8) -> Op {
    match code % 8 {
        0..=2 => Op::Insert,
        3 | 4 => Op::Delete,
        5 | 6 => Op::Upsert,
        _ => Op::Compact,
    }
}

/// Random mutation traces: the cluster (mutations routed to owning
/// leaves) must answer like a union rebuild of the per-leaf survivors,
/// and its transferred-entry sum must equal a single device driven
/// through the *same* trace — pre- and post-compaction.
fn run_mutated(ops: &[(u8, u64)], entries: usize, leaves: usize, parallelism: ScanParallelism) {
    let (vectors, documents) = corpus(entries);
    let template = VectorDatabase::flat(&vectors, documents.clone()).expect("template");
    let config = ReisConfig::tiny()
        .with_scan_parallelism(parallelism)
        .with_compaction(CompactionPolicy::manual());

    let mut cluster = ClusterSystem::new(config, leaves).unwrap();
    cluster.deploy_flat(&vectors, &documents).unwrap();
    let mut mirrors = seeded_mirrors(&cluster, &vectors, &documents);

    // The twin: one device, same trace. Its global ids coincide with the
    // cluster's (both assign sequentially from the corpus size), which is
    // itself part of the property.
    let mut twin = ReisSystem::new(config.with_adaptive_filtering(false));
    let twin_db = twin.deploy(&template).unwrap();

    let live_ids = |mirrors: &[Mirror]| -> Vec<u32> {
        let mut ids: Vec<u32> = mirrors
            .iter()
            .flat_map(|m| m.order.iter().copied())
            .collect();
        ids.sort_unstable();
        ids
    };

    let mut version = 1u32;
    for &(code, payload) in ops {
        match decode_op(code) {
            Op::Insert => {
                let vector = vector_for(1000 + payload as u32, payload);
                let doc = doc_for(1000 + payload as u32, version);
                let id = cluster
                    .insert(&vector, doc.clone())
                    .expect("cluster insert");
                let twin_id = twin
                    .insert(twin_db, &vector, doc.clone())
                    .expect("twin insert")
                    .ids[0];
                assert_eq!(
                    id, twin_id,
                    "global id assignment must match a single device"
                );
                mirrors[cluster.router().owner(id)].append(id, vector, doc);
            }
            Op::Delete => {
                let ids = live_ids(&mirrors);
                if ids.is_empty() {
                    continue;
                }
                let id = ids[payload as usize % ids.len()];
                cluster.delete(id).expect("cluster delete");
                twin.delete(twin_db, id).expect("twin delete");
                mirrors[cluster.router().owner(id)].remove(id);
            }
            Op::Upsert => {
                let ids = live_ids(&mirrors);
                if ids.is_empty() {
                    continue;
                }
                let id = ids[payload as usize % ids.len()];
                let vector = vector_for(id, payload.wrapping_add(7));
                let doc = doc_for(id, version);
                cluster.upsert(id, &vector, &doc).expect("cluster upsert");
                twin.upsert(twin_db, id, &vector, &doc)
                    .expect("twin upsert");
                mirrors[cluster.router().owner(id)].append(id, vector, doc);
            }
            Op::Compact => {
                cluster.compact().expect("cluster compact");
                twin.compact(twin_db).expect("twin compact");
            }
        }
        version += 1;
    }

    let check = |cluster: &mut ClusterSystem, twin: &mut ReisSystem, stage: &str| {
        match union_rebuild(&mirrors, &template) {
            None => {
                let out = cluster.search(&vector_for(1, 3), 5).expect("empty search");
                assert!(out.results.is_empty(), "empty corpus yields no results");
            }
            Some((order, reference_db)) => {
                let mut reference = ReisSystem::new(config.with_adaptive_filtering(false));
                let ref_db = reference.deploy(&reference_db).expect("reference deploy");
                for q in 0..3u32 {
                    let query = vector_for(2000 + q, 23);
                    let a = cluster.search(&query, 5).expect("cluster search");
                    let b = reference
                        .search(ref_db, &query, 5)
                        .expect("reference search");
                    let ctx = format!("{stage}, {leaves} leaves, query {q}");
                    assert_matches_rebuild(&a, &b, &order, &ctx);
                    // Transferred-entry identity vs the mutated twin: the
                    // count is a pointwise property of the corpus and the
                    // static threshold, whatever the partitioning.
                    let t = twin.search(twin_db, &query, 5).expect("twin search");
                    assert_eq!(
                        a.activity.activity.fine_entries, t.activity.fine_entries,
                        "transferred fine entries: {ctx}"
                    );
                    record_summary(
                        "scaleout_mutated",
                        &format!(
                            "{stage} leaves={leaves} q={q} ids={:?} fine={}",
                            a.results.iter().map(|n| n.id).collect::<Vec<_>>(),
                            a.activity.activity.fine_entries
                        ),
                    );
                }
            }
        }
    };

    check(&mut cluster, &mut twin, "pre-compaction");
    cluster.compact().expect("final cluster compact");
    twin.compact(twin_db).expect("final twin compact");
    check(&mut cluster, &mut twin, "post-compaction");
}

proptest! {
    /// Random interleavings of routed insert/delete/upsert/compact keep
    /// every cluster search bit-identical to a union rebuild, and the
    /// transferred-entry sum equal to a same-trace single device, for every
    /// leaf count — under the sequential scan.
    #[test]
    fn mutated_cluster_matches_union_rebuild_sequential(
        ops in proptest::collection::vec((0u8..8, 0u64..1_000), 1..24),
        entries in 10usize..26,
        leaf_pick in 0usize..LEAF_COUNTS.len(),
    ) {
        run_mutated(&ops, entries, LEAF_COUNTS[leaf_pick], ScanParallelism::sequential());
    }

    /// The same invariant under intra-query sharded leaf scans.
    #[test]
    fn mutated_cluster_matches_union_rebuild_sharded(
        ops in proptest::collection::vec((0u8..8, 0u64..1_000), 1..18),
        entries in 10usize..22,
        leaf_pick in 0usize..LEAF_COUNTS.len(),
        shards in 2usize..5,
    ) {
        run_mutated(
            &ops,
            entries,
            LEAF_COUNTS[leaf_pick],
            ScanParallelism::sharded(shards).with_min_pages_per_shard(1),
        );
    }
}

/// Hedging determinism: schedules where the hedge wins, loses and exactly
/// ties its primary produce bit-identical results, documents and
/// `ClusterActivity` — only the modelled completion time may move.
#[test]
fn hedged_schedules_never_change_results() {
    let (vectors, documents) = corpus(36);
    let queries: Vec<Vec<f32>> = (0..3u32).map(|q| vector_for(500 + q, 13)).collect();
    let deadline = Nanos::from_micros(50);

    // Search the seeded draw space for schedules with a known race
    // outcome on (leaf 0, query 0): the duplicate dispatched at the
    // deadline either beats the primary's skew or does not.
    let wins = |seed: u64| {
        let model = LatencyModel::new(seed, 0, 500_000);
        let primary = model.delay(0, 0, 0);
        primary > deadline && deadline + model.delay(0, 0, 1) < primary
    };
    let loses = |seed: u64| {
        let model = LatencyModel::new(seed, 0, 500_000);
        let primary = model.delay(0, 0, 0);
        primary > deadline && deadline + model.delay(0, 0, 1) > primary
    };
    let win_seed = (0..10_000u64)
        .find(|&s| wins(s))
        .expect("a hedge-wins seed exists");
    let lose_seed = (0..10_000u64)
        .find(|&s| loses(s))
        .expect("a hedge-loses seed exists");

    let run = |model: LatencyModel, hedge: Option<HedgePolicy>| {
        let mut cluster = ClusterSystem::new(ReisConfig::tiny(), 3)
            .unwrap()
            .with_latency_model(model)
            .with_hedging(hedge);
        cluster.deploy_flat(&vectors, &documents).unwrap();
        queries
            .iter()
            .map(|q| cluster.search(q, 5).unwrap())
            .collect::<Vec<_>>()
    };

    let baseline = run(LatencyModel::uniform(), None);
    let hedge_wins = run(
        LatencyModel::new(win_seed, 0, 500_000),
        Some(HedgePolicy::new(deadline)),
    );
    let hedge_loses = run(
        LatencyModel::new(lose_seed, 0, 500_000),
        Some(HedgePolicy::new(deadline)),
    );
    // Deterministic exact tie: zero jitter and a zero deadline make the
    // duplicate land at exactly the primary's completion.
    let hedge_ties = run(
        LatencyModel::new(0, 10_000, 0),
        Some(HedgePolicy::new(Nanos::ZERO)),
    );

    for (name, outcomes) in [
        ("hedge-wins", &hedge_wins),
        ("hedge-loses", &hedge_loses),
        ("hedge-ties", &hedge_ties),
    ] {
        assert!(
            outcomes.iter().any(|o| o.hedges_launched > 0),
            "{name}: the schedule must actually hedge"
        );
        for (q, (a, b)) in outcomes.iter().zip(&baseline).enumerate() {
            assert_eq!(a.results, b.results, "{name}: results, query {q}");
            assert_eq!(a.documents, b.documents, "{name}: documents, query {q}");
            assert_eq!(a.activity, b.activity, "{name}: activity, query {q}");
        }
    }

    // Under the same skew, hedging can only shorten the modelled fan-out.
    let skewed_unhedged = run(LatencyModel::new(win_seed, 0, 500_000), None);
    for (hedged, bare) in hedge_wins.iter().zip(&skewed_unhedged) {
        assert!(hedged.fanout_latency <= bare.fanout_latency);
        assert_eq!(hedged.results, bare.results);
    }

    // The tie completes exactly when its unhedged primary would.
    let tie_unhedged = run(LatencyModel::new(0, 10_000, 0), None);
    for (tied, bare) in hedge_ties.iter().zip(&tie_unhedged) {
        assert_eq!(tied.fanout_latency, bare.fanout_latency);
    }
}

/// Duplicate vectors straddling shard boundaries: the lifted tie-break
/// must reproduce the single device's storage-order tie resolution even
/// when equal distances collide across leaves.
#[test]
fn cross_leaf_distance_collisions_break_ties_like_a_single_device() {
    // Four copies of the same vector interleaved through the corpus, so
    // every shard boundary splits at least one duplicate pair.
    let mut vectors = Vec::new();
    let mut documents = Vec::new();
    for id in 0..24u32 {
        let v = if id % 6 == 1 {
            vector_for(77, 0)
        } else {
            vector_for(id, 0)
        };
        vectors.push(v);
        documents.push(doc_for(id, 0));
    }
    let config = ReisConfig::tiny();
    let mut single = ReisSystem::new(config.with_adaptive_filtering(false));
    let db = single
        .deploy(&VectorDatabase::flat(&vectors, documents.clone()).unwrap())
        .unwrap();
    let probe = vector_for(77, 0);
    for leaves in LEAF_COUNTS {
        let mut cluster = ClusterSystem::new(config, leaves).unwrap();
        cluster.deploy_flat(&vectors, &documents).unwrap();
        let a = cluster.search(&probe, 8).unwrap();
        let b = single.search(db, &probe, 8).unwrap();
        assert_cluster_matches(&a, &b, &format!("{leaves} leaves, duplicate collision"));
    }
}

/// Per-leaf stores for a durable cluster: each leaf writes through its own
/// fault-injectable VFS; the manifest lives in its own plain VFS.
fn durable_parts(
    leaves: usize,
) -> (
    Vec<MemVfs>,
    Vec<reis_core::FaultHandle>,
    Vec<DurableStore>,
    MemVfs,
) {
    let mut mems = Vec::new();
    let mut handles = Vec::new();
    let mut stores = Vec::new();
    for _ in 0..leaves {
        let mem = MemVfs::new();
        let (fault, handle) = FaultVfs::new(mem.clone());
        mems.push(mem);
        handles.push(handle);
        stores.push(DurableStore::new(Box::new(fault)));
    }
    (mems, handles, stores, MemVfs::new())
}

/// Scripted mutation sequence of the durability tests: deterministic,
/// touches every leaf, includes a compaction.
fn crash_script(entries: usize) -> Vec<(u8, u64)> {
    (0..12u64)
        .map(|i| {
            let code = [0u8, 3, 5, 0, 0, 3, 7, 0, 5, 3, 0, 5][i as usize % 12];
            (code, (i * 5 + 3) % entries as u64)
        })
        .collect()
}

/// Apply the scripted op to a durable cluster and its mirrors, returning
/// the per-leaf WAL watermarks after the op.
fn apply_scripted(
    cluster: &mut ClusterSystem,
    mirrors: &mut [Mirror],
    code: u8,
    payload: u64,
    version: u32,
) {
    let live: Vec<u32> = {
        let mut ids: Vec<u32> = mirrors
            .iter()
            .flat_map(|m| m.order.iter().copied())
            .collect();
        ids.sort_unstable();
        ids
    };
    match decode_op(code) {
        Op::Insert => {
            let vector = vector_for(3000 + payload as u32, payload);
            let doc = doc_for(3000 + payload as u32, version);
            let id = cluster.insert(&vector, doc.clone()).expect("insert");
            mirrors[cluster.router().owner(id)].append(id, vector, doc);
        }
        Op::Delete => {
            if live.is_empty() {
                return;
            }
            let id = live[payload as usize % live.len()];
            cluster.delete(id).expect("delete");
            mirrors[cluster.router().owner(id)].remove(id);
        }
        Op::Upsert => {
            if live.is_empty() {
                return;
            }
            let id = live[payload as usize % live.len()];
            let vector = vector_for(id, payload.wrapping_add(11));
            let doc = doc_for(id, version);
            cluster.upsert(id, &vector, &doc).expect("upsert");
            mirrors[cluster.router().owner(id)].append(id, vector, doc);
        }
        Op::Compact => {
            cluster.compact().expect("compact");
        }
    }
}

/// Kill one leaf's WAL at seeded and boundary crash points; the recovered
/// cluster must equal the union of the victim's durable prefix and every
/// other leaf's full history.
#[test]
fn cluster_recovers_each_leaf_from_its_durable_prefix() {
    let entries = 18;
    let leaves = 3;
    let (vectors, documents) = corpus(entries);
    let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());
    let template = VectorDatabase::flat(&vectors, documents.clone()).unwrap();
    let script = crash_script(entries);

    // Pilot: run the script once, recording each leaf's WAL watermark
    // after every op (relative to its post-deploy base).
    let (_mems, handles, stores, manifest) = durable_parts(leaves);
    let (mut pilot, report) =
        ClusterSystem::open(config, stores, Box::new(manifest.clone())).unwrap();
    assert!(report.is_none(), "fresh stores have nothing to recover");
    pilot.deploy_flat(&vectors, &documents).unwrap();
    let bases: Vec<u64> = handles.iter().map(|h| h.bytes_written()).collect();
    let mut mirrors = seeded_mirrors(&pilot, &vectors, &documents);
    let mut marks: Vec<Vec<u64>> = Vec::new();
    for (i, &(code, payload)) in script.iter().enumerate() {
        apply_scripted(&mut pilot, &mut mirrors, code, payload, i as u32 + 1);
        marks.push(
            handles
                .iter()
                .zip(&bases)
                .map(|(h, &b)| h.bytes_written() - b)
                .collect(),
        );
    }
    let totals: Vec<u64> = marks.last().unwrap().clone();
    assert!(
        totals.iter().all(|&t| t > 0),
        "every leaf must log mutations"
    );

    // Per-leaf crash points: the edges, seeded interior bytes, and every
    // per-op watermark of the victim leaf (±1 byte).
    let mut schedule = LeafCrashSchedule::covering(&totals, 2, 0xC1A5_7E01);
    for leaf in 0..leaves {
        let leaf_marks: Vec<u64> = marks.iter().map(|m| m[leaf]).collect();
        schedule = schedule.with_boundaries(leaf, &leaf_marks);
    }

    for (victim, point) in schedule.pairs() {
        // A doomed run: the victim's VFS dies after `point` post-deploy
        // bytes; the cluster keeps operating (a dying VFS still answers).
        let (mems, handles, stores, manifest) = durable_parts(leaves);
        let (mut doomed, _) =
            ClusterSystem::open(config, stores, Box::new(manifest.clone())).unwrap();
        doomed.deploy_flat(&vectors, &documents).unwrap();
        handles[victim].arm_kill_after(point);
        let mut doomed_mirrors = seeded_mirrors(&doomed, &vectors, &documents);
        for (i, &(code, payload)) in script.iter().enumerate() {
            apply_scripted(
                &mut doomed,
                &mut doomed_mirrors,
                code,
                payload,
                i as u32 + 1,
            );
        }
        drop(doomed); // the crash

        let stores: Vec<DurableStore> = mems
            .iter()
            .map(|mem| DurableStore::new(Box::new(mem.clone())))
            .collect();
        let (mut recovered, report) =
            ClusterSystem::open(config, stores, Box::new(manifest.clone()))
                .expect("cluster recovery must succeed from any per-leaf crash point");
        let report = report.expect("a manifest exists, so recovery ran");
        assert_eq!(report.leaves.len(), leaves);

        // Expected state: the victim's durable prefix, everyone else full.
        let expected = replay_durable_prefix(
            &script,
            &marks,
            recovered.router(),
            entries,
            &vectors,
            &documents,
            victim,
            point,
        );

        match union_rebuild(&expected, &template) {
            None => unreachable!("the script never empties the corpus"),
            Some((order, reference_db)) => {
                let mut reference = ReisSystem::new(config.with_adaptive_filtering(false));
                let ref_db = reference.deploy(&reference_db).unwrap();
                for q in 0..2u32 {
                    let query = vector_for(8000 + q, 19);
                    let a = recovered.search(&query, 5).expect("recovered search");
                    let b = reference
                        .search(ref_db, &query, 5)
                        .expect("reference search");
                    assert_matches_rebuild(
                        &a,
                        &b,
                        &order,
                        &format!("victim {victim}, crash byte {point}, query {q}"),
                    );
                }
            }
        }

        // The recovered cluster is live: it accepts a routed insert and
        // serves it.
        let fresh = vector_for(9_999, 3);
        let id = recovered
            .insert(&fresh, b"post-crash".to_vec())
            .expect("post-recovery insert");
        let hit = recovered.search(&fresh, 1).expect("post-recovery search");
        assert_eq!(hit.results[0].id as u32, id);
        assert_eq!(hit.documents[0], b"post-crash");
    }
}

/// Replay the scripted history honoring one leaf's durable prefix: an op
/// applies to the expected state iff it routed to a non-victim leaf, or
/// its WAL frame on the victim landed at or before the crash point
/// (victim marks are monotone, so everything after the first lost frame
/// is lost too — including the replay targets' consistency: the doomed
/// cluster chose targets from its *in-memory* state, which never saw the
/// kill, so target selection replays against the full history).
#[allow(clippy::too_many_arguments)]
fn replay_durable_prefix(
    script: &[(u8, u64)],
    marks: &[Vec<u64>],
    router: &reis_cluster::ShardRouter,
    entries: usize,
    vectors: &[Vec<f32>],
    documents: &[Vec<u8>],
    victim: usize,
    point: u64,
) -> Vec<Mirror> {
    let leaves = marks[0].len();
    let mut full: Vec<Mirror> = (0..leaves).map(|_| Mirror::empty()).collect();
    let mut expected: Vec<Mirror> = (0..leaves).map(|_| Mirror::empty()).collect();
    for id in 0..entries as u32 {
        let leaf = router.owner(id);
        full[leaf].seed(
            id,
            vectors[id as usize].clone(),
            documents[id as usize].clone(),
        );
        expected[leaf].seed(
            id,
            vectors[id as usize].clone(),
            documents[id as usize].clone(),
        );
    }
    let mut next_id = entries as u32;
    for (i, &(code, payload)) in script.iter().enumerate() {
        let version = i as u32 + 1;
        let durable = |leaf: usize| leaf != victim || marks[i][victim] <= point;
        let live: Vec<u32> = {
            let mut ids: Vec<u32> = full.iter().flat_map(|m| m.order.iter().copied()).collect();
            ids.sort_unstable();
            ids
        };
        match decode_op(code) {
            Op::Insert => {
                let id = next_id;
                next_id += 1;
                let vector = vector_for(3000 + payload as u32, payload);
                let doc = doc_for(3000 + payload as u32, version);
                let leaf = router.owner(id);
                full[leaf].append(id, vector.clone(), doc.clone());
                if durable(leaf) {
                    expected[leaf].append(id, vector, doc);
                }
            }
            Op::Delete => {
                if live.is_empty() {
                    continue;
                }
                let id = live[payload as usize % live.len()];
                let leaf = router.owner(id);
                full[leaf].remove(id);
                if durable(leaf) {
                    expected[leaf].remove(id);
                }
            }
            Op::Upsert => {
                if live.is_empty() {
                    continue;
                }
                let id = live[payload as usize % live.len()];
                let vector = vector_for(id, payload.wrapping_add(11));
                let doc = doc_for(id, version);
                let leaf = router.owner(id);
                full[leaf].append(id, vector.clone(), doc.clone());
                if durable(leaf) {
                    expected[leaf].append(id, vector, doc);
                }
            }
            Op::Compact => {} // logical content and scan order unchanged
        }
    }
    expected
}

/// Save/reopen round trip: a checkpointed cluster reopens bit-identical —
/// same searches, same activity, bumped epoch — and stays mutable.
#[test]
fn durable_cluster_round_trips_through_save_and_open() {
    let entries = 20;
    let leaves = 3;
    let (vectors, documents) = corpus(entries);
    let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());
    let queries: Vec<Vec<f32>> = (0..3u32).map(|q| vector_for(600 + q, 31)).collect();

    let (mems, _handles, stores, manifest) = durable_parts(leaves);
    let (mut cluster, report) =
        ClusterSystem::open(config, stores, Box::new(manifest.clone())).unwrap();
    assert!(report.is_none(), "fresh stores have nothing to recover");
    cluster.deploy_flat(&vectors, &documents).unwrap();
    assert_eq!(cluster.epoch(), 0, "deploy writes the epoch-0 manifest");

    let inserted = cluster
        .insert(&vector_for(4_000, 1), doc_for(4_000, 1))
        .unwrap();
    cluster.delete(3).unwrap();
    cluster
        .upsert(7, &vector_for(7, 99), &doc_for(7, 2))
        .unwrap();
    let epoch = cluster.save().expect("durable cluster saves");
    assert_eq!(epoch, 1);

    let before: Vec<_> = queries
        .iter()
        .map(|q| cluster.search(q, 5).unwrap())
        .collect();
    drop(cluster);

    let stores: Vec<DurableStore> = mems
        .iter()
        .map(|mem| DurableStore::new(Box::new(mem.clone())))
        .collect();
    let (mut reopened, report) =
        ClusterSystem::open(config, stores, Box::new(manifest.clone())).unwrap();
    let report = report.expect("manifest present, recovery runs");
    assert_eq!(report.epoch, 1);
    assert_eq!(report.leaves.len(), leaves);
    assert_eq!(reopened.epoch(), 1);
    assert_eq!(reopened.num_leaves(), leaves);

    for (q, (query, expected)) in queries.iter().zip(&before).enumerate() {
        let after = reopened.search(query, 5).unwrap();
        assert_eq!(after.results, expected.results, "results, query {q}");
        assert_eq!(after.documents, expected.documents, "documents, query {q}");
        // Snapshot recovery re-packs append segments into a dense base, so
        // *page* counts legitimately shrink; the entry-level accounting is
        // corpus-determined and must survive the round trip exactly.
        assert_eq!(
            after.activity.activity.fine_entries, expected.activity.activity.fine_entries,
            "transferred entries, query {q}"
        );
        assert_eq!(
            after.activity.cut_candidates, expected.activity.cut_candidates,
            "cut width, query {q}"
        );
        assert_eq!(
            after.activity.leaves, expected.activity.leaves,
            "leaves, query {q}"
        );
    }

    // Still mutable: the id namespace continues past the recovered
    // watermark instead of re-minting the pre-save insert's id.
    let fresh = vector_for(4_001, 2);
    let id = reopened.insert(&fresh, b"after reopen".to_vec()).unwrap();
    assert!(id > inserted, "id watermark survives recovery");
    let hit = reopened.search(&fresh, 1).unwrap();
    assert_eq!(hit.results[0].id as u32, id);
    assert_eq!(hit.documents[0], b"after reopen");

    assert_eq!(reopened.save().unwrap(), 2, "epochs keep counting");
}
