//! Fault-tolerant cluster serving.
//!
//! A replicated cluster under injected leaf faults must be *bit-exact or
//! explicitly degraded* — never silently wrong:
//!
//! * as long as every shard keeps at least one live replica, every search
//!   answer (ids, distances, documents, activity accounting) is
//!   bit-identical to the same cluster with no faults injected;
//! * when every replica of a shard is down, the outcome reports the lost
//!   shards truthfully via `shard_coverage` and the answer is
//!   bit-identical to a single-device build of exactly the covered
//!   shards' survivors;
//! * replicas of a shard stay in bit-identical lockstep (snapshot-CRC
//!   equality) through arbitrary mutation traces, and a down leaf that
//!   rejoins — from retained memory or from its durable store — catches
//!   up to the exact same fingerprint;
//! * the same seeded fault schedule replays the same outcomes, latencies
//!   included, and a zero-rate plan is indistinguishable from no plan.
//!
//! # The CI chaos gate
//!
//! When `REIS_TEST_SUMMARY_DIR` is set, the identity checks write one
//! line per case (coverage bitmap, result ids, transferred-entry sums).
//! CI runs the suite under `REIS_TEST_PARALLELISM=1` and `=4` and diffs
//! the summaries: fault handling must not perturb the partition-invariant
//! accounting, and fault schedules must not depend on scan parallelism.

use std::io::Write;

use proptest::prelude::*;

use reis_cluster::{ClusterSearchOutcome, ClusterSystem, FaultPlan, HealthState, RetryPolicy};
use reis_core::{
    CompactionPolicy, DurableStore, MemVfs, ReisConfig, ReisError, ReisSystem, SearchOutcome,
    VectorDatabase, Vfs,
};
use reis_nand::Nanos;
use reis_workloads::FaultScenario;

const DIM: usize = 32;

fn vector_for(id: u32, salt: u64) -> Vec<f32> {
    (0..DIM)
        .map(|d| {
            let x = (id as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(d as u64 * 0x85EB_CA6B)
                .wrapping_add(salt.wrapping_mul(0xC2B2_AE35));
            ((x >> 7) % 23) as f32 - 11.0
        })
        .collect()
}

fn doc_for(id: u32, version: u32) -> Vec<u8> {
    format!("doc {id} v{version}").into_bytes()
}

fn corpus(entries: usize) -> (Vec<Vec<f32>>, Vec<Vec<u8>>) {
    let vectors = (0..entries as u32).map(|id| vector_for(id, 0)).collect();
    let documents = (0..entries as u32).map(|id| doc_for(id, 0)).collect();
    (vectors, documents)
}

/// Append one summary line to `<REIS_TEST_SUMMARY_DIR>/<test>.txt` (no-op
/// when the variable is unset); the first line a test writes truncates its
/// file so reruns diff cleanly.
fn record_summary(test: &str, line: &str) {
    let Some(dir) = std::env::var_os("REIS_TEST_SUMMARY_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("summary dir");
    let path = dir.join(format!("{test}.txt"));
    thread_local! {
        static STARTED: std::cell::RefCell<std::collections::HashSet<String>> =
            std::cell::RefCell::new(std::collections::HashSet::new());
    }
    let fresh = STARTED.with(|s| s.borrow_mut().insert(test.to_string()));
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .append(!fresh)
        .truncate(fresh)
        .open(&path)
        .expect("summary file");
    writeln!(file, "{line}").expect("summary write");
}

/// The deterministic retry policy the suite runs under: one retry, short
/// backoff, a sub-millisecond timeout deadline.
fn retry() -> RetryPolicy {
    RetryPolicy::new(1, Nanos::from_micros(40), Nanos::from_micros(900))
}

fn plan_for(scenario: &FaultScenario) -> FaultPlan {
    let mut plan = FaultPlan::new(scenario.seed, scenario.fail_ppm, scenario.timeout_ppm);
    for &(leaf, nth_call) in &scenario.kills {
        plan = plan.with_kill(leaf, nth_call);
    }
    plan
}

/// Host-side mirror of one *shard's* logical corpus in its scan order
/// (base survivors in storage order, then appends).
struct Mirror {
    order: Vec<u32>,
    versions: std::collections::HashMap<u32, (Vec<f32>, Vec<u8>)>,
}

impl Mirror {
    fn empty() -> Self {
        Mirror {
            order: Vec::new(),
            versions: std::collections::HashMap::new(),
        }
    }

    fn seed(&mut self, id: u32, vector: Vec<f32>, doc: Vec<u8>) {
        self.order.push(id);
        self.versions.insert(id, (vector, doc));
    }

    fn remove(&mut self, id: u32) {
        self.order.retain(|&x| x != id);
        self.versions.remove(&id);
    }

    fn append(&mut self, id: u32, vector: Vec<f32>, doc: Vec<u8>) {
        self.order.retain(|&x| x != id);
        self.order.push(id);
        self.versions.insert(id, (vector, doc));
    }
}

/// Per-shard mirrors seeded with the deploy-time slices (for a flat corpus
/// the slices are contiguous ranges of entry order). Replicas of a shard
/// are bit-identical, so one mirror describes the whole group.
fn shard_mirrors(
    cluster: &ClusterSystem,
    vectors: &[Vec<f32>],
    documents: &[Vec<u8>],
) -> Vec<Mirror> {
    let mut mirrors: Vec<Mirror> = (0..cluster.num_shards()).map(|_| Mirror::empty()).collect();
    for id in 0..vectors.len() as u32 {
        let shard = cluster.router().owner(id);
        mirrors[shard].seed(
            id,
            vectors[id as usize].clone(),
            documents[id as usize].clone(),
        );
    }
    mirrors
}

/// The degraded reference: the covered shards' mirror orders concatenated
/// shard-major — the order the lifted `(distance, shard, storage index)`
/// merge key induces over the surviving shards — rebuilt as a fresh flat
/// deployment under the union quantizers.
fn covered_union(
    mirrors: &[Mirror],
    covered: &[bool],
    template: &VectorDatabase,
) -> Option<(Vec<u32>, VectorDatabase)> {
    let order: Vec<u32> = mirrors
        .iter()
        .zip(covered)
        .filter(|(_, &keep)| keep)
        .flat_map(|(m, _)| m.order.iter().copied())
        .collect();
    if order.is_empty() {
        return None;
    }
    let versions: std::collections::HashMap<u32, &(Vec<f32>, Vec<u8>)> = mirrors
        .iter()
        .flat_map(|m| m.versions.iter().map(|(&id, v)| (id, v)))
        .collect();
    let vectors: Vec<Vec<f32>> = order.iter().map(|id| versions[id].0.clone()).collect();
    let documents: Vec<Vec<u8>> = order.iter().map(|id| versions[id].1.clone()).collect();
    let db = VectorDatabase::flat_with_quantizers(
        &vectors,
        documents,
        template.binary_quantizer().clone(),
        template.int8_quantizer().clone(),
    )
    .expect("degraded reference rebuild");
    Some((order, db))
}

/// Cluster results == reference results (reference ids are dense positions
/// into `order`), including the entry-level accounting.
fn assert_matches_rebuild(
    cluster: &ClusterSearchOutcome,
    reference: &SearchOutcome,
    order: &[u32],
    ctx: &str,
) {
    let cluster_ids: Vec<u32> = cluster.results.iter().map(|n| n.id as u32).collect();
    let mapped: Vec<u32> = reference.results.iter().map(|n| order[n.id]).collect();
    assert_eq!(cluster_ids, mapped, "result ids: {ctx}");
    let cluster_d: Vec<f32> = cluster.results.iter().map(|n| n.distance).collect();
    let reference_d: Vec<f32> = reference.results.iter().map(|n| n.distance).collect();
    assert_eq!(cluster_d, reference_d, "result distances: {ctx}");
    assert_eq!(cluster.documents, reference.documents, "documents: {ctx}");
    assert_eq!(
        cluster.activity.activity.fine_entries, reference.activity.fine_entries,
        "transferred fine entries: {ctx}"
    );
    assert_eq!(
        cluster.activity.cut_candidates, reference.activity.rerank_candidates,
        "global candidate cut width: {ctx}"
    );
}

/// The core guarantee, checked for one query: full coverage means the
/// answer is bit-identical to the no-fault twin; partial coverage means
/// the lost shards are reported truthfully (every replica down) and the
/// answer is bit-identical to a single-device build of exactly the
/// covered shards' survivors. Returns whether coverage was full.
#[allow(clippy::too_many_arguments)]
fn check_faulted_query(
    faulted: &mut ClusterSystem,
    twin: &mut ClusterSystem,
    mirrors: &[Mirror],
    template: &VectorDatabase,
    config: ReisConfig,
    query: &[f32],
    k: usize,
    summary_test: &str,
    ctx: &str,
) -> bool {
    let a = faulted.search(query, k).expect("faulted search");
    let b = twin.search(query, k).expect("twin search");
    assert!(b.is_full_coverage(), "the no-fault twin never degrades");
    let covered: Vec<bool> = (0..faulted.num_shards())
        .map(|shard| a.shard_coverage.covered(shard))
        .collect();
    if a.is_full_coverage() {
        assert_eq!(a.results, b.results, "results: {ctx}");
        assert_eq!(a.documents, b.documents, "documents: {ctx}");
        assert_eq!(a.activity, b.activity, "activity: {ctx}");
    } else {
        // Truthfulness: a shard is reported lost iff its whole replica
        // group is down, and a covered shard kept a live replica.
        for (shard, &is_covered) in covered.iter().enumerate() {
            let all_down = faulted
                .router()
                .replicas(shard)
                .all(|leaf| faulted.leaf_health(leaf) == HealthState::Down);
            if is_covered {
                assert!(
                    !all_down,
                    "covered shard {shard} has no live replica: {ctx}"
                );
            } else {
                assert!(all_down, "shard {shard} reported lost while alive: {ctx}");
            }
        }
        match covered_union(mirrors, &covered, template) {
            None => {
                assert!(
                    a.results.is_empty(),
                    "zero coverage yields no results: {ctx}"
                );
                assert!(
                    a.documents.is_empty(),
                    "zero coverage yields no documents: {ctx}"
                );
            }
            Some((order, reference_db)) => {
                let mut reference = ReisSystem::new(config.with_adaptive_filtering(false));
                let ref_db = reference.deploy(&reference_db).expect("reference deploy");
                let r = reference
                    .search(ref_db, query, k)
                    .expect("reference search");
                assert_matches_rebuild(&a, &r, &order, ctx);
            }
        }
    }
    let bits: String = covered.iter().map(|&c| if c { '1' } else { '0' }).collect();
    record_summary(
        summary_test,
        &format!(
            "{ctx} cov={bits} ids={:?} fine={} cut={}",
            a.results.iter().map(|n| n.id).collect::<Vec<_>>(),
            a.activity.activity.fine_entries,
            a.activity.cut_candidates
        ),
    );
    a.is_full_coverage()
}

/// Fresh-corpus fault schedules: seeded transient rates plus random
/// permanent kills, over every shard/replication shape.
fn run_seeded(
    seed: u64,
    fail_ppm: u32,
    timeout_ppm: u32,
    kills: &[(usize, u64)],
    entries: usize,
    num_shards: usize,
    replication: usize,
) {
    let (vectors, documents) = corpus(entries);
    let template = VectorDatabase::flat(&vectors, documents.clone()).expect("template");
    let config = ReisConfig::tiny();
    let num_leaves = num_shards * replication;
    let mut plan = FaultPlan::new(seed, fail_ppm, timeout_ppm);
    for &(leaf, nth_call) in kills {
        plan = plan.with_kill(leaf % num_leaves, nth_call);
    }
    let mut faulted = ClusterSystem::new_replicated(config, num_shards, replication)
        .unwrap()
        .with_fault_plan(Some(plan))
        .with_retry_policy(retry());
    let mut twin = ClusterSystem::new_replicated(config, num_shards, replication).unwrap();
    faulted.deploy_flat(&vectors, &documents).unwrap();
    twin.deploy_flat(&vectors, &documents).unwrap();
    let mirrors = shard_mirrors(&faulted, &vectors, &documents);

    for q in 0..6u32 {
        let query = vector_for(4_000 + q, 41);
        let ctx = format!(
            "seed={seed} fail={fail_ppm} timeout={timeout_ppm} \
             s={num_shards} r={replication} e={entries} q={q}"
        );
        check_faulted_query(
            &mut faulted,
            &mut twin,
            &mirrors,
            &template,
            config,
            &query,
            5,
            "fault_identity",
            &ctx,
        );
    }
}

proptest! {
    /// For every seeded fault schedule: if each shard keeps a live replica
    /// the answer is bit-identical to the no-fault run; otherwise it is
    /// bit-identical to a deployment of exactly the covered shards, with
    /// coverage reported truthfully.
    #[test]
    fn seeded_fault_schedules_answer_identically_or_degrade_truthfully(
        seed in any::<u64>(),
        fail_ppm in 0u32..250_000,
        timeout_ppm in 0u32..150_000,
        kills in proptest::collection::vec((0usize..9, 0u64..24), 0..3),
        entries in 12usize..26,
        shard_pick in 1usize..4,
        repl_pick in 1usize..4,
    ) {
        run_seeded(seed, fail_ppm, timeout_ppm, &kills, entries, shard_pick, repl_pick);
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert,
    Delete,
    Upsert,
    Compact,
}

fn decode_op(code: u8) -> Op {
    match code % 8 {
        0..=2 => Op::Insert,
        3 | 4 => Op::Delete,
        5 | 6 => Op::Upsert,
        _ => Op::Compact,
    }
}

fn live_ids(mirrors: &[Mirror]) -> Vec<u32> {
    let mut ids: Vec<u32> = mirrors
        .iter()
        .flat_map(|m| m.order.iter().copied())
        .collect();
    ids.sort_unstable();
    ids
}

/// Whether every replica of the shard that refused a mutation is down —
/// the only legitimate reason for [`ReisError::Unavailable`].
fn assert_group_down(cluster: &ClusterSystem, leaf: usize, ctx: &str) {
    let shard = cluster.router().shard_of_leaf(leaf);
    for replica in cluster.router().replicas(shard) {
        assert_eq!(
            cluster.leaf_health(replica),
            HealthState::Down,
            "shard {shard} refused a mutation with a live replica: {ctx}"
        );
    }
}

/// Mutation traces under transient faults at replication 2: mutations land
/// on every live replica, searches fail over, down leaves periodically
/// rejoin by replaying the aggregator log, and at the end — after all
/// leaves rejoin — every replica group's snapshot CRCs agree with each
/// other *and* with a never-faulted twin driven through the same trace.
fn run_faulted_trace(
    ops: &[(u8, u64)],
    entries: usize,
    num_shards: usize,
    seed: u64,
    fail_ppm: u32,
    timeout_ppm: u32,
) {
    let replication = 2;
    let (vectors, documents) = corpus(entries);
    let template = VectorDatabase::flat(&vectors, documents.clone()).expect("template");
    let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());

    let mut faulted = ClusterSystem::new_replicated(config, num_shards, replication)
        .unwrap()
        .with_fault_plan(Some(FaultPlan::new(seed, fail_ppm, timeout_ppm)))
        .with_retry_policy(retry());
    let mut twin = ClusterSystem::new_replicated(config, num_shards, replication).unwrap();
    faulted.deploy_flat(&vectors, &documents).unwrap();
    twin.deploy_flat(&vectors, &documents).unwrap();
    let mut mirrors = shard_mirrors(&faulted, &vectors, &documents);

    let mut version = 1u32;
    for (i, &(code, payload)) in ops.iter().enumerate() {
        match decode_op(code) {
            Op::Insert => {
                let vector = vector_for(1000 + payload as u32, payload);
                let doc = doc_for(1000 + payload as u32, version);
                match faulted.insert(&vector, doc.clone()) {
                    Ok(id) => {
                        let twin_id = twin.insert(&vector, doc.clone()).expect("twin insert");
                        assert_eq!(id, twin_id, "lockstep global id assignment");
                        mirrors[faulted.router().owner(id)].append(id, vector, doc);
                    }
                    Err(ReisError::Unavailable { leaf, .. }) => {
                        assert_group_down(&faulted, leaf, "insert");
                    }
                    Err(other) => panic!("unexpected insert error: {other}"),
                }
            }
            Op::Delete => {
                let ids = live_ids(&mirrors);
                if ids.is_empty() {
                    continue;
                }
                let id = ids[payload as usize % ids.len()];
                match faulted.delete(id) {
                    Ok(_) => {
                        twin.delete(id).expect("twin delete");
                        mirrors[faulted.router().owner(id)].remove(id);
                    }
                    Err(ReisError::Unavailable { leaf, .. }) => {
                        assert_group_down(&faulted, leaf, "delete");
                    }
                    Err(other) => panic!("unexpected delete error: {other}"),
                }
            }
            Op::Upsert => {
                let ids = live_ids(&mirrors);
                if ids.is_empty() {
                    continue;
                }
                let id = ids[payload as usize % ids.len()];
                let vector = vector_for(id, payload.wrapping_add(7));
                let doc = doc_for(id, version);
                match faulted.upsert(id, &vector, &doc) {
                    Ok(_) => {
                        twin.upsert(id, &vector, &doc).expect("twin upsert");
                        mirrors[faulted.router().owner(id)].append(id, vector, doc);
                    }
                    Err(ReisError::Unavailable { leaf, .. }) => {
                        assert_group_down(&faulted, leaf, "upsert");
                    }
                    Err(other) => panic!("unexpected upsert error: {other}"),
                }
            }
            Op::Compact => {
                faulted.compact().expect("faulted compact");
                twin.compact().expect("twin compact");
            }
        }
        version += 1;

        // A search every few ops gives the fault plan a chance to take
        // leaves down mid-trace; the identity check runs either way.
        if i % 3 == 2 {
            let query = vector_for(5_000 + i as u32, 43);
            let ctx = format!("seed={seed} fail={fail_ppm} s={num_shards} e={entries} op={i}");
            check_faulted_query(
                &mut faulted,
                &mut twin,
                &mirrors,
                &template,
                config,
                &query,
                5,
                "fault_mutated",
                &ctx,
            );
        }
        // Periodic rejoin: replay the aggregator log into the stale
        // replicas, which must re-enter lockstep immediately.
        if i % 7 == 6 {
            for leaf in faulted.down_leaves() {
                faulted.rejoin_leaf(leaf).expect("rejoin");
            }
        }
    }

    // Final rejoin, faults off: the cluster must now be indistinguishable
    // from the never-faulted twin — replica CRC lockstep, cross-system CRC
    // equality, full coverage, bit-identical answers.
    for leaf in faulted.down_leaves() {
        faulted.rejoin_leaf(leaf).expect("final rejoin");
    }
    faulted.set_fault_plan(None);
    assert_eq!(faulted.aggregator_log_len(), 0, "log drops once all rejoin");
    for shard in 0..num_shards {
        let crcs = faulted.shard_state_crcs(shard).expect("faulted crcs");
        assert!(
            crcs.windows(2).all(|w| w[0] == w[1]),
            "replica group {shard} out of lockstep: {crcs:?}"
        );
        let twin_crcs = twin.shard_state_crcs(shard).expect("twin crcs");
        assert_eq!(crcs, twin_crcs, "shard {shard} diverged from the twin");
    }
    for q in 0..3u32 {
        let query = vector_for(6_000 + q, 47);
        let ctx = format!("seed={seed} fail={fail_ppm} s={num_shards} e={entries} final q={q}");
        let full = check_faulted_query(
            &mut faulted,
            &mut twin,
            &mirrors,
            &template,
            config,
            &query,
            5,
            "fault_mutated",
            &ctx,
        );
        assert!(full, "all replicas rejoined, coverage must be full: {ctx}");
    }
}

proptest! {
    /// Random interleavings of mutations, faulted searches and rejoins
    /// keep replica groups in CRC lockstep and the cluster bit-identical
    /// to a never-faulted twin once every leaf has caught up.
    #[test]
    fn faulted_mutation_traces_keep_replicas_in_lockstep(
        ops in proptest::collection::vec((0u8..8, 0u64..1_000), 1..22),
        entries in 10usize..24,
        num_shards in 1usize..4,
        seed in any::<u64>(),
        fail_ppm in 0u32..220_000,
        timeout_ppm in 0u32..120_000,
    ) {
        run_faulted_trace(&ops, entries, num_shards, seed, fail_ppm, timeout_ppm);
    }
}

/// The structured scenario family from `reis-workloads` — healthy
/// baseline, transient churn, single kills, one whole-group kill — across
/// shard/replication shapes. The whole-group kill must actually force a
/// truthfully degraded answer.
#[test]
fn covering_scenarios_hold_the_guarantee_across_shapes() {
    let entries = 24;
    let (vectors, documents) = corpus(entries);
    let template = VectorDatabase::flat(&vectors, documents.clone()).unwrap();
    let config = ReisConfig::tiny();

    for (num_shards, replication) in [(2usize, 1usize), (3, 1), (2, 2), (3, 2), (2, 3)] {
        let num_leaves = num_shards * replication;
        let scenarios = FaultScenario::covering(num_leaves, replication, 0xC0FF_EE00);
        for (s, scenario) in scenarios.iter().enumerate() {
            let mut faulted = ClusterSystem::new_replicated(config, num_shards, replication)
                .unwrap()
                .with_fault_plan(Some(plan_for(scenario)))
                .with_retry_policy(retry());
            let mut twin = ClusterSystem::new_replicated(config, num_shards, replication).unwrap();
            faulted.deploy_flat(&vectors, &documents).unwrap();
            twin.deploy_flat(&vectors, &documents).unwrap();
            let mirrors = shard_mirrors(&faulted, &vectors, &documents);

            // Kill scenarios need enough queries for every seeded
            // `nth_call < 32` to be reached and retried through — and a
            // replica only starts consuming calls once the replicas ahead
            // of it in failover order are down, so the budgets add up.
            let queries = if scenario.kills.is_empty() {
                6
            } else {
                6 + scenario
                    .kills
                    .iter()
                    .map(|&(_, nth_call)| nth_call as u32 + 2)
                    .sum::<u32>()
            };
            let mut degraded_seen = false;
            for q in 0..queries {
                let query = vector_for(7_000 + q, 53);
                let ctx = format!("s={num_shards} r={replication} scenario={s} q={q}");
                let full = check_faulted_query(
                    &mut faulted,
                    &mut twin,
                    &mirrors,
                    &template,
                    config,
                    &query,
                    5,
                    "fault_covering",
                    &ctx,
                );
                degraded_seen |= !full;
            }
            if scenario.kills_whole_group(replication) {
                assert!(
                    degraded_seen,
                    "whole-group kill must degrade: s={num_shards} r={replication} scenario={s}"
                );
            }
            if s == 0 {
                assert!(
                    !degraded_seen,
                    "the healthy baseline must never degrade: s={num_shards} r={replication}"
                );
            }
        }
    }
}

/// Deterministic failover walk at replication 2: a killed primary fails
/// over without touching the answer, mutations keep only the live
/// replicas moving (the down one goes stale, CRC-visibly), and rejoin
/// replays the aggregator log back into exact lockstep.
#[test]
fn failover_mutation_and_rejoin_restore_replica_lockstep() {
    let entries = 18;
    let (num_shards, replication) = (3, 2);
    let (vectors, documents) = corpus(entries);
    let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());

    // Kill leaf 2 — shard 1's primary — at its second call.
    let mut faulted = ClusterSystem::new_replicated(config, num_shards, replication)
        .unwrap()
        .with_fault_plan(Some(FaultPlan::healthy().with_kill(2, 1)))
        .with_retry_policy(RetryPolicy::new(
            0,
            Nanos::from_micros(40),
            Nanos::from_micros(900),
        ));
    let mut twin = ClusterSystem::new_replicated(config, num_shards, replication).unwrap();
    faulted.deploy_flat(&vectors, &documents).unwrap();
    twin.deploy_flat(&vectors, &documents).unwrap();
    let template = VectorDatabase::flat(&vectors, documents.clone()).unwrap();
    let mirrors = shard_mirrors(&faulted, &vectors, &documents);

    let check = |faulted: &mut ClusterSystem, twin: &mut ClusterSystem, q: u32, ctx: &str| {
        let query = vector_for(8_000 + q, 59);
        let full = check_faulted_query(
            faulted,
            twin,
            &mirrors,
            &template,
            config,
            &query,
            5,
            "fault_failover",
            ctx,
        );
        assert!(full, "failover keeps coverage full: {ctx}");
    };

    check(&mut faulted, &mut twin, 0, "pre-kill q0");
    assert_eq!(faulted.leaf_health(2), HealthState::Healthy);
    check(&mut faulted, &mut twin, 1, "kill fires q1");
    assert_eq!(
        faulted.leaf_health(2),
        HealthState::Down,
        "primary went down"
    );
    assert_eq!(faulted.down_leaves(), vec![2]);

    // Mutations while leaf 2 is down: applied to the live replicas of
    // each owning shard, retained in the aggregator log for the rejoin.
    let a = faulted
        .insert(&vector_for(900, 1), doc_for(900, 1))
        .unwrap();
    let b = twin.insert(&vector_for(900, 1), doc_for(900, 1)).unwrap();
    assert_eq!(a, b);
    faulted.delete(7).unwrap();
    twin.delete(7).unwrap();
    faulted
        .upsert(13, &vector_for(13, 77), &doc_for(13, 2))
        .unwrap();
    twin.upsert(13, &vector_for(13, 77), &doc_for(13, 2))
        .unwrap();
    faulted.compact().unwrap();
    twin.compact().unwrap();
    assert_eq!(
        faulted.aggregator_log_len(),
        4,
        "insert+delete+upsert+compact retained"
    );

    // The down replica is visibly stale; its healthy peer is not.
    let crcs = faulted.shard_state_crcs(1).unwrap();
    assert_ne!(crcs[0], crcs[1], "stale replica must differ until rejoin");
    for shard in [0usize, 2] {
        let crcs = faulted.shard_state_crcs(shard).unwrap();
        assert_eq!(
            crcs[0], crcs[1],
            "untouched group {shard} stays in lockstep"
        );
    }

    // Rejoin: replay the log, lift the kill, re-enter lockstep.
    faulted.rejoin_leaf(2).unwrap();
    assert_eq!(faulted.leaf_health(2), HealthState::Recovered);
    assert_eq!(faulted.aggregator_log_len(), 0);
    for shard in 0..num_shards {
        let crcs = faulted.shard_state_crcs(shard).unwrap();
        assert_eq!(crcs[0], crcs[1], "group {shard} in lockstep after rejoin");
        assert_eq!(
            crcs,
            twin.shard_state_crcs(shard).unwrap(),
            "matches the twin"
        );
    }
    check(&mut faulted, &mut twin, 2, "post-rejoin q2");
    assert_eq!(
        faulted.leaf_health(2),
        HealthState::Healthy,
        "a successful call promotes the recovered leaf"
    );

    // Rejoining a live leaf is an error, not a silent no-op.
    assert!(faulted.rejoin_leaf(2).is_err());
}

/// A shard whose only replica is dead refuses mutations with
/// [`ReisError::Unavailable`] — without minting ids — while searches keep
/// serving the covered shards and the dead shard rejoins cleanly.
#[test]
fn dead_shard_refuses_mutations_without_burning_ids() {
    let entries = 18;
    let (vectors, documents) = corpus(entries);
    let config = ReisConfig::tiny();
    let template = VectorDatabase::flat(&vectors, documents.clone()).unwrap();

    let mut faulted = ClusterSystem::new(config, 3)
        .unwrap()
        .with_fault_plan(Some(FaultPlan::healthy().with_kill(1, 0)))
        .with_retry_policy(RetryPolicy::new(
            0,
            Nanos::from_micros(40),
            Nanos::from_micros(900),
        ));
    let mut twin = ClusterSystem::new(config, 3).unwrap();
    faulted.deploy_flat(&vectors, &documents).unwrap();
    twin.deploy_flat(&vectors, &documents).unwrap();
    let mut mirrors = shard_mirrors(&faulted, &vectors, &documents);

    // First query takes the killed leaf down; the answer degrades to the
    // two covered shards.
    let full = check_faulted_query(
        &mut faulted,
        &mut twin,
        &mirrors,
        &template,
        config,
        &vector_for(9_000, 61),
        5,
        "fault_dead_shard",
        "kill q0",
    );
    assert!(!full, "an R = 1 kill must degrade its shard");
    assert_eq!(faulted.down_leaves(), vec![1]);

    // Mutations addressed to the dead shard are refused with the leaf
    // named; ids 6..12 are shard 1's deploy-time slice.
    match faulted.delete(10) {
        Err(ReisError::Unavailable { leaf, .. }) => assert_eq!(leaf, 1),
        other => panic!("delete of a dead shard must be unavailable, got {other:?}"),
    }
    match faulted.upsert(6, &vector_for(6, 5), &doc_for(6, 9)) {
        Err(ReisError::Unavailable { leaf, .. }) => assert_eq!(leaf, 1),
        other => panic!("upsert of a dead shard must be unavailable, got {other:?}"),
    }

    // A batch whose round-robin ids would touch the dead shard is refused
    // *before* any id is minted: the watermark does not move.
    assert_eq!(faulted.router().next_global(), entries as u32);
    let batch_vectors: Vec<Vec<f32>> = (0..3).map(|i| vector_for(950 + i, 3)).collect();
    let batch_docs: Vec<Vec<u8>> = (0..3).map(|i| doc_for(950 + i, 1)).collect();
    assert!(matches!(
        faulted.insert_batch(&batch_vectors, batch_docs),
        Err(ReisError::Unavailable { leaf: 1, .. })
    ));
    assert_eq!(
        faulted.router().next_global(),
        entries as u32,
        "a refused batch mints no ids"
    );

    // Mutations to live shards proceed and stay in lockstep with the twin
    // (id 18 routes round-robin to shard 0).
    faulted.delete(0).unwrap();
    twin.delete(0).unwrap();
    mirrors[0].remove(0);
    let id = faulted
        .insert(&vector_for(960, 2), doc_for(960, 1))
        .unwrap();
    assert_eq!(
        id,
        twin.insert(&vector_for(960, 2), doc_for(960, 1)).unwrap()
    );
    assert_eq!(faulted.router().owner(id), 0);
    mirrors[0].append(id, vector_for(960, 2), doc_for(960, 1));

    // The degraded identity still holds after the mutations.
    let full = check_faulted_query(
        &mut faulted,
        &mut twin,
        &mirrors,
        &template,
        config,
        &vector_for(9_001, 61),
        5,
        "fault_dead_shard",
        "mutated q1",
    );
    assert!(!full);

    // Rejoin restores full coverage and bit-identity (the dead shard
    // missed nothing of its own; the log replays only its records).
    faulted.rejoin_leaf(1).unwrap();
    let full = check_faulted_query(
        &mut faulted,
        &mut twin,
        &mirrors,
        &template,
        config,
        &vector_for(9_002, 61),
        5,
        "fault_dead_shard",
        "rejoined q2",
    );
    assert!(full, "rejoin restores full coverage");
    let id = faulted
        .insert(&vector_for(970, 4), doc_for(970, 1))
        .unwrap();
    assert_eq!(
        faulted.router().owner(id),
        1,
        "the revived shard accepts inserts"
    );
}

/// Per-leaf stores for a durable cluster plus the manifest VFS.
fn durable_parts(leaves: usize) -> (Vec<MemVfs>, Vec<DurableStore>, MemVfs) {
    let mems: Vec<MemVfs> = (0..leaves).map(|_| MemVfs::new()).collect();
    let stores = mems
        .iter()
        .map(|mem| DurableStore::new(Box::new(mem.clone())))
        .collect();
    let manifest = MemVfs::new();
    (mems, stores, manifest)
}

/// A down leaf rejoins from its *durable* epoch: single-device recovery
/// from its own store, then aggregator-log catch-up, back into CRC
/// lockstep — and the whole cluster round-trips through save/reopen with
/// the replication factor in the manifest and clean quarantine counts.
#[test]
fn downed_leaf_reloads_from_its_durable_store_and_catches_up() {
    let entries = 20;
    let (num_shards, replication) = (2, 2);
    let (vectors, documents) = corpus(entries);
    let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());

    let (mems, stores, manifest) = durable_parts(num_shards * replication);
    let (mut cluster, report) =
        ClusterSystem::open_replicated(config, stores, Box::new(manifest.clone()), replication)
            .unwrap();
    assert!(report.is_none(), "fresh stores have nothing to recover");
    cluster.set_fault_plan(Some(FaultPlan::healthy().with_kill(0, 0)));
    cluster.set_retry_policy(RetryPolicy::new(
        0,
        Nanos::from_micros(40),
        Nanos::from_micros(900),
    ));
    cluster.deploy_flat(&vectors, &documents).unwrap();
    assert_eq!(cluster.save().unwrap(), 1);

    let mut twin = ClusterSystem::new_replicated(config, num_shards, replication).unwrap();
    twin.deploy_flat(&vectors, &documents).unwrap();

    // The kill fires on the first fan-out; shard 0 fails over to leaf 1.
    let a = cluster.search(&vector_for(400, 7), 5).unwrap();
    let b = twin.search(&vector_for(400, 7), 5).unwrap();
    assert!(a.is_full_coverage(), "replication hides the kill");
    assert_eq!(a.results, b.results);
    assert_eq!(cluster.down_leaves(), vec![0]);

    // Mutations while leaf 0 is down — its durable store stays at the
    // saved epoch; everyone live logs WAL frames as usual.
    let id = cluster
        .insert(&vector_for(980, 6), doc_for(980, 1))
        .unwrap();
    assert_eq!(
        id,
        twin.insert(&vector_for(980, 6), doc_for(980, 1)).unwrap()
    );
    assert_eq!(
        cluster.router().owner(id),
        0,
        "the insert lands on the degraded group"
    );
    cluster.delete(1).unwrap();
    twin.delete(1).unwrap();
    cluster
        .upsert(12, &vector_for(12, 88), &doc_for(12, 2))
        .unwrap();
    twin.upsert(12, &vector_for(12, 88), &doc_for(12, 2))
        .unwrap();
    cluster.compact().unwrap();
    twin.compact().unwrap();
    assert_eq!(cluster.aggregator_log_len(), 4);

    // Save skips the down leaf (its store must stay a consistent prefix).
    assert_eq!(cluster.save().unwrap(), 2);

    // Reload leaf 0 from its durable store: recovery reconstructs its
    // pre-down state, catch-up replays the missed shard-0 mutations.
    let report = cluster
        .reload_leaf(0, DurableStore::new(Box::new(mems[0].clone())))
        .unwrap();
    assert_eq!(
        report.quarantine_count(),
        0,
        "a clean store quarantines nothing"
    );
    assert_eq!(cluster.leaf_health(0), HealthState::Recovered);
    assert_eq!(cluster.aggregator_log_len(), 0);
    for shard in 0..num_shards {
        let crcs = cluster.shard_state_crcs(shard).unwrap();
        assert_eq!(crcs[0], crcs[1], "group {shard} in lockstep after reload");
        assert_eq!(crcs, twin.shard_state_crcs(shard).unwrap());
    }
    for q in 0..3u32 {
        let query = vector_for(420 + q, 7);
        let a = cluster.search(&query, 5).unwrap();
        let b = twin.search(&query, 5).unwrap();
        assert!(a.is_full_coverage());
        assert_eq!(
            a.results, b.results,
            "reloaded cluster answers like the twin"
        );
        assert_eq!(a.documents, b.documents);
        assert_eq!(a.activity, b.activity);
    }

    // A post-save scrub over every (now live) leaf passes clean.
    cluster.set_scrub_on_save(true);
    assert_eq!(cluster.save().unwrap(), 3);

    // Full cluster reopen: the manifest carries the replication factor,
    // recovery reports one clean leaf report per store.
    drop(cluster);
    let stores: Vec<DurableStore> = mems
        .iter()
        .map(|mem| DurableStore::new(Box::new(mem.clone())))
        .collect();
    let (mut reopened, report) =
        ClusterSystem::open(config, stores, Box::new(manifest.clone())).unwrap();
    let report = report.expect("manifest present, recovery runs");
    assert_eq!(report.epoch, 3);
    assert_eq!(
        report.quarantine_counts(),
        vec![0; num_shards * replication]
    );
    assert_eq!(reopened.replication(), replication);
    assert_eq!(reopened.num_shards(), num_shards);
    for q in 0..2u32 {
        let query = vector_for(420 + q, 7);
        let a = reopened.search(&query, 5).unwrap();
        let b = twin.search(&query, 5).unwrap();
        assert_eq!(
            a.results, b.results,
            "reopened cluster answers like the twin"
        );
        assert_eq!(a.documents, b.documents);
    }

    // Opening with a contradicting factor is rejected by the manifest.
    drop(reopened);
    let stores: Vec<DurableStore> = mems
        .iter()
        .map(|mem| DurableStore::new(Box::new(mem.clone())))
        .collect();
    assert!(
        ClusterSystem::open_replicated(config, stores, Box::new(manifest.clone()), 1).is_err(),
        "manifest records replication 2; requesting 1 must fail"
    );
}

/// `ClusterSystem::scrub` finds a flipped byte in any leaf's durable
/// epochs, and `set_scrub_on_save` turns that detection into a failed
/// save.
#[test]
fn scrub_finds_leaf_corruption_and_gates_save() {
    let entries = 16;
    let (vectors, documents) = corpus(entries);
    let config = ReisConfig::tiny();

    let (mems, stores, manifest) = durable_parts(2);
    let (mut cluster, _) = ClusterSystem::open(config, stores, Box::new(manifest.clone())).unwrap();
    cluster.deploy_flat(&vectors, &documents).unwrap();
    cluster
        .insert(&vector_for(990, 2), doc_for(990, 1))
        .unwrap();
    cluster.save().unwrap();

    let reports = cluster.scrub().unwrap();
    assert_eq!(reports.len(), 2);
    assert!(
        reports.iter().all(|r| r.is_clean()),
        "freshly saved stores are clean"
    );
    assert!(reports.iter().all(|r| r.snapshots_checked > 0));

    // Flip one byte in leaf 1's newest snapshot.
    let inspect = DurableStore::new(Box::new(mems[1].clone()));
    let newest = inspect.snapshot_seqs_desc().unwrap()[0];
    let name = DurableStore::snapshot_name(newest);
    let mut bytes = mems[1].read_file(&name).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    mems[1].write_file(&name, &bytes).unwrap();

    let reports = cluster.scrub().unwrap();
    assert!(reports[0].is_clean(), "leaf 0 is untouched");
    assert_eq!(reports[1].corrupt_snapshots, vec![newest]);
    assert_eq!(reports[1].corrupt_artifacts(), 1);

    // With the post-save scrub armed, the corruption fails the save; the
    // error names the leaf.
    cluster.set_scrub_on_save(true);
    let err = cluster.save().unwrap_err();
    assert!(
        err.to_string().contains("leaf 1"),
        "scrub failure must name the corrupt leaf: {err}"
    );

    // Without it, saving still succeeds — scrubbing is an opt-in gate —
    // and the next save's pruning retires the corrupt epoch.
    cluster.set_scrub_on_save(false);
    cluster.save().unwrap();
    cluster.set_scrub_on_save(true);
    cluster.save().unwrap();
}

/// Fault schedules are replayable: the same seeded plan yields the same
/// outcomes — modelled latencies, penalties and backoffs included — and a
/// zero-rate plan is indistinguishable from running with no plan at all
/// (the retry machinery is free on the healthy path).
#[test]
fn fault_schedules_replay_bit_identically() {
    let entries = 24;
    let (vectors, documents) = corpus(entries);
    let config = ReisConfig::tiny();
    let queries: Vec<Vec<f32>> = (0..8u32).map(|q| vector_for(9_500 + q, 67)).collect();

    let run = |plan: Option<FaultPlan>| {
        let mut cluster = ClusterSystem::new_replicated(config, 3, 2)
            .unwrap()
            .with_fault_plan(plan)
            .with_retry_policy(retry());
        cluster.deploy_flat(&vectors, &documents).unwrap();
        queries
            .iter()
            .map(|q| cluster.search(q, 5).unwrap())
            .collect::<Vec<_>>()
    };

    let plan = FaultPlan::new(0xFA11, 150_000, 80_000).with_kill(4, 3);
    let first = run(Some(plan.clone()));
    let second = run(Some(plan));
    assert_eq!(first, second, "the same plan must replay the same outcomes");
    assert!(
        first.iter().any(|o| o.fanout_latency > Nanos::ZERO),
        "the schedule actually ran fan-outs"
    );

    let healthy = run(Some(FaultPlan::healthy()));
    let bare = run(None);
    assert_eq!(
        healthy, bare,
        "a zero-rate plan must be bit-identical to no plan, latencies included"
    );
}
