//! Scheduler identity: the persistent worker pool changes *when threads
//! exist*, never *what a query returns*.
//!
//! PR-10 moved every parallel execution path — sharded scan windows, fused
//! page chunks and replica batch workers — from scoped `std::thread` spawns
//! onto one long-lived work-stealing pool (`reis-sched`), and added the
//! asynchronous request [`Pipeline`] in front of the batch executors. Both
//! are pure scheduling changes, so this suite proves the strongest claim
//! available: results, documents, modelled latency/activity and
//! transferred-entry accounting are bit-identical across
//! `ScanExecutor::{Pooled, SpawnScoped}` × `ScanParallelism` ×
//! `BatchFusion` × pool sizes, and a pipeline-formed batch answers exactly
//! like a direct `search_batch` call.
//!
//! # The scheduler CI gate
//!
//! When `REIS_TEST_SUMMARY_DIR` is set, the property tests write one
//! summary file per test, one line per generated case. CI runs this suite
//! four times crossing `REIS_TEST_PARALLELISM={1,4}` (the forced auto-shard
//! budget) with `REIS_SCHED_WORKERS={1,4}` (the pool size) and diffs every
//! leg against the first: any accounting that depends on how many workers
//! the pool has — or on which executor ran the shards — fails the gate.
//! The pipeline property makes the diff sensitive to formation order
//! because its summary records virtual completion times, which would shift
//! if pool size leaked into batch formation.

use std::io::Write;

use proptest::prelude::*;

use reis_core::{
    AdaptiveFiltering, BatchFusion, CompactionPolicy, LanePriority, PipelineConfig, PipelineReply,
    PipelineRequest, ReisConfig, ReisError, ReisSystem, ScanExecutor, ScanParallelism,
    SearchOutcome, VectorDatabase,
};
use reis_workloads::ArrivalTrace;

fn vectors(n: usize, dim: usize, salt: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| (((i * 23 + d * 11 + salt * 5) % 29) as f32 - 14.0) / 6.0)
                .collect()
        })
        .collect()
}

fn documents(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("doc {i}").into_bytes()).collect()
}

/// Full-outcome equality modulo the raw error-injection counter (the same
/// exemption the adaptive/fused suites document: the device RNG's position
/// depends on TLC read history, not on who executed the shard).
fn assert_outcome_eq(a: &SearchOutcome, b: &SearchOutcome, ctx: &str) {
    assert_eq!(a.results, b.results, "results: {ctx}");
    assert_eq!(a.documents, b.documents, "documents: {ctx}");
    assert_eq!(a.latency, b.latency, "latency: {ctx}");
    assert_eq!(a.activity, b.activity, "activity: {ctx}");
    assert_eq!(a.energy, b.energy, "energy: {ctx}");
    let mut fa = a.flash_stats;
    let mut fb = b.flash_stats;
    fa.injected_bit_errors = 0;
    fb.injected_bit_errors = 0;
    assert_eq!(fa, fb, "flash stats: {ctx}");
}

/// Append one summary line to `<REIS_TEST_SUMMARY_DIR>/<test>.txt` (no-op
/// when the variable is unset); first write truncates, so reruns diff
/// cleanly. Same contract as the determinism-gate suites.
fn record_summary(test: &str, line: &str) {
    let Some(dir) = std::env::var_os("REIS_TEST_SUMMARY_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("summary dir");
    let path = dir.join(format!("{test}.txt"));
    thread_local! {
        static STARTED: std::cell::RefCell<std::collections::HashSet<String>> =
            std::cell::RefCell::new(std::collections::HashSet::new());
    }
    let fresh = STARTED.with(|s| s.borrow_mut().insert(test.to_string()));
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .append(!fresh)
        .truncate(fresh)
        .open(&path)
        .expect("summary file");
    writeln!(file, "{line}").expect("summary write");
}

/// The forced auto-shard budget of the gate (`REIS_TEST_PARALLELISM`), or
/// `fallback` when unset — the same lever the adaptive gate uses to make
/// different legs partition every scan differently.
fn forced_budget(fallback: usize) -> usize {
    std::env::var("REIS_TEST_PARALLELISM")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(fallback)
}

#[test]
fn worker_panic_is_isolated_and_the_system_stays_correct() {
    // A panicking pool task must surface as an error — not poison the pool
    // or abort the process — and the system must answer the next query
    // exactly like a fresh one.
    let all = vectors(96, 64, 6);
    let db = VectorDatabase::flat(&all, documents(96)).unwrap();
    let mut system = ReisSystem::new(ReisConfig::tiny());
    let id = system.deploy(&db).unwrap();

    let panic = system
        .scheduler()
        .scope(|scope| {
            scope.spawn(|_ctx| panic!("deliberate task failure"));
        })
        .expect_err("the panic must surface");
    assert!(
        panic.message.contains("deliberate task failure"),
        "panic payload lost: {}",
        panic.message
    );

    // The pool survives: queries on the same system still match a system
    // whose pool never saw a panic.
    let mut fresh = ReisSystem::new(ReisConfig::tiny());
    let fresh_id = fresh.deploy(&db).unwrap();
    for q in 0..3 {
        let a = system.search(id, &all[q * 29], 5).unwrap();
        let b = fresh.search(fresh_id, &all[q * 29], 5).unwrap();
        assert_outcome_eq(&a, &b, &format!("after panic, query {q}"));
    }
}

#[test]
fn pipeline_backpressure_sheds_then_recovers() {
    // Past `queue_depth` queued searches, submit sheds with
    // `ReisError::Overloaded` and queues nothing; once the lane drains, the
    // pipeline accepts again and every accepted request completes.
    let all = vectors(96, 64, 8);
    let db = VectorDatabase::flat(&all, documents(96)).unwrap();
    let mut system = ReisSystem::new(ReisConfig::tiny());
    let id = system.deploy(&db).unwrap();

    let config = PipelineConfig::default()
        .with_max_batch(16)
        .with_max_wait_us(100)
        .with_queue_depth(4);
    let mut pipeline = system.pipeline(id, config);
    let mut accepted = 0usize;
    for i in 0..6 {
        let submitted = pipeline.submit(
            10,
            PipelineRequest::Search {
                query: all[i * 7].clone(),
                k: 3,
            },
        );
        if i < 4 {
            submitted.expect("under the bound");
            accepted += 1;
        } else {
            match submitted {
                Err(ReisError::Overloaded { depth }) => assert_eq!(depth, 4),
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
    }
    assert_eq!(pipeline.shed(), 2);
    assert_eq!(pipeline.queued(), 4);

    // Advancing past the formation deadline drains the lane...
    pipeline.run_until(1_000_000);
    assert_eq!(pipeline.queued(), 0);
    // ...after which the same submission succeeds.
    pipeline
        .submit(
            1_000_010,
            PipelineRequest::Search {
                query: all[3].clone(),
                k: 3,
            },
        )
        .expect("drained lane accepts again");
    accepted += 1;
    pipeline.flush();
    let completions = pipeline.drain_completions();
    assert_eq!(completions.len(), accepted);
    for completion in &completions {
        let reply = completion.reply.as_ref().expect("healthy system");
        assert!(matches!(reply, PipelineReply::Search(_)));
        assert!(completion.completed_ns >= completion.dispatched_ns);
        assert!(completion.dispatched_ns >= completion.submitted_ns);
    }
    assert_eq!(pipeline.shed(), 2, "recovery must not re-count old sheds");
}

#[test]
fn pipeline_mutations_first_gives_read_your_writes() {
    // Under MutationsFirst, a search batch never dispatches while an
    // earlier-arriving insert is queued: the search must see the insert.
    let all = vectors(64, 64, 10);
    let db = VectorDatabase::flat(&all, documents(64)).unwrap();
    let mut system = ReisSystem::new(ReisConfig::tiny());
    let id = system.deploy(&db).unwrap();

    // A probe vector far from the corpus, then a search for exactly it.
    let probe: Vec<f32> = (0..64)
        .map(|d| if d % 2 == 0 { 9.0 } else { -9.0 })
        .collect();
    let mut pipeline = system.pipeline(
        id,
        PipelineConfig::default().with_priority(LanePriority::MutationsFirst),
    );
    pipeline
        .submit(
            5,
            PipelineRequest::Insert {
                vector: probe.clone(),
                document: b"the new arrival".to_vec(),
            },
        )
        .unwrap();
    pipeline
        .submit(
            6,
            PipelineRequest::Search {
                query: probe.clone(),
                k: 1,
            },
        )
        .unwrap();
    pipeline.flush();
    let completions = pipeline.drain_completions();
    assert_eq!(completions.len(), 2);
    let Ok(PipelineReply::Search(outcome)) = &completions[1].reply else {
        panic!("second completion must be the search");
    };
    assert_eq!(
        outcome.documents[0], b"the new arrival",
        "the search dispatched before the mutation it arrived after"
    );
}

/// Build the executor × parallelism legs the identity property compares.
/// Every leg must agree with every other — and with itself across the
/// gate's `REIS_SCHED_WORKERS` pool sizes.
fn scheduler_mode_configs(base: ReisConfig, shards: usize) -> Vec<(String, ReisConfig)> {
    let mut legs = Vec::new();
    for (exec_name, executor) in [
        ("pooled", ScanExecutor::Pooled),
        ("spawn", ScanExecutor::SpawnScoped),
    ] {
        let with_exec = base.with_scan_executor(executor);
        legs.push((
            format!("{exec_name}/pinned-sequential"),
            with_exec.with_scan_parallelism(ScanParallelism::pinned_sequential()),
        ));
        legs.push((
            format!("{exec_name}/sharded"),
            with_exec.with_scan_parallelism(
                ScanParallelism::sharded(forced_budget(shards)).with_min_pages_per_shard(1),
            ),
        ));
    }
    legs
}

proptest! {
    /// Searches and batch searches are bit-identical across
    /// `ScanExecutor::{Pooled, SpawnScoped}` × `ScanParallelism` ×
    /// `BatchFusion` over random database shapes and mutation traces. The
    /// transferred-entry and sense accounting lands in the scheduler-gate
    /// summary, so CI additionally diffs it across forced shard budgets
    /// *and* pool sizes.
    #[test]
    fn executor_identity_across_pool_spawn_and_fusion(
        entries in 24usize..72,
        dim_words in 1usize..3,
        window in 1usize..7,
        shards in 2usize..5,
        mutations in 0usize..6,
        seed in 0usize..1_000,
    ) {
        let dim = dim_words * 32;
        let base = ReisConfig::tiny()
            .with_adaptive_scope(AdaptiveFiltering::All)
            .with_adaptive_window(window)
            .with_compaction(CompactionPolicy::manual());
        let all = vectors(entries, dim, seed);
        let nlist = (entries / 6).clamp(1, 4);
        let db = VectorDatabase::ivf(&all, documents(entries), nlist).expect("database");
        let queries: Vec<Vec<f32>> =
            (0..3).map(|q| all[(seed + q * 17) % entries].clone()).collect();
        let nprobe = nlist.min(2);

        // Replayed verbatim on every fresh system so all legs search the
        // identical index state.
        let mutate = |system: &mut ReisSystem, id: u32| {
            for m in 0..mutations {
                let x = (seed * 29 + m * 11) % 10;
                let vector: Vec<f32> = (0..dim)
                    .map(|d| (((m * 17 + d * 3 + seed) % 23) as f32 - 11.0) / 5.0)
                    .collect();
                if x < 5 {
                    system
                        .insert(id, &vector, format!("ins {m}").into_bytes())
                        .expect("insert");
                } else if x < 7 {
                    let _ = system.delete(id, ((seed + m * 3) % entries) as u32);
                } else {
                    let _ = system.upsert(
                        id,
                        ((seed + m * 5) % entries) as u32,
                        &vector,
                        format!("ups {m}").as_bytes(),
                    );
                }
            }
        };

        let mut per_leg: Vec<(String, Vec<SearchOutcome>)> = Vec::new();
        for (name, config) in scheduler_mode_configs(base, shards) {
            let mut system = ReisSystem::new(config);
            let id = system.deploy(&db).expect("deploy");
            mutate(&mut system, id);
            let mut outcomes: Vec<SearchOutcome> = Vec::new();
            for q in &queries {
                outcomes.push(system.search(id, q, 1).expect("bf search"));
            }
            for q in &queries {
                outcomes.push(
                    system
                        .ivf_search_with_nprobe(id, q, 1, nprobe)
                        .expect("ivf search"),
                );
            }
            per_leg.push((name, outcomes));
        }
        let (ref_name, reference) = &per_leg[0];
        for (name, got) in &per_leg[1..] {
            for (i, (a, b)) in reference.iter().zip(got).enumerate() {
                assert_outcome_eq(a, b, &format!("{ref_name} vs {name}, query {i}"));
            }
        }

        // Batch executors: the pooled fused batch, the pooled replica
        // batch and the spawn-scoped replica batch must each be per-query
        // bit-identical to the sequential reference.
        let mut fused_senses = 0u64;
        for (name, config) in [
            ("pooled-fused", base.with_scan_executor(ScanExecutor::Pooled)),
            (
                "pooled-replicas",
                base.with_scan_executor(ScanExecutor::Pooled)
                    .with_batch_fusion(BatchFusion::Replicas),
            ),
            (
                "spawn-replicas",
                base.with_scan_executor(ScanExecutor::SpawnScoped)
                    .with_batch_fusion(BatchFusion::Replicas),
            ),
        ] {
            let mut system = ReisSystem::new(config);
            let id = system.deploy(&db).expect("batch deploy");
            mutate(&mut system, id);
            let before = *system.controller().device().stats();
            let bf = system
                .search_batch(id, &queries, 1, shards)
                .expect("bf batch");
            if name == "pooled-fused" {
                fused_senses = system
                    .controller()
                    .device()
                    .stats()
                    .delta_since(&before)
                    .page_reads;
            }
            let ivf = system
                .ivf_search_batch_with_nprobe(id, &queries, 1, nprobe, shards)
                .expect("ivf batch");
            for (i, (b, s)) in bf.iter().chain(&ivf).zip(reference).enumerate() {
                assert_outcome_eq(b, s, &format!("{name} batch vs sequential, query {i}"));
            }
        }

        // Gate summary: identical regardless of executor, shard budget or
        // pool size — that is precisely the scheduler-invariance claim.
        let entries_line: Vec<String> = reference
            .iter()
            .map(|o| format!("{}/{}", o.activity.fine_entries, o.activity.fine_windows))
            .collect();
        record_summary(
            "executor_identity_across_pool_spawn_and_fusion",
            &format!(
                "case window={window} shards={shards} entries={} mutations={mutations} \
                 per_query={} fused_senses={fused_senses}",
                entries,
                entries_line.join(","),
            ),
        );
    }

    /// A pipeline-formed batch answers exactly like a direct
    /// `search_batch` call, and the whole pipeline — completion ids,
    /// virtual times, batch sizes, shed counts — is deterministic for a
    /// seeded arrival trace. The summary records the completion schedule,
    /// so the gate diff would catch pool size leaking into formation.
    #[test]
    fn pipeline_matches_direct_batch_and_is_deterministic(
        entries in 24usize..64,
        dim_words in 1usize..3,
        num_requests in 4usize..24,
        max_batch in 1usize..9,
        max_wait_us in 10u64..400,
        offered_qps in 20_000u64..400_000,
        seed in 0u64..1_000,
    ) {
        let dim = dim_words * 32;
        let all = vectors(entries, dim, seed as usize);
        let db = VectorDatabase::flat(&all, documents(entries)).expect("database");
        // Horizon sized to cover `num_requests` arrivals, deterministically
        // doubled on the rare short draw.
        let mut duration_us =
            ((num_requests as f64 / offered_qps as f64) * 2e6).ceil() as u64 + 1_000;
        let mut trace = ArrivalTrace::poisson(offered_qps as f64, duration_us, entries, seed);
        while trace.len() < num_requests {
            duration_us *= 2;
            trace = ArrivalTrace::poisson(offered_qps as f64, duration_us, entries, seed);
        }
        let arrivals: Vec<_> = trace.events().iter().take(num_requests).copied().collect();
        let config = PipelineConfig::default()
            .with_max_batch(max_batch)
            .with_max_wait_us(max_wait_us);

        let run = || {
            let mut system = ReisSystem::new(ReisConfig::tiny());
            let id = system.deploy(&db).expect("deploy");
            let mut pipeline = system.pipeline(id, config);
            for event in &arrivals {
                pipeline
                    .submit(
                        event.at_ns,
                        PipelineRequest::Search {
                            query: all[event.query_index].clone(),
                            k: 3,
                        },
                    )
                    .expect("default queue depth exceeds the request count");
            }
            pipeline.flush();
            let shed = pipeline.shed();
            (pipeline.drain_completions(), shed)
        };
        let (completions, shed) = run();
        let (replay, replay_shed) = run();
        prop_assert_eq!(&completions, &replay, "pipeline must be trace-deterministic");
        prop_assert_eq!(shed, replay_shed);
        prop_assert_eq!(completions.len(), arrivals.len());

        // Per-request answers equal a direct batch call on a fresh system,
        // in completion order (fused batches are per-query bit-identical
        // to sequential execution, so formation boundaries cannot matter).
        let mut direct_system = ReisSystem::new(ReisConfig::tiny());
        let direct_id = direct_system.deploy(&db).expect("direct deploy");
        let ordered: Vec<Vec<f32>> = completions
            .iter()
            .map(|c| all[arrivals[c.request_id as usize].query_index].clone())
            .collect();
        let direct = direct_system
            .search_batch(direct_id, &ordered, 3, 4)
            .expect("direct batch");
        for (i, (completion, want)) in completions.iter().zip(&direct).enumerate() {
            let Ok(PipelineReply::Search(got)) = &completion.reply else {
                panic!("search completion {i} errored: {:?}", completion.reply);
            };
            assert_outcome_eq(got, want, &format!("pipeline vs direct, request {i}"));
        }

        // Gate summary: the full virtual completion schedule.
        let schedule: Vec<String> = completions
            .iter()
            .map(|c| {
                format!(
                    "{}@{}:{}:{}x{}",
                    c.request_id, c.submitted_ns, c.dispatched_ns, c.completed_ns, c.batch_size
                )
            })
            .collect();
        record_summary(
            "pipeline_matches_direct_batch_and_is_deterministic",
            &format!(
                "case requests={} max_batch={max_batch} wait_us={max_wait_us} shed={shed} \
                 schedule={}",
                arrivals.len(),
                schedule.join(","),
            ),
        );
    }
}
