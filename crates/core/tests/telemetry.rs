//! Telemetry accounting invariants and non-perturbation.
//!
//! Telemetry must be a pure observer: enabling it may never change a
//! result, a transferred-entry count or any logical accounting. On top of
//! that, its counters must *agree* with the engine's own accounting:
//!
//! * the per-window entry log sums to the scan's transferred-entry count
//!   (`WindowEntries` == `FineEntries`), under sequential, sharded and
//!   fused execution, static and windowed-adaptive thresholds, pre- and
//!   post-compaction;
//! * the `FlashSenses` counter equals the sum of the per-query
//!   [`FlashStats`] sense counts the outcomes report;
//! * each leaf's own `Queries` counter sums (over leaves) to the
//!   aggregator's `LeafRequests` fan-out count.

use proptest::prelude::*;

use reis_cluster::ClusterSystem;
use reis_core::{
    BatchFusion, CounterId, HistogramId, ReisConfig, ReisSystem, ScanParallelism, VectorDatabase,
};

const DIM: usize = 32;

fn corpus(entries: usize, salt: usize) -> (Vec<Vec<f32>>, Vec<Vec<u8>>) {
    let vectors: Vec<Vec<f32>> = (0..entries)
        .map(|i| {
            (0..DIM)
                .map(|d| (((i * 13 + d * 7 + salt * 3) % 29) as f32 - 14.0) / 5.0)
                .collect()
        })
        .collect();
    let documents: Vec<Vec<u8>> = (0..entries)
        .map(|i| format!("doc {i}").into_bytes())
        .collect();
    (vectors, documents)
}

proptest! {
    /// Σ per-window entry counts == the scan's transferred entries, for
    /// sequential and sharded scans, static and windowed thresholds,
    /// before and after a compaction.
    #[test]
    fn window_entry_log_sums_to_transferred_entries(
        entries in 24usize..100,
        salt in 0usize..1_000,
        shards in 1usize..4,
        adaptive_flag in 0usize..2,
    ) {
        let (vectors, documents) = corpus(entries, salt);
        let db = VectorDatabase::flat(&vectors, documents).expect("valid database");
        let parallelism = if shards == 1 {
            ScanParallelism::sequential()
        } else {
            ScanParallelism::sharded(shards).with_min_pages_per_shard(1)
        };
        let config = ReisConfig::tiny()
            .with_scan_parallelism(parallelism)
            .with_adaptive_filtering(adaptive_flag == 1);
        let mut system = ReisSystem::new(config);
        system.enable_telemetry();
        let db_id = system.deploy(&db).expect("deploy");

        let mut mutated = false;
        for round in 0..2 {
            let before_windows = system.telemetry().counter(CounterId::WindowEntries);
            let before_entries = system.telemetry().counter(CounterId::FineEntries);
            let outcome = system
                .search(db_id, &vectors[salt % entries], 5)
                .expect("search");
            let t = system.telemetry();
            prop_assert_eq!(
                t.counter(CounterId::WindowEntries) - before_windows,
                outcome.activity.fine_entries as u64,
                "window log sum != transferred entries (round {})", round
            );
            prop_assert_eq!(
                t.counter(CounterId::FineEntries) - before_entries,
                outcome.activity.fine_entries as u64
            );
            if !mutated {
                // Mutate and compact, then re-check on the rewritten corpus.
                let fresh: Vec<f32> = (0..DIM).map(|d| (d % 5) as f32).collect();
                system.insert(db_id, &fresh, b"fresh".to_vec()).expect("insert");
                system.delete(db_id, (salt % entries) as u32).expect("delete");
                system.compact(db_id).expect("compact");
                mutated = true;
            }
        }
    }

    /// The `FlashSenses` counter equals the summed per-query sense counts,
    /// and `FineWindows` the summed window counts, across sequential,
    /// replica and fused batch execution.
    #[test]
    fn sense_counter_matches_flash_stats(
        entries in 24usize..80,
        salt in 0usize..1_000,
        fused_flag in 0usize..2,
        workers in 1usize..4,
    ) {
        let (vectors, documents) = corpus(entries, salt);
        let db = VectorDatabase::flat(&vectors, documents).expect("valid database");
        let fused = fused_flag == 1;
        let fusion = if fused { BatchFusion::Fused } else { BatchFusion::Replicas };
        let config = ReisConfig::tiny().with_batch_fusion(fusion);
        let mut system = ReisSystem::new(config);
        system.enable_telemetry();
        let db_id = system.deploy(&db).expect("deploy");

        let queries: Vec<Vec<f32>> = (0..4).map(|q| vectors[(salt + q * 7) % entries].clone()).collect();
        let outcomes = system.search_batch(db_id, &queries, 5, workers).expect("batch");

        let t = system.telemetry();
        let senses: u64 = outcomes.iter().map(|o| o.flash_stats.page_reads).sum();
        let windows: u64 = outcomes.iter().map(|o| o.activity.fine_windows as u64).sum();
        let fine_entries: u64 = outcomes.iter().map(|o| o.activity.fine_entries as u64).sum();
        prop_assert_eq!(t.counter(CounterId::FlashSenses), senses);
        prop_assert_eq!(t.counter(CounterId::FineWindows), windows);
        prop_assert_eq!(t.counter(CounterId::FineEntries), fine_entries);
        prop_assert_eq!(t.counter(CounterId::WindowEntries), fine_entries);
        prop_assert_eq!(t.counter(CounterId::Queries), outcomes.len() as u64);
        prop_assert_eq!(t.counter(CounterId::Batches), 1);
        prop_assert_eq!(t.counter(CounterId::FusedBatches), u64::from(fused));
    }

    /// Σ over leaves of each leaf's own `Queries` counter equals the
    /// aggregator's `LeafRequests` count, pre- and post-compaction.
    #[test]
    fn leaf_query_counters_sum_to_aggregator_fanout(
        num_leaves in 1usize..5,
        entries in 24usize..60,
        salt in 0usize..1_000,
    ) {
        let (vectors, documents) = corpus(entries, salt);
        let mut cluster = ClusterSystem::new(ReisConfig::tiny(), num_leaves).expect("cluster");
        cluster.enable_telemetry();
        cluster.deploy_flat(&vectors, &documents).expect("deploy");

        for q in 0..3 {
            cluster.search(&vectors[(salt + q * 11) % entries], 5).expect("search");
        }
        cluster.compact().expect("compact");
        cluster.search(&vectors[salt % entries], 5).expect("search");

        let leaf_queries: u64 = (0..num_leaves)
            .map(|leaf| cluster.leaf(leaf).telemetry().counter(CounterId::Queries))
            .sum();
        let t = cluster.telemetry();
        prop_assert_eq!(t.counter(CounterId::ClusterQueries), 4);
        prop_assert_eq!(t.counter(CounterId::LeafRequests), 4 * num_leaves as u64);
        prop_assert_eq!(leaf_queries, t.counter(CounterId::LeafRequests));
    }

    /// Bit-identity: every field of every outcome — results, documents,
    /// activity, modelled latency, flash statistics — is identical with
    /// telemetry enabled and disabled, across fusion modes and a mutation.
    #[test]
    fn outcomes_identical_with_telemetry_on_and_off(
        entries in 24usize..80,
        salt in 0usize..1_000,
        fused_flag in 0usize..2,
        workers in 1usize..4,
    ) {
        let (vectors, documents) = corpus(entries, salt);
        let db = VectorDatabase::flat(&vectors, documents).expect("valid database");
        let fused = fused_flag == 1;
        let fusion = if fused { BatchFusion::Fused } else { BatchFusion::Replicas };
        let config = ReisConfig::tiny().with_batch_fusion(fusion);

        let mut plain = ReisSystem::new(config);
        let mut observed = ReisSystem::new(config);
        observed.enable_telemetry();

        let plain_id = plain.deploy(&db).expect("deploy");
        let observed_id = observed.deploy(&db).expect("deploy");
        let queries: Vec<Vec<f32>> = (0..3).map(|q| vectors[(salt + q * 5) % entries].clone()).collect();

        let a = plain.search_batch(plain_id, &queries, 5, workers).expect("batch");
        let b = observed.search_batch(observed_id, &queries, 5, workers).expect("batch");
        prop_assert_eq!(&a, &b, "telemetry perturbed a batched search");

        let fresh: Vec<f32> = (0..DIM).map(|d| (d % 7) as f32).collect();
        let ma = plain.insert(plain_id, &fresh, b"x".to_vec()).expect("insert");
        let mb = observed.insert(observed_id, &fresh, b"x".to_vec()).expect("insert");
        prop_assert_eq!(&ma, &mb, "telemetry perturbed a mutation");

        let a = plain.search(plain_id, &fresh, 3).expect("search");
        let b = observed.search(observed_id, &fresh, 3).expect("search");
        prop_assert_eq!(&a, &b, "telemetry perturbed a post-mutation search");
    }
}

/// The on-demand explain trace covers exactly the fine-scan pages of the
/// next query and its per-page passed counts sum to the transferred-entry
/// count; capturing it disarms the trigger.
#[test]
fn explain_trace_accounts_for_every_scanned_page() {
    let (vectors, documents) = corpus(64, 7);
    let db = VectorDatabase::flat(&vectors, documents).unwrap();
    let config = ReisConfig::tiny()
        .with_scan_parallelism(ScanParallelism::sequential())
        .with_adaptive_filtering(true);
    let mut system = ReisSystem::new(config);
    system.enable_telemetry();
    let db_id = system.deploy(&db).unwrap();

    system.telemetry().arm_explain();
    let outcome = system.search(db_id, &vectors[11], 5).unwrap();

    let explain = system
        .telemetry()
        .last_explain()
        .expect("explain trace captured");
    assert_eq!(explain.events.len(), outcome.activity.fine_pages);
    assert_eq!(explain.total_passed(), outcome.activity.fine_entries as u64);
    // Window annotations are monotone and match the scan's window count.
    let max_window = explain.events.iter().map(|e| e.window).max().unwrap_or(0);
    assert!((max_window as usize) < outcome.activity.fine_windows.max(1));
    assert!(!system.telemetry().explain_armed(), "capture disarms");

    // The next query does not record a new explain trace.
    let before = explain.sequence;
    system.search(db_id, &vectors[12], 5).unwrap();
    assert_eq!(system.telemetry().last_explain().unwrap().sequence, before);
}

/// Query traces land in the ring with both clocks populated and modelled
/// spans matching the outcome's latency breakdown.
#[test]
fn query_trace_spans_match_latency_breakdown() {
    let (vectors, documents) = corpus(48, 3);
    let db = VectorDatabase::flat(&vectors, documents).unwrap();
    let mut system = ReisSystem::new(ReisConfig::tiny());
    system.enable_telemetry();
    let db_id = system.deploy(&db).unwrap();
    let outcome = system.search(db_id, &vectors[5], 4).unwrap();

    let trace = system.telemetry().last_trace().expect("trace recorded");
    assert_eq!(trace.kind, "search");
    assert_eq!(
        trace.modelled_ns(),
        outcome.latency.total().as_nanos(),
        "trace spans must sum to the modelled query latency"
    );
    let stages: Vec<&str> = trace.spans.iter().map(|s| s.stage).collect();
    assert_eq!(
        stages,
        vec![
            "broadcast",
            "coarse_scan",
            "fine_scan",
            "select",
            "rerank",
            "doc_fetch",
            "host_transfer"
        ]
    );
    // Histograms observed the same totals.
    let t = system.telemetry();
    assert_eq!(t.histogram(HistogramId::QueryModelledNs).count, 1);
    assert_eq!(
        t.histogram(HistogramId::QueryModelledNs).sum,
        outcome.latency.total().as_nanos()
    );
}

/// Durability wiring: WAL appends, snapshot writes and recovery land in
/// the registry when telemetry is enabled via the environment.
#[test]
fn durability_counters_cover_wal_snapshot_and_recovery() {
    use reis_core::{DurableStore, MemVfs};

    let (vectors, documents) = corpus(32, 5);
    let db = VectorDatabase::flat(&vectors, documents).unwrap();
    let vfs = MemVfs::new();

    // The durable store's handle is attached at open time, so telemetry
    // must be on *before* the system is built (the env path a server uses).
    let prior = std::env::var(reis_core::TELEMETRY_ENV).ok();
    std::env::set_var(reis_core::TELEMETRY_ENV, "1");
    let store = DurableStore::new(Box::new(vfs.clone()));
    let (mut system, _) = ReisSystem::open(ReisConfig::tiny(), store).unwrap();
    assert!(system.telemetry().is_enabled(), "env enables telemetry");
    let db_id = system.deploy(&db).unwrap();
    let fresh: Vec<f32> = (0..DIM).map(|d| (d % 3) as f32).collect();
    system.insert(db_id, &fresh, b"fresh".to_vec()).unwrap();
    system.delete(db_id, 1).unwrap();
    system.save().unwrap();

    let t = system.telemetry();
    assert_eq!(t.counter(CounterId::Inserts), 1);
    assert_eq!(t.counter(CounterId::Deletes), 1);
    assert_eq!(
        t.counter(CounterId::WalAppends),
        2,
        "insert + delete logged"
    );
    assert!(t.counter(CounterId::WalAppendBytes) > 0);
    assert!(
        t.counter(CounterId::SnapshotWrites) >= 2,
        "deploy checkpoint + save"
    );
    assert!(t.counter(CounterId::SnapshotBytes) > 0);
    // Two timed saves: the deploy's immediate checkpoint and the explicit one.
    assert_eq!(t.histogram(HistogramId::SnapshotWallNs).count, 2);
    assert_eq!(t.histogram(HistogramId::MutationWallNs).count, 2);
    drop(system);

    let store = DurableStore::new(Box::new(vfs));
    let (recovered, report) = ReisSystem::recover(ReisConfig::tiny(), store).unwrap();
    let t = recovered.telemetry();
    assert_eq!(t.counter(CounterId::Recoveries), 1);
    assert_eq!(
        t.counter(CounterId::WalRecordsReplayed),
        report.wal_records_applied
    );
    assert_eq!(t.counter(CounterId::WalQuarantines), 0);
    assert_eq!(t.histogram(HistogramId::RecoveryWallNs).count, 1);
    match prior {
        Some(value) => std::env::set_var(reis_core::TELEMETRY_ENV, value),
        None => std::env::remove_var(reis_core::TELEMETRY_ENV),
    }
}

/// Fault counters match a hand-computed schedule exactly: a permanent
/// kill of one unreplicated leaf at its third call, one retry allowed.
#[test]
fn fault_counters_match_the_injected_schedule_exactly() {
    use reis_cluster::{FaultPlan, RetryPolicy};
    use reis_nand::Nanos;

    let (vectors, documents) = corpus(36, 9);
    let mut cluster = ClusterSystem::new(ReisConfig::tiny(), 3)
        .expect("cluster")
        .with_fault_plan(Some(FaultPlan::healthy().with_kill(1, 2)))
        .with_retry_policy(RetryPolicy::new(
            1,
            Nanos::from_micros(10),
            Nanos::from_micros(500),
        ));
    cluster.enable_telemetry();
    cluster.deploy_flat(&vectors, &documents).expect("deploy");

    let mut degraded = 0u64;
    for q in 0..4 {
        let outcome = cluster.search(&vectors[q * 7], 5).expect("search");
        degraded += u64::from(!outcome.is_full_coverage());
    }

    // Schedule: queries 0 and 1 run clean (3 leaf requests each). Query 2
    // reaches the killed leaf's third call: one retry, then exhaustion
    // marks it down (2 executed requests, 1 failover). Query 3 skips the
    // down leaf outright (2 requests, 1 failover skip).
    let t = cluster.telemetry();
    assert_eq!(t.counter(CounterId::ClusterQueries), 4);
    assert_eq!(t.counter(CounterId::LeafRequests), 3 + 3 + 2 + 2);
    assert_eq!(t.counter(CounterId::LeafRetries), 1);
    assert_eq!(t.counter(CounterId::LeafFailovers), 2);
    assert_eq!(t.counter(CounterId::DegradedQueries), 2);
    assert_eq!(degraded, 2, "the outcomes agree with the counter");
    // The fan-out invariant still holds over what actually executed.
    let leaf_queries: u64 = (0..3)
        .map(|leaf| cluster.leaf(leaf).telemetry().counter(CounterId::Queries))
        .sum();
    assert_eq!(leaf_queries, t.counter(CounterId::LeafRequests));
}

/// Scrub counters record exactly what each scrub pass reports: one bump
/// per corrupt snapshot and per quarantinable WAL tail, per pass.
#[test]
fn scrub_counters_record_corruption_exactly() {
    use reis_core::{DurableStore, MemVfs, ReisSystem, Telemetry, Vfs};

    // Produce real epoch artifacts with a throwaway durable system.
    let (vectors, documents) = corpus(32, 11);
    let db = VectorDatabase::flat(&vectors, documents).unwrap();
    let vfs = MemVfs::new();
    {
        let store = DurableStore::new(Box::new(vfs.clone()));
        let (mut system, _) = ReisSystem::open(ReisConfig::tiny(), store).unwrap();
        let db_id = system.deploy(&db).unwrap();
        let fresh: Vec<f32> = (0..DIM).map(|d| (d % 3) as f32).collect();
        system.insert(db_id, &fresh, b"fresh".to_vec()).unwrap();
        system.save().unwrap();
    }

    let telemetry = Telemetry::enabled();
    let mut store = DurableStore::new(Box::new(vfs.clone()));
    store.set_telemetry(telemetry.clone());

    // A clean pass checks everything and counts nothing.
    let report = store.scrub().unwrap();
    assert!(report.is_clean());
    assert!(report.snapshots_checked > 0);
    assert!(report.wals_checked > 0);
    assert_eq!(telemetry.counter(CounterId::ScrubCorruptSnapshots), 0);
    assert_eq!(telemetry.counter(CounterId::ScrubQuarantinedWals), 0);

    // Flip one byte in the newest snapshot: one corrupt snapshot per pass.
    let newest = store.snapshot_seqs_desc().unwrap()[0];
    let snapshot = DurableStore::snapshot_name(newest);
    let mut bytes = vfs.read_file(&snapshot).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    vfs.write_file(&snapshot, &bytes).unwrap();
    let report = store.scrub().unwrap();
    assert_eq!(report.corrupt_snapshots, vec![newest]);
    assert_eq!(telemetry.counter(CounterId::ScrubCorruptSnapshots), 1);
    assert_eq!(telemetry.counter(CounterId::ScrubQuarantinedWals), 0);

    // Append garbage to the oldest retained WAL: a quarantinable tail.
    // The second pass re-counts the still-corrupt snapshot.
    let wal_seq = store.wal_seqs_asc().unwrap()[0];
    let wal = DurableStore::wal_name(wal_seq);
    let mut bytes = vfs.read_file(&wal).unwrap();
    bytes.extend_from_slice(&[0xFF; 7]);
    vfs.write_file(&wal, &bytes).unwrap();
    let report = store.scrub().unwrap();
    assert_eq!(report.corrupt_snapshots, vec![newest]);
    assert_eq!(report.quarantined_wals, vec![wal_seq]);
    assert_eq!(report.corrupt_artifacts(), 2);
    assert_eq!(
        telemetry.counter(CounterId::ScrubCorruptSnapshots),
        2,
        "counted per pass"
    );
    assert_eq!(telemetry.counter(CounterId::ScrubQuarantinedWals), 1);
}
