//! Online index mutations: insert, delete, upsert and compaction.
//!
//! NAND flash permits no in-place update, so every mutation is realised
//! out-of-place, mirroring how an FTL serves host writes:
//!
//! * **Insert** — the new entry's binary embedding, INT8 copy and document
//!   chunk are appended to its cluster's *append segment*: freshly reserved
//!   pages programmed through the controller (ESP-SLC for the embedding run
//!   so the in-plane scan can cover it, TLC for the INT8/document pages),
//!   with the stable id, rescoring address and validity recorded in the
//!   embedding pages' OOB bytes. Cluster assignment reuses the in-storage
//!   coarse path: the centroid pages are scanned and the nearest centroid
//!   (by binary Hamming distance, the same metric the coarse search uses)
//!   wins.
//! * **Delete** — a tombstone: the base-region validity bitmap (or the
//!   segment entry's deletion flag) is set in controller DRAM; the flash
//!   pages are untouched until compaction.
//! * **Upsert** — a delete of the live version plus an append under the
//!   *same* stable id.
//! * **Compaction** — reads the surviving corpus (base + segments, through
//!   the controller with ECC where the scheme needs it), rewrites it as a
//!   densely packed cluster-contiguous base region of a new *generation*,
//!   swaps the R-DB record, releases every old region and erases each block
//!   whose programmed pages all became invalid — returning the space to the
//!   allocator for recycling.
//!
//! The search path (see [`crate::engine`]) composes with all of this:
//! scans cover base + live segments and filter tombstones, so a search
//! after any mutation sequence returns exactly what a from-scratch
//! deployment of the surviving corpus (under the same quantizers and
//! cluster structure) would return.

use std::collections::{BTreeMap, HashMap};

use reis_ann::vector::{hamming_bytes, BinaryVector, Int8Vector};
use reis_nand::{FlashStats, Nanos, OobEntry, OobLayout};
use reis_ssd::{DatabaseRecord, RegionKind, SsdController, StripedRegion};
use reis_update::{EntryLocation, SegmentEntry, SlotRef, OOB_INVALID_RADR};

use crate::deploy::{pad_slot, DeployedDatabase, RegionNames};
use crate::error::{ReisError, Result};
use crate::records::{RIvf, RIvfEntry};

/// Outcome of one insert/delete/upsert call.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationOutcome {
    /// Stable ids assigned (inserts/upserts) or affected (deletes), in
    /// request order.
    pub ids: Vec<u32>,
    /// Modelled flash latency of the mutation (page programs, and the
    /// centroid scan of the cluster assignment).
    pub latency: Nanos,
    /// Flash pages programmed by the mutation.
    pub pages_programmed: usize,
    /// The compaction this mutation triggered under the configured policy,
    /// if any.
    pub compaction: Option<CompactionOutcome>,
}

/// Outcome of a compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Modelled flash latency of the pass (reads, rewrites and erases).
    pub latency: Nanos,
    /// Pages programmed while rewriting the surviving corpus.
    pub pages_rewritten: usize,
    /// Blocks erased because every programmed page in them was invalid.
    pub blocks_reclaimed: usize,
    /// Live entries in the compacted base region.
    pub live_entries: usize,
}

/// Validate and quantize a batch of vectors/documents for appending.
fn encode_batch(
    db: &DeployedDatabase,
    vectors: &[Vec<f32>],
    documents: &[Vec<u8>],
) -> Result<(Vec<BinaryVector>, Vec<Int8Vector>)> {
    if vectors.len() != documents.len() {
        return Err(ReisError::MalformedDatabase(format!(
            "{} vectors but {} documents in mutation batch",
            vectors.len(),
            documents.len()
        )));
    }
    let dim = db.binary_quantizer.dim();
    for vector in vectors {
        if vector.len() != dim {
            return Err(ReisError::QueryDimensionMismatch {
                expected: dim,
                actual: vector.len(),
            });
        }
    }
    for document in documents {
        if document.len() + 4 > db.layout.doc_slot_bytes {
            return Err(ReisError::MalformedDatabase(format!(
                "document chunk of {} bytes does not fit the deployment's {}-byte slots",
                document.len(),
                db.layout.doc_slot_bytes
            )));
        }
    }
    let binaries = vectors
        .iter()
        .map(|v| db.binary_quantizer.quantize(v))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    let int8s = vectors
        .iter()
        .map(|v| db.int8_quantizer.quantize(v))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    Ok((binaries, int8s))
}

/// Assign a quantized embedding to its nearest IVF centroid by scanning the
/// centroid pages (binary Hamming distance, ties to the lower cluster — the
/// same total order the coarse search selects under). Returns the cluster
/// (0 for flat deployments) plus the modelled latency of the scan's page
/// senses.
fn nearest_cluster(
    ssd: &mut SsdController,
    db: &DeployedDatabase,
    binary: &BinaryVector,
) -> Result<(usize, Nanos)> {
    if !db.is_ivf() {
        return Ok((0, Nanos::ZERO));
    }
    let layout = db.layout;
    let slot_bytes = layout.embedding_slot_bytes;
    let padded = pad_slot(binary.as_bytes(), slot_bytes);
    let scheme = ssd.hybrid_policy().scheme_for(RegionKind::Centroids);
    let timing = ssd.config().timing;
    let mut best: Option<(u32, usize)> = None;
    let mut pages_read = 0u64;
    let mut latency = Nanos::ZERO;
    for page in 0..layout.centroid_pages {
        let (_, data, _) = ssd.scan_region_page(&db.record.embedding_region, page)?;
        pages_read += 1;
        // The borrowed read stands in for an in-plane sense; price it like
        // `sense_page` would.
        latency += timing.read_latency(scheme) + timing.t_command_overhead;
        for slot in 0..layout.embeddings_per_page {
            let cluster = page * layout.embeddings_per_page + slot;
            if cluster >= layout.centroids {
                break;
            }
            let start = slot * slot_bytes;
            let distance = hamming_bytes(&padded, &data[start..start + slot_bytes]);
            if best.is_none_or(|(d, c)| (distance, cluster) < (d, c)) {
                best = Some((distance, cluster));
            }
        }
    }
    ssd.device_mut().absorb_stats(&FlashStats {
        page_reads: pages_read,
        ..FlashStats::new()
    });
    Ok((best.map(|(_, cluster)| cluster).unwrap_or(0), latency))
}

/// One cluster group of an append batch with its reserved regions.
struct GroupPlan {
    cluster: usize,
    members: Vec<usize>,
    emb_name: String,
    emb_region: StripedRegion,
    int8_name: String,
    int8_region: StripedRegion,
    doc_name: String,
    doc_region: StripedRegion,
}

/// Append already-encoded entries (with pre-assigned stable ids and cluster
/// assignments) into their clusters' segments, programming fresh pages and
/// recording the DRAM-side bookkeeping. Returns the program latency and the
/// number of pages programmed.
///
/// All flash regions of every cluster group are reserved *before* anything
/// is programmed or any bookkeeping mutates, and a failed reservation
/// releases the ones already made — so a batch that cannot fit leaves the
/// database exactly as it was (no phantom entries, no leaked regions).
fn append_entries(
    ssd: &mut SsdController,
    db: &mut DeployedDatabase,
    ids: &[u32],
    binaries: &[BinaryVector],
    int8s: &[Int8Vector],
    documents: &[Vec<u8>],
    clusters: &[usize],
) -> Result<(Nanos, usize)> {
    let layout = db.layout;
    let geometry = ssd.config().geometry;
    let oob_layout = OobLayout::new(geometry.oob_size_bytes, layout.embeddings_per_page)?;
    let mut latency = Nanos::ZERO;
    let mut pages_programmed = 0usize;
    let epp = layout.embeddings_per_page;
    let i8pp = layout.int8_per_page;
    let dpp = layout.docs_per_page;

    // Group the batch per cluster, preserving batch order within a group so
    // segment append order is deterministic.
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, &cluster) in clusters.iter().enumerate() {
        groups.entry(cluster).or_default().push(i);
    }

    // Reservation pass: all-or-nothing.
    let mut plans: Vec<GroupPlan> = Vec::with_capacity(groups.len());
    for (seq, (&cluster, members)) in groups.iter().enumerate() {
        let prefix = format!(
            "db{}/g{}/seg{}",
            db.db_id,
            db.updates.generation,
            db.updates.store.regions().len() + seq * 3
        );
        let emb_name = format!("{prefix}/emb");
        let int8_name = format!("{prefix}/int8");
        let doc_name = format!("{prefix}/doc");
        let reserve =
            |ssd: &mut SsdController| -> Result<(StripedRegion, StripedRegion, StripedRegion)> {
                let emb = ssd.reserve_region(
                    &emb_name,
                    members.len().div_ceil(epp),
                    RegionKind::BinaryEmbeddings,
                )?;
                let int8 = ssd.reserve_region(
                    &int8_name,
                    members.len().div_ceil(i8pp),
                    RegionKind::Int8Embeddings,
                )?;
                let doc = ssd.reserve_region(
                    &doc_name,
                    members.len().div_ceil(dpp),
                    RegionKind::Documents,
                )?;
                Ok((emb, int8, doc))
            };
        match reserve(ssd) {
            Ok((emb_region, int8_region, doc_region)) => plans.push(GroupPlan {
                cluster,
                members: members.clone(),
                emb_name,
                emb_region,
                int8_name,
                int8_region,
                doc_name,
                doc_region,
            }),
            Err(error) => {
                // Unwind: nothing was programmed yet, so releasing the
                // reserved (still unprogrammed) regions restores the
                // allocator and DRAM exactly.
                for plan in &plans {
                    ssd.release_region(&plan.emb_name, &plan.emb_region);
                    ssd.release_region(&plan.int8_name, &plan.int8_region);
                    ssd.release_region(&plan.doc_name, &plan.doc_region);
                }
                return Err(error);
            }
        }
    }

    for GroupPlan {
        cluster,
        members,
        emb_name,
        emb_region,
        int8_name,
        int8_region,
        doc_name,
        doc_region,
    } in plans
    {
        let tag = (cluster % 256) as u8;
        let sid_base = db.updates.store.len() as u32;

        // Embedding pages: slot-padded binaries plus OOB linkage. Unfilled
        // slots get the RADR sentinel so the scan rejects them from the OOB
        // bytes alone (validity recorded at program time).
        for page in 0..emb_region.len {
            let mut data = Vec::with_capacity(epp * layout.embedding_slot_bytes);
            let mut oob_entries = Vec::with_capacity(epp);
            for s in 0..epp {
                let j = page * epp + s;
                if j < members.len() {
                    data.extend(pad_slot(
                        binaries[members[j]].as_bytes(),
                        layout.embedding_slot_bytes,
                    ));
                    oob_entries.push(OobEntry {
                        dadr: ids[members[j]],
                        radr: db.updates.base_capacity + sid_base + j as u32,
                        tag,
                    });
                } else {
                    oob_entries.push(OobEntry {
                        dadr: u32::MAX,
                        radr: OOB_INVALID_RADR,
                        tag: 0,
                    });
                }
            }
            let oob = oob_layout.pack(&oob_entries)?;
            latency += ssd.program_region_page(
                &emb_region,
                page,
                RegionKind::BinaryEmbeddings,
                &data,
                &oob,
            )?;
            pages_programmed += 1;
        }
        // INT8 pages.
        for page in 0..int8_region.len {
            let mut data = Vec::with_capacity(i8pp * layout.int8_bytes);
            for s in 0..i8pp {
                let j = page * i8pp + s;
                if j >= members.len() {
                    break;
                }
                data.extend(int8s[members[j]].as_slice().iter().map(|&v| v as u8));
            }
            latency += ssd.program_region_page(
                &int8_region,
                page,
                RegionKind::Int8Embeddings,
                &data,
                &[],
            )?;
            pages_programmed += 1;
        }
        // Document pages.
        for page in 0..doc_region.len {
            let mut data = vec![0u8; (dpp * layout.doc_slot_bytes).min(geometry.page_size_bytes)];
            for s in 0..dpp {
                let j = page * dpp + s;
                if j >= members.len() {
                    break;
                }
                let doc = &documents[members[j]];
                let start = s * layout.doc_slot_bytes;
                data[start..start + 4].copy_from_slice(&(doc.len() as u32).to_le_bytes());
                data[start + 4..start + 4 + doc.len()].copy_from_slice(doc);
            }
            latency +=
                ssd.program_region_page(&doc_region, page, RegionKind::Documents, &data, &[])?;
            pages_programmed += 1;
        }

        // DRAM-side bookkeeping: the run joins the cluster's scan set, the
        // regions are remembered for release at compaction, and each member
        // becomes a live, relocatable segment entry.
        db.updates.store.add_run(cluster, emb_region);
        db.updates.store.register_region(emb_name, emb_region);
        db.updates.store.register_region(int8_name, int8_region);
        db.updates.store.register_region(doc_name, doc_region);
        for (j, &m) in members.iter().enumerate() {
            let sid = db.updates.store.push(SegmentEntry {
                id: ids[m],
                cluster,
                embedding: SlotRef {
                    region: emb_region,
                    page: j / epp,
                    slot: j % epp,
                },
                int8: SlotRef {
                    region: int8_region,
                    page: j / i8pp,
                    slot: j % i8pp,
                },
                document: SlotRef {
                    region: doc_region,
                    page: j / dpp,
                    slot: j % dpp,
                },
                deleted: false,
            });
            debug_assert_eq!(sid, sid_base + j as u32);
            db.updates.relocated.insert(ids[m], sid);
        }
    }
    db.updates.stats.segment_pages_programmed += pages_programmed as u64;
    Ok((latency, pages_programmed))
}

/// Insert a batch of entries, assigning fresh stable ids. Returns the ids
/// (in batch order), the flash latency and the pages programmed.
pub(crate) fn insert_batch(
    ssd: &mut SsdController,
    db: &mut DeployedDatabase,
    vectors: &[Vec<f32>],
    documents: &[Vec<u8>],
) -> Result<(Vec<u32>, Nanos, usize)> {
    let (binaries, int8s) = encode_batch(db, vectors, documents)?;
    let mut latency = Nanos::ZERO;
    let mut clusters = Vec::with_capacity(binaries.len());
    for binary in &binaries {
        let (cluster, scan_latency) = nearest_cluster(ssd, db, binary)?;
        clusters.push(cluster);
        latency += scan_latency;
    }
    let ids: Vec<u32> = (0..vectors.len() as u32)
        .map(|i| db.updates.next_id + i)
        .collect();
    let appended = append_entries(ssd, db, &ids, &binaries, &int8s, documents, &clusters);
    let (append_latency, pages) = appended?;
    db.updates.next_id += vectors.len() as u32;
    db.updates.stats.inserts += vectors.len() as u64;
    account_update_state(ssd, db)?;
    Ok((ids, latency + append_latency, pages))
}

/// Insert a batch of entries under *caller-chosen* stable ids (the cluster
/// router uses this so each leaf stores the globally assigned id natively).
/// Every id must be fresh — at or past the database's next unassigned id —
/// and the batch must not repeat an id; `next_id` advances past the largest
/// inserted id so later upserts and plain inserts stay collision-free.
/// Returns the flash latency and the pages programmed.
pub(crate) fn insert_batch_at(
    ssd: &mut SsdController,
    db: &mut DeployedDatabase,
    ids: &[u32],
    vectors: &[Vec<f32>],
    documents: &[Vec<u8>],
) -> Result<(Nanos, usize)> {
    if ids.len() != vectors.len() {
        return Err(ReisError::MalformedDatabase(format!(
            "{} stable ids for {} vectors in routed insert batch",
            ids.len(),
            vectors.len()
        )));
    }
    for &id in ids {
        if id < db.updates.next_id {
            return Err(ReisError::MalformedDatabase(format!(
                "stable id {id} is not fresh (next unassigned id is {})",
                db.updates.next_id
            )));
        }
    }
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        return Err(ReisError::MalformedDatabase(
            "routed insert batch repeats a stable id".to_string(),
        ));
    }
    let (binaries, int8s) = encode_batch(db, vectors, documents)?;
    let mut latency = Nanos::ZERO;
    let mut clusters = Vec::with_capacity(binaries.len());
    for binary in &binaries {
        let (cluster, scan_latency) = nearest_cluster(ssd, db, binary)?;
        clusters.push(cluster);
        latency += scan_latency;
    }
    let appended = append_entries(ssd, db, ids, &binaries, &int8s, documents, &clusters);
    let (append_latency, pages) = appended?;
    if let Some(&max_id) = sorted.last() {
        db.updates.next_id = db.updates.next_id.max(max_id + 1);
    }
    db.updates.stats.inserts += vectors.len() as u64;
    account_update_state(ssd, db)?;
    Ok((latency + append_latency, pages))
}

/// Tombstone the live version of `id`.
pub(crate) fn delete_entry(
    ssd: &mut SsdController,
    db: &mut DeployedDatabase,
    id: u32,
) -> Result<()> {
    let location = db
        .updates
        .locate(id, |id| db.original_to_storage.get(&id).copied())
        .ok_or(ReisError::EntryNotFound(id))?;
    match location {
        EntryLocation::Base(storage) => {
            db.updates.tombstones.mark(storage as usize);
        }
        EntryLocation::Segment(sid) => {
            db.updates.store.mark_deleted(sid);
        }
    }
    db.updates.stats.deletes += 1;
    account_update_state(ssd, db)?;
    Ok(())
}

/// Replace (or revive) the entry with stable id `id`: tombstone the live
/// version, if any, and append the new one under the same id. The id must
/// have been assigned before (by the deployment or an insert). Returns the
/// flash latency, the pages programmed, and whether a live previous version
/// was actually tombstoned (false when the upsert revived a deleted id).
pub(crate) fn upsert_entry(
    ssd: &mut SsdController,
    db: &mut DeployedDatabase,
    id: u32,
    vector: &[f32],
    document: &[u8],
) -> Result<(Nanos, usize, bool)> {
    if id >= db.updates.next_id {
        return Err(ReisError::EntryNotFound(id));
    }
    let vec_owned = vec![vector.to_vec()];
    let docs_owned = vec![document.to_vec()];
    let (binaries, int8s) = encode_batch(db, &vec_owned, &docs_owned)?;
    let (cluster, scan_latency) = nearest_cluster(ssd, db, &binaries[0])?;
    // Capture the live version *before* the append (afterwards the
    // relocation table already points at the new one), but only tombstone
    // it once the append has succeeded — a failed upsert must leave the old
    // version live. A missing live version just revives the id.
    let old_location = db
        .updates
        .locate(id, |id| db.original_to_storage.get(&id).copied());
    let (append_latency, pages) =
        append_entries(ssd, db, &[id], &binaries, &int8s, &docs_owned, &[cluster])?;
    let tombstoned = old_location.is_some();
    if let Some(location) = old_location {
        match location {
            EntryLocation::Base(storage) => {
                db.updates.tombstones.mark(storage as usize);
            }
            EntryLocation::Segment(sid) => {
                db.updates.store.mark_deleted(sid);
            }
        }
        db.updates.stats.deletes += 1;
    }
    db.updates.stats.inserts += 1;
    db.updates.stats.upserts += 1;
    account_update_state(ssd, db)?;
    Ok((scan_latency + append_latency, pages, tombstoned))
}

/// Re-account the update state's controller-DRAM footprint (tombstone
/// bitmap, segment entry table, relocation and document-slot maps).
fn account_update_state(ssd: &mut SsdController, db: &DeployedDatabase) -> Result<()> {
    let bytes = db.updates.tombstones.footprint_bytes()
        + db.updates.store.footprint_bytes()
        + db.updates.relocated.len() * 8
        + db.updates.doc_slots.as_ref().map_or(0, |m| m.len() * 8);
    ssd.dram_mut()
        .allocate(&format!("db{}/update-state", db.db_id), bytes)?;
    Ok(())
}

/// One surviving logical entry, staged in host memory between the read and
/// rewrite halves of a compaction pass — and the unit a durable snapshot
/// stores per entry (`crate::durable` reads survivors through the same
/// path, so what a snapshot persists is exactly what a compaction would
/// rewrite).
pub(crate) struct Survivor {
    pub(crate) id: u32,
    pub(crate) tag: u8,
    pub(crate) binary: Vec<u8>,
    pub(crate) int8: Vec<u8>,
    pub(crate) doc: Vec<u8>,
}

/// The full surviving corpus of one database as read back from flash:
/// survivors in logical scan order, per-cluster `(begin, end)` bounds over
/// that vector, and the accumulated modelled read latency.
pub(crate) struct Sweep {
    pub(crate) survivors: Vec<Survivor>,
    pub(crate) cluster_bounds: Vec<(usize, usize)>,
    pub(crate) read_latency: Nanos,
}

/// One-page staging cache for a single payload kind. Compaction keeps one
/// per kind (embedding / INT8 / document), so the per-survivor interleaved
/// reads do not evict each other and every page is read once per kind, not
/// once per survivor.
#[derive(Default)]
struct PageCache {
    key: Option<(usize, usize)>,
    buf: Vec<u8>,
    oob: Vec<u8>,
}

impl PageCache {
    /// Stage a region page in the cache unless it already is, returning the
    /// read latency (zero on a hit).
    fn load(
        &mut self,
        ssd: &mut SsdController,
        region: &StripedRegion,
        page: usize,
        kind: RegionKind,
    ) -> Result<Nanos> {
        if self.key == Some((region.start, page)) {
            return Ok(Nanos::ZERO);
        }
        let (latency, _) =
            ssd.read_region_page_into(region, page, kind, &mut self.buf, &mut self.oob)?;
        self.key = Some((region.start, page));
        Ok(latency)
    }
}

/// Parse a document slot (4-byte length prefix + payload) out of a staged
/// document page.
fn parse_doc_slot(buf: &[u8], slot: usize, slot_bytes: usize, page: usize) -> Result<Vec<u8>> {
    let start = slot * slot_bytes;
    let corrupt = ReisError::CorruptDocument { page, slot };
    if start + 4 > buf.len() {
        return Err(corrupt);
    }
    let len = u32::from_le_bytes(buf[start..start + 4].try_into().expect("4-byte prefix")) as usize;
    if len > slot_bytes - 4 || start + 4 + len > buf.len() {
        return Err(corrupt);
    }
    Ok(buf[start + 4..start + 4 + len].to_vec())
}

/// Read the surviving corpus of a database from flash, cluster-major, base
/// entries before segment entries (the same logical order the mutated scan
/// visits entries in, so downstream consumers preserve every deterministic
/// tie-break). Returns the survivors, per-cluster `(begin, end)` bounds
/// over the survivor vector and the accumulated read latency.
///
/// This is the shared read half of both [`compact`] (which rewrites the
/// corpus as a new region generation) and `crate::durable` snapshots
/// (which persist it byte-for-byte).
pub(crate) fn collect_survivors(ssd: &mut SsdController, db: &DeployedDatabase) -> Result<Sweep> {
    let old_layout = db.layout;
    let nclusters = db.update_clusters();
    let mut latency = Nanos::ZERO;
    let mut survivors: Vec<Survivor> = Vec::with_capacity(db.live_entries());
    let mut cluster_bounds: Vec<(usize, usize)> = Vec::with_capacity(nclusters);
    let mut emb_cache = PageCache::default();
    let mut int8_cache = PageCache::default();
    let mut doc_cache = PageCache::default();

    for cluster in 0..nclusters {
        let begin = survivors.len();
        // Base members of the cluster, in storage order.
        let base_range = if db.is_ivf() {
            db.rivf
                .entry(cluster)
                .filter(|e| e.member_count() > 0)
                .map(|e| (e.first_embedding as usize, e.last_embedding as usize + 1))
        } else if old_layout.entries > 0 {
            Some((0, old_layout.entries))
        } else {
            None
        };
        if let Some((first, end)) = base_range {
            for storage in first..end {
                if db.updates.tombstones.contains(storage) {
                    continue;
                }
                let id = db.storage_to_original[storage];
                let tag = db.storage_tags[storage];
                let (epage, eslot) = old_layout.embedding_location(storage);
                latency += emb_cache.load(
                    ssd,
                    &db.record.embedding_region,
                    old_layout.centroid_pages + epage,
                    RegionKind::BinaryEmbeddings,
                )?;
                let estart = eslot * old_layout.embedding_slot_bytes;
                let binary = emb_cache.buf[estart..estart + old_layout.embedding_bytes].to_vec();
                let (ipage, islot) = old_layout.int8_location(storage);
                latency += int8_cache.load(
                    ssd,
                    &db.record.int8_region,
                    ipage,
                    RegionKind::Int8Embeddings,
                )?;
                let istart = islot * old_layout.int8_bytes;
                let int8 = int8_cache.buf[istart..istart + old_layout.int8_bytes].to_vec();
                let doc_index = db
                    .updates
                    .base_doc_slot(id)
                    .ok_or(ReisError::EntryNotFound(id))? as usize;
                let (dpage, dslot) = old_layout.document_location(doc_index);
                latency += doc_cache.load(
                    ssd,
                    &db.record.document_region,
                    dpage,
                    RegionKind::Documents,
                )?;
                let doc = parse_doc_slot(&doc_cache.buf, dslot, old_layout.doc_slot_bytes, dpage)?;
                survivors.push(Survivor {
                    id,
                    tag,
                    binary,
                    int8,
                    doc,
                });
            }
        }
        // Live segment members of the cluster, in append order.
        for entry in db.updates.store.entries() {
            if entry.cluster != cluster || entry.deleted {
                continue;
            }
            latency += emb_cache.load(
                ssd,
                &entry.embedding.region,
                entry.embedding.page,
                RegionKind::BinaryEmbeddings,
            )?;
            let estart = entry.embedding.slot * old_layout.embedding_slot_bytes;
            let binary = emb_cache.buf[estart..estart + old_layout.embedding_bytes].to_vec();
            latency += int8_cache.load(
                ssd,
                &entry.int8.region,
                entry.int8.page,
                RegionKind::Int8Embeddings,
            )?;
            let istart = entry.int8.slot * old_layout.int8_bytes;
            let int8 = int8_cache.buf[istart..istart + old_layout.int8_bytes].to_vec();
            latency += doc_cache.load(
                ssd,
                &entry.document.region,
                entry.document.page,
                RegionKind::Documents,
            )?;
            let doc = parse_doc_slot(
                &doc_cache.buf,
                entry.document.slot,
                old_layout.doc_slot_bytes,
                entry.document.page,
            )?;
            survivors.push(Survivor {
                id: entry.id,
                tag: (cluster % 256) as u8,
                binary,
                int8,
                doc,
            });
        }
        cluster_bounds.push((begin, survivors.len()));
    }
    Ok(Sweep {
        survivors,
        cluster_bounds,
        read_latency: latency,
    })
}

/// Fold the database's append segments and tombstones back into a densely
/// packed base region: read the surviving corpus, rewrite it as a new
/// region generation, swap the R-DB record, release every superseded region
/// and erase the blocks they complete.
pub(crate) fn compact(
    ssd: &mut SsdController,
    db: &mut DeployedDatabase,
) -> Result<CompactionOutcome> {
    let old_layout = db.layout;
    let nclusters = db.update_clusters();

    // ---- Read the surviving corpus.
    let sweep = collect_survivors(ssd, db)?;
    let (survivors, cluster_bounds) = (sweep.survivors, sweep.cluster_bounds);
    let mut latency = sweep.read_latency;
    debug_assert_eq!(cluster_bounds.len(), nclusters);

    // Stage the centroid pages (data + OOB) for verbatim rewrite.
    let mut centroid_pages: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(old_layout.centroid_pages);
    for page in 0..old_layout.centroid_pages {
        let mut buf = Vec::new();
        let mut oob_buf = Vec::new();
        let (read_latency, _) = ssd.read_region_page_into(
            &db.record.embedding_region,
            page,
            RegionKind::BinaryEmbeddings,
            &mut buf,
            &mut oob_buf,
        )?;
        latency += read_latency;
        centroid_pages.push((buf, oob_buf));
    }

    // ---- Rewrite as a new region generation.
    let total = survivors.len();
    let new_layout = old_layout.with_entries(total);
    let generation = db.updates.generation + 1;
    let names = RegionNames::generation(db.db_id, generation);
    let geometry = ssd.config().geometry;
    let oob_layout = OobLayout::new(geometry.oob_size_bytes, new_layout.embeddings_per_page)?;
    let emb_region = ssd.reserve_region(
        &names.embeddings,
        new_layout.centroid_pages + new_layout.embedding_pages,
        RegionKind::BinaryEmbeddings,
    )?;
    let int8_region = ssd.reserve_region(
        &names.int8,
        new_layout.int8_pages,
        RegionKind::Int8Embeddings,
    )?;
    let doc_region = ssd.reserve_region(
        &names.documents,
        new_layout.doc_pages,
        RegionKind::Documents,
    )?;
    let mut pages_rewritten = 0usize;

    for (page, (data, oob)) in centroid_pages.iter().enumerate() {
        latency += ssd.program_region_page(&emb_region, page, RegionKind::Centroids, data, oob)?;
        pages_rewritten += 1;
    }
    let epp = new_layout.embeddings_per_page;
    for page in 0..new_layout.embedding_pages {
        let mut data = Vec::with_capacity(epp * new_layout.embedding_slot_bytes);
        let mut oob_entries = Vec::with_capacity(epp);
        for s in 0..epp {
            let storage = page * epp + s;
            if storage < total {
                let survivor = &survivors[storage];
                data.extend(pad_slot(&survivor.binary, new_layout.embedding_slot_bytes));
                oob_entries.push(OobEntry {
                    dadr: survivor.id,
                    radr: storage as u32,
                    tag: survivor.tag,
                });
            } else {
                oob_entries.push(OobEntry {
                    dadr: u32::MAX,
                    radr: OOB_INVALID_RADR,
                    tag: 0,
                });
            }
        }
        let oob = oob_layout.pack(&oob_entries)?;
        latency += ssd.program_region_page(
            &emb_region,
            new_layout.centroid_pages + page,
            RegionKind::BinaryEmbeddings,
            &data,
            &oob,
        )?;
        pages_rewritten += 1;
    }
    for page in 0..new_layout.int8_pages {
        let mut data = Vec::with_capacity(new_layout.int8_per_page * new_layout.int8_bytes);
        for s in 0..new_layout.int8_per_page {
            let storage = page * new_layout.int8_per_page + s;
            if storage >= total {
                break;
            }
            data.extend_from_slice(&survivors[storage].int8);
        }
        latency +=
            ssd.program_region_page(&int8_region, page, RegionKind::Int8Embeddings, &data, &[])?;
        pages_rewritten += 1;
    }
    for page in 0..new_layout.doc_pages {
        let mut data = vec![
            0u8;
            (new_layout.docs_per_page * new_layout.doc_slot_bytes)
                .min(geometry.page_size_bytes)
        ];
        for s in 0..new_layout.docs_per_page {
            let storage = page * new_layout.docs_per_page + s;
            if storage >= total {
                break;
            }
            let doc = &survivors[storage].doc;
            let start = s * new_layout.doc_slot_bytes;
            data[start..start + 4].copy_from_slice(&(doc.len() as u32).to_le_bytes());
            data[start + 4..start + 4 + doc.len()].copy_from_slice(doc);
        }
        latency += ssd.program_region_page(&doc_region, page, RegionKind::Documents, &data, &[])?;
        pages_rewritten += 1;
    }

    // ---- Swap the metadata: R-IVF ranges, R-DB record, host-side maps.
    let rivf = if db.is_ivf() {
        let entries = (0..nclusters)
            .map(|cluster| {
                let old = db.rivf.entry(cluster).expect("cluster exists");
                let (begin, end) = cluster_bounds[cluster];
                if begin == end {
                    RIvfEntry {
                        first_embedding: 1,
                        last_embedding: 0,
                        ..*old
                    }
                } else {
                    RIvfEntry {
                        first_embedding: begin as u32,
                        last_embedding: (end - 1) as u32,
                        ..*old
                    }
                }
            })
            .collect();
        RIvf::new(entries)
    } else {
        RIvf::new(Vec::new())
    };
    let record = DatabaseRecord {
        db_id: db.db_id,
        embedding_region: emb_region,
        int8_region,
        document_region: doc_region,
        entries: total,
    };
    ssd.coarse_ftl_mut().remove(db.db_id)?;
    ssd.coarse_ftl_mut().deploy(record)?;
    ssd.dram_mut()
        .allocate(&format!("db{}/r-ivf", db.db_id), rivf.footprint_bytes())?;

    // ---- Release everything the new generation supersedes, then erase the
    // blocks whose programmed pages all became invalid.
    let old_names = db.region_names.clone();
    ssd.release_region(&old_names.embeddings, &db.record.embedding_region);
    ssd.release_region(&old_names.int8, &db.record.int8_region);
    ssd.release_region(&old_names.documents, &db.record.document_region);
    for (name, region) in db.updates.store.regions().to_vec() {
        ssd.release_region(&name, &region);
    }
    let (blocks_reclaimed, erase_latency) = ssd.reclaim_invalid_blocks()?;
    latency += erase_latency;

    // ---- Install the new generation on the host-side handle.
    let storage_to_original: Vec<u32> = survivors.iter().map(|s| s.id).collect();
    let original_to_storage: HashMap<u32, u32> = storage_to_original
        .iter()
        .enumerate()
        .map(|(storage, &id)| (id, storage as u32))
        .collect();
    let doc_slots: HashMap<u32, u32> = original_to_storage.clone();
    db.layout = new_layout;
    db.record = record;
    db.region_names = names;
    db.rivf = rivf;
    db.storage_tags = survivors.iter().map(|s| s.tag).collect();
    db.storage_to_original = storage_to_original;
    db.original_to_storage = original_to_storage;
    db.updates
        .reset_after_compaction(total, nclusters, doc_slots);
    db.updates.stats.pages_rewritten += pages_rewritten as u64;
    db.updates.stats.blocks_reclaimed += blocks_reclaimed as u64;
    account_update_state(ssd, db)?;

    Ok(CompactionOutcome {
        latency,
        pages_rewritten,
        blocks_reclaimed,
        live_entries: total,
    })
}
