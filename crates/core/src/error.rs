//! Error type of the REIS system.

use std::fmt;

use reis_ann::AnnError;
use reis_nand::NandError;
use reis_persist::PersistError;
use reis_ssd::SsdError;

/// Errors returned by REIS deployment and search operations.
///
/// The enum is `#[non_exhaustive]`: downstream matches must carry a
/// wildcard arm, so new failure modes (the durability variants below were
/// the first addition) are not breaking changes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReisError {
    /// An error propagated from the SSD controller layer.
    Ssd(SsdError),
    /// An error propagated from the NAND flash device.
    Nand(NandError),
    /// An error propagated from the ANNS algorithm library.
    Ann(AnnError),
    /// The database being deployed is malformed (e.g. the number of
    /// documents does not match the number of embeddings).
    MalformedDatabase(String),
    /// A search referenced a database id that has not been deployed.
    DatabaseNotDeployed(u32),
    /// A search requested an operation the deployed database does not
    /// support (e.g. an IVF search on a database deployed without clusters).
    UnsupportedSearch(String),
    /// A query had the wrong dimensionality for the target database.
    QueryDimensionMismatch {
        /// Dimensionality of the deployed embeddings.
        expected: usize,
        /// Dimensionality of the query.
        actual: usize,
    },
    /// A configuration parameter is outside its valid range.
    InvalidConfig(String),
    /// A mutation referenced a logical entry id that does not exist (never
    /// assigned, or already deleted).
    EntryNotFound(u32),
    /// A document slot read back with an invalid length prefix (e.g. after an
    /// uncorrectable flash error), so the chunk cannot be returned.
    CorruptDocument {
        /// Page offset within the document region.
        page: usize,
        /// Slot index within the page.
        slot: usize,
    },
    /// A snapshot file failed validation during recovery: bad magic, an
    /// unsupported format version, a checksum mismatch or an inconsistent
    /// section payload. The wrapped [`PersistError`] pinpoints what rotted
    /// and is exposed through [`std::error::Error::source`].
    CorruptSnapshot(PersistError),
    /// A WAL failed validation in a context that does not tolerate
    /// quarantining (recovery itself quarantines torn tails and reports
    /// them instead of erroring). Wraps the precise [`PersistError`],
    /// exposed through [`std::error::Error::source`].
    CorruptWal(PersistError),
    /// Any other durability failure (storage I/O, missing files, replay
    /// divergence), with the underlying [`PersistError`] as the source.
    Persist(PersistError),
    /// A leaf device (or every replica of a shard) was unreachable: down,
    /// killed by a fault plan, or out of retries. Carries the index of the
    /// first unreachable leaf; when a [`PersistError`] explains *why* the
    /// leaf went away it is chained through
    /// [`std::error::Error::source`].
    Unavailable {
        /// Index of the unreachable leaf.
        leaf: usize,
        /// The underlying durability failure, when one caused the outage.
        source: Option<PersistError>,
    },
    /// The request pipeline's bounded submission queue was full: explicit
    /// backpressure instead of unbounded queueing. Carries the configured
    /// lane depth; the caller sheds or retries after draining.
    Overloaded {
        /// The lane's configured depth bound that was hit.
        depth: usize,
    },
    /// A pooled worker task panicked while executing a shard, chunk or
    /// replica batch. The panic is isolated by the scheduler — the pool
    /// and unrelated queries keep working — and surfaced to the submitting
    /// request as this error, carrying the rendered panic payload.
    WorkerPanic(String),
}

impl fmt::Display for ReisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReisError::Ssd(e) => write!(f, "ssd error: {e}"),
            ReisError::Nand(e) => write!(f, "nand error: {e}"),
            ReisError::Ann(e) => write!(f, "ann error: {e}"),
            ReisError::MalformedDatabase(msg) => write!(f, "malformed database: {msg}"),
            ReisError::DatabaseNotDeployed(id) => write!(f, "database {id} is not deployed"),
            ReisError::UnsupportedSearch(msg) => write!(f, "unsupported search: {msg}"),
            ReisError::QueryDimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "query has {actual} dimensions but the database stores {expected}"
                )
            }
            ReisError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ReisError::EntryNotFound(id) => {
                write!(f, "entry {id} does not exist (or was deleted)")
            }
            ReisError::CorruptDocument { page, slot } => {
                write!(
                    f,
                    "document slot {slot} of page {page} has a corrupt length prefix"
                )
            }
            ReisError::CorruptSnapshot(e) => write!(f, "corrupt snapshot: {e}"),
            ReisError::CorruptWal(e) => write!(f, "corrupt WAL: {e}"),
            ReisError::Persist(e) => write!(f, "durability error: {e}"),
            ReisError::Unavailable { leaf, source } => match source {
                Some(e) => write!(f, "leaf {leaf} is unavailable: {e}"),
                None => write!(f, "leaf {leaf} is unavailable"),
            },
            ReisError::Overloaded { depth } => {
                write!(
                    f,
                    "pipeline overloaded: submission queue is at its depth bound {depth}"
                )
            }
            ReisError::WorkerPanic(msg) => write!(f, "worker task panicked: {msg}"),
        }
    }
}

impl std::error::Error for ReisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReisError::Ssd(e) => Some(e),
            ReisError::Nand(e) => Some(e),
            ReisError::Ann(e) => Some(e),
            ReisError::CorruptSnapshot(e) | ReisError::CorruptWal(e) | ReisError::Persist(e) => {
                Some(e)
            }
            ReisError::Unavailable {
                source: Some(e), ..
            } => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for ReisError {
    /// Route checksum/validation failures to the dedicated `Corrupt*`
    /// variants and everything else to the generic [`ReisError::Persist`].
    fn from(e: PersistError) -> Self {
        match &e {
            PersistError::CorruptSnapshot { .. } | PersistError::UnsupportedVersion { .. } => {
                ReisError::CorruptSnapshot(e)
            }
            PersistError::CorruptWal { .. } => ReisError::CorruptWal(e),
            _ => ReisError::Persist(e),
        }
    }
}

impl From<SsdError> for ReisError {
    fn from(e: SsdError) -> Self {
        ReisError::Ssd(e)
    }
}

impl From<NandError> for ReisError {
    fn from(e: NandError) -> Self {
        ReisError::Nand(e)
    }
}

impl From<AnnError> for ReisError {
    fn from(e: AnnError) -> Self {
        ReisError::Ann(e)
    }
}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ReisError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let e: ReisError = SsdError::UnknownDatabase(1).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: ReisError = NandError::InvalidCommandSequence("x").into();
        assert!(std::error::Error::source(&e).is_some());
        let e: ReisError = AnnError::EmptyDataset.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = ReisError::DatabaseNotDeployed(7);
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn unavailable_chains_its_optional_source() {
        let bare = ReisError::Unavailable {
            leaf: 3,
            source: None,
        };
        assert!(bare.to_string().contains("leaf 3"));
        assert!(std::error::Error::source(&bare).is_none());

        let caused = ReisError::Unavailable {
            leaf: 1,
            source: Some(PersistError::NoSnapshot),
        };
        let source = std::error::Error::source(&caused).expect("chained source");
        assert!(!source.to_string().is_empty());
        assert!(caused.to_string().contains("leaf 1 is unavailable:"));
    }

    #[test]
    fn persist_conversions_pick_the_structured_variant_and_chain_sources() {
        let e: ReisError = PersistError::CorruptSnapshot {
            file: "snapshot-00000001".into(),
            detail: "section 0x102 checksum mismatch".into(),
        }
        .into();
        assert!(matches!(e, ReisError::CorruptSnapshot(_)));
        // The chained source keeps the precise detail reachable.
        let source = std::error::Error::source(&e).expect("chained source");
        assert!(source.to_string().contains("checksum mismatch"));

        let e: ReisError = PersistError::UnsupportedVersion {
            file: "snapshot-00000001".into(),
            found: 2,
            supported: 1,
        }
        .into();
        assert!(matches!(e, ReisError::CorruptSnapshot(_)));

        let e: ReisError = PersistError::CorruptWal {
            file: "wal-00000001".into(),
            offset: 40,
            detail: "torn frame".into(),
        }
        .into();
        assert!(matches!(e, ReisError::CorruptWal(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: ReisError = PersistError::NoSnapshot.into();
        assert!(matches!(e, ReisError::Persist(_)));
        assert!(e.to_string().contains("durability"));
    }

    #[test]
    fn display_is_meaningful() {
        let errs = vec![
            ReisError::MalformedDatabase("0 documents".into()),
            ReisError::DatabaseNotDeployed(3),
            ReisError::UnsupportedSearch("IVF on flat".into()),
            ReisError::QueryDimensionMismatch {
                expected: 1024,
                actual: 768,
            },
            ReisError::InvalidConfig("rerank factor 0".into()),
            ReisError::EntryNotFound(42),
            ReisError::CorruptDocument { page: 3, slot: 1 },
            ReisError::Unavailable {
                leaf: 0,
                source: None,
            },
            ReisError::Overloaded { depth: 64 },
            ReisError::WorkerPanic("index out of bounds".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn scheduler_variants_carry_their_context() {
        let shed = ReisError::Overloaded { depth: 8 };
        assert!(shed.to_string().contains("depth bound 8"));
        assert!(std::error::Error::source(&shed).is_none());

        let crashed = ReisError::WorkerPanic("boom".into());
        assert!(crashed.to_string().contains("boom"));
        assert!(std::error::Error::source(&crashed).is_none());
    }
}
