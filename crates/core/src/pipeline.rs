//! The asynchronous request pipeline: REIS's front door under load.
//!
//! Callers of [`ReisSystem::search`] choose their own batch sizes; a serving
//! deployment cannot — requests arrive whenever clients send them. The
//! [`Pipeline`] turns arrivals into device work the way a real heavy-traffic
//! server would, and makes **batch size an emergent property of load**:
//!
//! * **Bounded submission queues.** Each lane holds at most
//!   [`PipelineConfig::queue_depth`] requests; past that, [`Pipeline::submit`]
//!   returns [`ReisError::Overloaded`] — explicit backpressure instead of
//!   unbounded queueing.
//! * **Batch formation.** Compatible searches (same `k`/`nprobe`) collect
//!   until the batch reaches [`PipelineConfig::max_batch`] or its oldest
//!   member has waited [`PipelineConfig::max_wait_ns`], then the whole batch
//!   executes through the fused batch executor (one sense per distinct page
//!   for the entire batch). Under light load batches stay small and latency
//!   low; under heavy load they fill and throughput rises.
//! * **Priority lanes.** Mutations and searches queue separately;
//!   [`LanePriority`] decides whether pending mutations drain before a
//!   search batch dispatches (`MutationsFirst`, the default — searches then
//!   observe every earlier-arriving write) or wait their own turn.
//!
//! Time is **virtual**: callers stamp submissions with nanosecond
//! timestamps (e.g. from a seeded
//! [`ArrivalTrace`](../../reis_workloads/arrival) — the `fig_scheduler`
//! bench does), and completions are priced by the modelled device latency,
//! serialized through a device-busy horizon. The whole pipeline is therefore
//! deterministic: the same trace produces byte-identical completions on any
//! machine and any pool size, which is what lets the scheduler CI gate diff
//! its summaries, and lets a QPS-vs-p99 sweep run on a single-core host.
//!
//! Queue depth, queue wait and formed batch size are observable through
//! `reis-telemetry` (`reis_pipeline_*`), recorded only at submit/dispatch
//! points — never inside the engine — so telemetry stays non-perturbing.

use std::collections::VecDeque;

use reis_telemetry::{CounterId, HistogramId};

use crate::error::{ReisError, Result};
use crate::mutate::MutationOutcome;
use crate::system::{ReisSystem, SearchOutcome};

/// Which lane dispatches first when a search batch is ready while mutations
/// are still queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanePriority {
    /// Drain every pending mutation before a search batch dispatches (the
    /// default): searches always observe writes that arrived before them.
    MutationsFirst,
    /// Dispatch the search batch immediately; mutations wait for their own
    /// `max_wait` deadline (lower search latency, relaxed read-your-writes).
    SearchesFirst,
}

/// Tuning knobs of a [`Pipeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Largest batch handed to the fused executor; a full lane dispatches
    /// immediately. Clamped to ≥ 1.
    pub max_batch: usize,
    /// Longest time the oldest queued request waits before its lane
    /// dispatches regardless of batch size, in virtual nanoseconds.
    pub max_wait_ns: u64,
    /// Per-lane submission-queue bound; submissions past it are shed with
    /// [`ReisError::Overloaded`]. Clamped to ≥ 1.
    pub queue_depth: usize,
    /// Lane dispatch order (see [`LanePriority`]).
    pub priority: LanePriority,
    /// Worker budget handed to the batch executors. Deliberately explicit
    /// (not derived from the pool size) so the formed work — and with it
    /// every diffable summary — is identical across pool sizes.
    pub workers: usize,
}

impl Default for PipelineConfig {
    /// 8-query batches, 200 µs formation window, 64-deep lanes,
    /// mutations-first, 4 executor workers.
    fn default() -> Self {
        PipelineConfig {
            max_batch: 8,
            max_wait_ns: 200_000,
            queue_depth: 64,
            priority: LanePriority::MutationsFirst,
            workers: 4,
        }
    }
}

impl PipelineConfig {
    /// Builder-style override of the maximum formed batch size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Builder-style override of the formation window, in microseconds.
    pub fn with_max_wait_us(mut self, us: u64) -> Self {
        self.max_wait_ns = us.saturating_mul(1_000);
        self
    }

    /// Builder-style override of the per-lane queue bound.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Builder-style override of the lane priority.
    pub fn with_priority(mut self, priority: LanePriority) -> Self {
        self.priority = priority;
        self
    }

    /// Builder-style override of the executor worker budget.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// One request submitted to the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineRequest {
    /// Brute-force top-`k` search.
    Search {
        /// The query embedding.
        query: Vec<f32>,
        /// Results requested.
        k: usize,
    },
    /// IVF top-`k` search with an explicit probe count.
    IvfSearch {
        /// The query embedding.
        query: Vec<f32>,
        /// Results requested.
        k: usize,
        /// Clusters probed.
        nprobe: usize,
    },
    /// Append one entry.
    Insert {
        /// The embedding to insert.
        vector: Vec<f32>,
        /// Its document chunk.
        document: Vec<u8>,
    },
    /// Tombstone one entry by stable id.
    Delete {
        /// The stable id to delete.
        id: u32,
    },
    /// Replace one entry by stable id.
    Upsert {
        /// The stable id to replace.
        id: u32,
        /// The replacement embedding.
        vector: Vec<f32>,
        /// The replacement document chunk.
        document: Vec<u8>,
    },
}

impl PipelineRequest {
    /// True for the mutation lane (insert / delete / upsert).
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            PipelineRequest::Insert { .. }
                | PipelineRequest::Delete { .. }
                | PipelineRequest::Upsert { .. }
        )
    }

    /// Two searches fuse into one batch only when the fused executor would
    /// treat them identically: same `k` and same probe selection. `None`
    /// for mutations.
    pub fn batch_key(&self) -> Option<(usize, Option<usize>)> {
        match self {
            PipelineRequest::Search { k, .. } => Some((*k, None)),
            PipelineRequest::IvfSearch { k, nprobe, .. } => Some((*k, Some(*nprobe))),
            _ => None,
        }
    }
}

/// A completed request's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineReply {
    /// A search's outcome (boxed: a [`SearchOutcome`] dwarfs the
    /// mutation variant).
    Search(Box<SearchOutcome>),
    /// A mutation's outcome.
    Mutation(MutationOutcome),
}

/// One completion record: when the request entered, when its batch
/// dispatched, when the modelled device finished it, and the answer.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineCompletion {
    /// The id [`Pipeline::submit`] returned.
    pub request_id: u64,
    /// Virtual submission timestamp (the caller's).
    pub submitted_ns: u64,
    /// Virtual time the request's batch left its lane.
    pub dispatched_ns: u64,
    /// Virtual time the modelled device completed it. The end-to-end
    /// sojourn is `completed_ns - submitted_ns`.
    pub completed_ns: u64,
    /// Size of the batch the request dispatched in (1 for mutations).
    pub batch_size: usize,
    /// The answer, or the error the whole batch surfaced. Request-level
    /// errors never poison the pipeline itself.
    pub reply: Result<PipelineReply>,
}

/// A queued request with its submission metadata.
#[derive(Debug)]
struct Pending {
    request_id: u64,
    submitted_ns: u64,
    request: PipelineRequest,
}

/// The asynchronous request pipeline over one [`ReisSystem`] database (see
/// the module docs). Created by [`ReisSystem::pipeline`]; holds the system
/// exclusively, so submissions and dispatches interleave deterministically.
#[derive(Debug)]
pub struct Pipeline<'a> {
    system: &'a mut ReisSystem,
    db_id: u32,
    config: PipelineConfig,
    /// Virtual now: the latest submission or dispatch event processed.
    clock_ns: u64,
    /// When the modelled device frees up; dispatches serialize behind it.
    device_free_ns: u64,
    searches: VecDeque<Pending>,
    mutations: VecDeque<Pending>,
    completions: Vec<PipelineCompletion>,
    next_id: u64,
    shed: u64,
}

impl ReisSystem {
    /// Open an asynchronous request pipeline over one deployed database
    /// (see [`Pipeline`]). The pipeline borrows the system exclusively;
    /// drop it (after [`Pipeline::flush`]) to use the system directly
    /// again.
    pub fn pipeline(&mut self, db_id: u32, config: PipelineConfig) -> Pipeline<'_> {
        Pipeline {
            system: self,
            db_id,
            config: PipelineConfig {
                max_batch: config.max_batch.max(1),
                queue_depth: config.queue_depth.max(1),
                workers: config.workers.max(1),
                ..config
            },
            clock_ns: 0,
            device_free_ns: 0,
            searches: VecDeque::new(),
            mutations: VecDeque::new(),
            completions: Vec::new(),
            next_id: 0,
            shed: 0,
        }
    }
}

impl Pipeline<'_> {
    /// Submit one request at virtual time `at_ns` (timestamps must be
    /// non-decreasing across calls; earlier stamps are clamped to the
    /// current virtual clock). Returns the request id its completion will
    /// carry.
    ///
    /// # Errors
    ///
    /// [`ReisError::Overloaded`] when the request's lane is at
    /// [`PipelineConfig::queue_depth`] — the request is shed, nothing is
    /// queued, and the pipeline stays fully usable (drain by advancing
    /// time, then resubmit).
    pub fn submit(&mut self, at_ns: u64, request: PipelineRequest) -> Result<u64> {
        // Fire every formation deadline that elapsed before this arrival.
        self.run_until(at_ns);
        self.clock_ns = self.clock_ns.max(at_ns);

        let telemetry = self.system.telemetry.clone();
        let lane = if request.is_mutation() {
            &mut self.mutations
        } else {
            &mut self.searches
        };
        if lane.len() >= self.config.queue_depth {
            self.shed += 1;
            telemetry.count(CounterId::PipelineShed, 1);
            return Err(ReisError::Overloaded {
                depth: self.config.queue_depth,
            });
        }

        // A search that cannot fuse with the forming batch closes it: the
        // lane stays homogeneous, so a dispatch always takes the whole lane.
        let incompatible = !request.is_mutation()
            && self
                .searches
                .front()
                .is_some_and(|head| head.request.batch_key() != request.batch_key());
        if incompatible {
            self.dispatch_searches();
        }

        let request_id = self.next_id;
        self.next_id += 1;
        let is_mutation = request.is_mutation();
        let pending = Pending {
            request_id,
            submitted_ns: self.clock_ns,
            request,
        };
        let lane = if is_mutation {
            &mut self.mutations
        } else {
            &mut self.searches
        };
        lane.push_back(pending);
        let depth = lane.len();
        telemetry.count(CounterId::PipelineRequests, 1);
        telemetry.observe(HistogramId::PipelineQueueDepth, depth as u64);

        if !is_mutation && self.searches.len() >= self.config.max_batch {
            self.dispatch_searches();
        }
        Ok(request_id)
    }

    /// Advance virtual time to `at_ns`, firing every lane whose formation
    /// deadline (`oldest submission + max_wait`) elapses on the way, in
    /// deadline order (ties broken by [`LanePriority`]).
    pub fn run_until(&mut self, at_ns: u64) {
        loop {
            let search_deadline = self
                .searches
                .front()
                .map(|p| p.submitted_ns.saturating_add(self.config.max_wait_ns));
            let mutation_deadline = self
                .mutations
                .front()
                .map(|p| p.submitted_ns.saturating_add(self.config.max_wait_ns));
            let mutations_first = match (search_deadline, mutation_deadline) {
                (None, None) => break,
                (Some(s), None) if s <= at_ns => false,
                (None, Some(m)) if m <= at_ns => true,
                (Some(s), Some(m)) if s.min(m) <= at_ns => {
                    m < s || (m == s && self.config.priority == LanePriority::MutationsFirst)
                }
                _ => break,
            };
            let deadline = if mutations_first {
                mutation_deadline.unwrap()
            } else {
                search_deadline.unwrap()
            };
            self.clock_ns = self.clock_ns.max(deadline);
            if mutations_first {
                self.dispatch_mutations();
            } else {
                self.dispatch_searches();
            }
        }
        self.clock_ns = self.clock_ns.max(at_ns);
    }

    /// Dispatch everything still queued, in priority order, regardless of
    /// formation deadlines. Call before reading the final completion set.
    pub fn flush(&mut self) {
        match self.config.priority {
            LanePriority::MutationsFirst => {
                self.dispatch_mutations();
                self.dispatch_searches();
            }
            LanePriority::SearchesFirst => {
                self.dispatch_searches();
                self.dispatch_mutations();
            }
        }
    }

    /// Take every completion recorded so far, in dispatch order.
    pub fn drain_completions(&mut self) -> Vec<PipelineCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// Requests shed with [`ReisError::Overloaded`] so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Requests currently queued across both lanes.
    pub fn queued(&self) -> usize {
        self.searches.len() + self.mutations.len()
    }

    /// The current virtual time, nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Dispatch the whole search lane as one fused batch.
    fn dispatch_searches(&mut self) {
        // Read-your-writes: under MutationsFirst no search batch leaves
        // while an earlier-arriving mutation is still queued.
        if self.config.priority == LanePriority::MutationsFirst && !self.mutations.is_empty() {
            self.dispatch_mutations();
        }
        if self.searches.is_empty() {
            return;
        }
        let batch: Vec<Pending> = self.searches.drain(..).collect();
        let dispatched_ns = self.clock_ns;
        let start_ns = dispatched_ns.max(self.device_free_ns);
        let batch_size = batch.len();
        self.system
            .telemetry
            .observe(HistogramId::PipelineBatchSize, batch_size as u64);
        for pending in &batch {
            self.system.telemetry.observe(
                HistogramId::PipelineQueueWaitNs,
                dispatched_ns.saturating_sub(pending.submitted_ns),
            );
        }

        let (k, nprobe) = batch[0]
            .request
            .batch_key()
            .expect("search lane holds only searches");
        let queries: Vec<Vec<f32>> = batch
            .iter()
            .map(|p| match &p.request {
                PipelineRequest::Search { query, .. }
                | PipelineRequest::IvfSearch { query, .. } => query.clone(),
                _ => unreachable!("search lane holds only searches"),
            })
            .collect();
        let executed = match nprobe {
            Some(nprobe) => self.system.ivf_search_batch_with_nprobe(
                self.db_id,
                &queries,
                k,
                nprobe,
                self.config.workers,
            ),
            None => self
                .system
                .search_batch(self.db_id, &queries, k, self.config.workers),
        };

        match executed {
            Ok(outcomes) => {
                // Queries in a fused batch share the device; the batch
                // occupies it for its slowest member while each request
                // completes at its own modelled latency.
                let mut busy_until = start_ns;
                for (pending, outcome) in batch.into_iter().zip(outcomes) {
                    let completed_ns = start_ns + outcome.total_latency().as_nanos();
                    busy_until = busy_until.max(completed_ns);
                    self.completions.push(PipelineCompletion {
                        request_id: pending.request_id,
                        submitted_ns: pending.submitted_ns,
                        dispatched_ns,
                        completed_ns,
                        batch_size,
                        reply: Ok(PipelineReply::Search(Box::new(outcome))),
                    });
                }
                self.device_free_ns = busy_until;
            }
            Err(error) => {
                // The whole batch surfaces the executor's error; no
                // modelled time elapses for work the device rejected.
                for pending in batch {
                    self.completions.push(PipelineCompletion {
                        request_id: pending.request_id,
                        submitted_ns: pending.submitted_ns,
                        dispatched_ns,
                        completed_ns: start_ns,
                        batch_size,
                        reply: Err(error.clone()),
                    });
                }
            }
        }
    }

    /// Dispatch the whole mutation lane, sequentially in arrival order
    /// (mutations serialize on the device's program path).
    fn dispatch_mutations(&mut self) {
        if self.mutations.is_empty() {
            return;
        }
        let lane: Vec<Pending> = self.mutations.drain(..).collect();
        let dispatched_ns = self.clock_ns;
        for pending in lane {
            self.system.telemetry.observe(
                HistogramId::PipelineQueueWaitNs,
                dispatched_ns.saturating_sub(pending.submitted_ns),
            );
            let start_ns = dispatched_ns.max(self.device_free_ns);
            let executed = match pending.request {
                PipelineRequest::Insert { vector, document } => {
                    self.system.insert(self.db_id, &vector, document)
                }
                PipelineRequest::Delete { id } => self.system.delete(self.db_id, id),
                PipelineRequest::Upsert {
                    id,
                    vector,
                    document,
                } => self.system.upsert(self.db_id, id, &vector, &document),
                _ => unreachable!("mutation lane holds only mutations"),
            };
            let (completed_ns, reply) = match executed {
                Ok(outcome) => {
                    let done = start_ns + outcome.latency.as_nanos();
                    self.device_free_ns = done;
                    (done, Ok(PipelineReply::Mutation(outcome)))
                }
                Err(error) => (start_ns, Err(error)),
            };
            self.completions.push(PipelineCompletion {
                request_id: pending.request_id,
                submitted_ns: pending.submitted_ns,
                dispatched_ns,
                completed_ns,
                batch_size: 1,
                reply,
            });
        }
    }
}
