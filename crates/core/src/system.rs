//! The REIS system: the host-facing API of Table 1 on top of the in-storage
//! engine.
//!
//! [`ReisSystem`] owns the simulated SSD, deploys vector databases into it
//! (`DB_Deploy` / `IVF_Deploy`) and serves `Search` / `IVF_Search` requests,
//! returning both the retrieved documents and the modelled latency and
//! energy of each query. Batched variants ([`ReisSystem::search_batch`],
//! [`ReisSystem::ivf_search_batch`]) execute independent queries in parallel
//! on per-worker replicas of the simulated device, each worker reusing its
//! own engine scratch.

use std::collections::HashMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use reis_ann::topk::Neighbor;
use reis_nand::{FlashStats, Nanos};
use reis_persist::WalRecord;
use reis_ssd::{ControllerActivity, RegionKind, SsdController, SsdMode};
use reis_telemetry::{
    CounterId, ExplainEvent, ExplainTrace, GaugeId, HistogramId, QueryTrace, Span, Telemetry,
};

use reis_sched::{WorkerLocal, WorkerPool};

use crate::config::{BatchFusion, ReisConfig, ScanExecutor, ScanParallelism};
use crate::database::VectorDatabase;
use crate::deploy::{self, DeployedDatabase};
use crate::durable::Durability;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::engine::{InStorageEngine, ScanScratch};
use crate::error::{ReisError, Result};
use crate::fused;
use crate::mutate::{self, CompactionOutcome, MutationOutcome};
use crate::perf::{LatencyBreakdown, PerfModel, QueryActivity};

/// Result of one REIS search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The top-k results as `(original entry id, INT8 rerank distance)` in
    /// ascending distance order.
    pub results: Vec<Neighbor>,
    /// The retrieved document chunks, aligned with `results`.
    pub documents: Vec<Vec<u8>>,
    /// Per-phase latency of the query.
    pub latency: LatencyBreakdown,
    /// Activity counters (pages scanned, entries transferred, …).
    pub activity: QueryActivity,
    /// Energy breakdown of the query.
    pub energy: EnergyBreakdown,
    /// Flash operation counters attributable to the query.
    pub flash_stats: FlashStats,
}

impl SearchOutcome {
    /// End-to-end latency of the query.
    pub fn total_latency(&self) -> Nanos {
        self.latency.total()
    }

    /// Queries per second this query's latency corresponds to.
    pub fn qps(&self) -> f64 {
        let secs = self.total_latency().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            1.0 / secs
        }
    }

    /// Queries per second per watt (the energy-efficiency metric of Fig. 8).
    pub fn qps_per_watt(&self) -> f64 {
        let energy = self.energy.total_j();
        if energy <= 0.0 {
            0.0
        } else {
            1.0 / energy
        }
    }

    /// The original entry ids of the results, in rank order.
    pub fn result_ids(&self) -> Vec<usize> {
        self.results.iter().map(|n| n.id).collect()
    }
}

/// The REIS retrieval system.
#[derive(Debug)]
pub struct ReisSystem {
    pub(crate) config: ReisConfig,
    pub(crate) controller: SsdController,
    pub(crate) perf: PerfModel,
    pub(crate) energy: EnergyModel,
    pub(crate) databases: HashMap<u32, DeployedDatabase>,
    pub(crate) next_db_id: u32,
    /// Scan scratch reused by every sequential query this system serves.
    pub(crate) scratch: ScanScratch,
    /// The host's available parallelism, captured once: the shard budget of
    /// auto-sharded single-query scans and of fused batch scans.
    pub(crate) auto_shards: usize,
    /// The durable store this system checkpoints snapshots to and logs
    /// mutations into — `None` for a purely in-memory system (the
    /// [`ReisSystem::new`] default) and during WAL replay, which is how
    /// replayed mutations avoid re-logging themselves. Attached by
    /// [`ReisSystem::open`] / [`ReisSystem::recover`] (see `crate::durable`).
    pub(crate) durability: Option<Durability>,
    /// The telemetry handle every layer of this system records into.
    /// Disabled by default (every recording call is a single branch);
    /// enabled by `REIS_TELEMETRY=1` at construction or by
    /// [`ReisSystem::enable_telemetry`]. Recording only reads values the
    /// engine already computed, at merge/barrier/post-query points, so
    /// results and all logical accounting are bit-identical with telemetry
    /// on and off (the CI determinism gate enforces this).
    pub(crate) telemetry: Telemetry,
    /// The persistent worker pool every shard scan, fused chunk and
    /// replica batch executes on (under the default
    /// [`ScanExecutor::Pooled`](crate::config::ScanExecutor)). Created
    /// once here; no query or mutation path spawns threads afterwards.
    /// Sized by `REIS_SCHED_WORKERS`, else by `auto_shards`.
    pub(crate) sched: WorkerPool,
    /// Per-worker scan scratch for replica batch workers: the pool keeps
    /// each worker's buffers warm across batches instead of allocating a
    /// fresh scratch per worker per batch. Scratch reuse never affects
    /// results (buffers are cleared or overwritten per scan), so affinity
    /// is purely an allocation-count optimization.
    pub(crate) worker_scratch: WorkerLocal<ScanScratch>,
}

impl ReisSystem {
    /// Create a REIS system on a freshly initialised SSD.
    ///
    /// The host's available parallelism is captured once and used as the
    /// shard budget of auto-sharded scans. Results never depend on it (the
    /// windowed adaptive schedule and the total-order candidate selection
    /// are partition-invariant); the `REIS_TEST_PARALLELISM` environment
    /// variable overrides the captured value so CI can *prove* that by
    /// diffing runs pinned to different budgets on the same machine.
    pub fn new(config: ReisConfig) -> Self {
        let mut controller = SsdController::new(config.ssd);
        controller.switch_mode(SsdMode::Rag);
        let auto_shards = std::env::var("REIS_TEST_PARALLELISM")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let sched = WorkerPool::from_env(auto_shards);
        let worker_scratch = WorkerLocal::new(&sched, |_| ScanScratch::new());
        ReisSystem {
            config,
            controller,
            perf: PerfModel::new(config),
            energy: EnergyModel::default(),
            databases: HashMap::new(),
            next_db_id: 1,
            scratch: ScanScratch::new(),
            auto_shards,
            durability: None,
            telemetry: Telemetry::from_env(),
            sched,
            worker_scratch,
        }
    }

    /// The persistent worker pool this system executes shard scans, fused
    /// chunks and replica batches on. Exposed so tests and benches can
    /// observe its size (set via `REIS_SCHED_WORKERS`, defaulting to the
    /// captured host parallelism) or drive it directly.
    pub fn scheduler(&self) -> &WorkerPool {
        &self.sched
    }

    /// The telemetry handle of this system (disabled unless
    /// `REIS_TELEMETRY=1` was set at construction or
    /// [`ReisSystem::enable_telemetry`] was called). Use it to read
    /// counters/histograms, pull query traces, arm explain mode, or render
    /// a Prometheus/JSON export.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Enable telemetry on this system with a fresh registry (no-op if
    /// already enabled). Enabling is provably non-perturbing: results,
    /// transferred-entry counts and all modelled accounting stay
    /// bit-identical to a telemetry-off run.
    pub fn enable_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::enabled();
        }
    }

    /// The configuration of this instance.
    pub fn config(&self) -> &ReisConfig {
        &self.config
    }

    /// Change the intra-query scan sharding policy of subsequent queries.
    ///
    /// Sharding is a host-side execution knob, not a property of the
    /// deployed data, so it can be reconfigured at any time — benchmarks
    /// sweep it over one deployment. Results are bit-identical across
    /// settings; only wall-clock latency changes.
    ///
    /// Note that the plain [`ScanParallelism::sequential`] value is the
    /// "no preference" default that single-query searches auto-upgrade to
    /// `available_parallelism` shards; pass
    /// [`ScanParallelism::pinned_sequential`] to actually force
    /// single-threaded scans.
    pub fn set_scan_parallelism(&mut self, scan_parallelism: ScanParallelism) {
        self.config.scan_parallelism = scan_parallelism;
    }

    /// Change the adaptive threshold-window size of subsequent queries
    /// (clamped to at least 1; see
    /// [`ReisConfig::adaptive_window_pages`](crate::config::ReisConfig)).
    ///
    /// Like scan parallelism, the window is a host-side execution knob, not
    /// a property of the deployed data, so benchmarks sweep it over one
    /// deployment. The returned top-k and documents are invariant under the
    /// window size; the transferred-entry counts — and the latency the
    /// model prices from them — are what change. The latency model is
    /// rebuilt so the per-barrier maintenance cost follows the new window.
    pub fn set_adaptive_window(&mut self, pages: usize) {
        self.config.adaptive_window_pages = pages.max(1);
        self.perf = PerfModel::new(self.config);
    }

    /// Access to the underlying SSD controller (primarily for inspection in
    /// tests and benchmarks).
    pub fn controller(&self) -> &SsdController {
        &self.controller
    }

    /// The deployed database with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`ReisError::DatabaseNotDeployed`] for an unknown id.
    pub fn database(&self, db_id: u32) -> Result<&DeployedDatabase> {
        self.databases
            .get(&db_id)
            .ok_or(ReisError::DatabaseNotDeployed(db_id))
    }

    /// Deploy a database (`DB_Deploy` for flat databases, `IVF_Deploy` when
    /// the database carries cluster information) and return its id.
    ///
    /// On a durably-opened system (see [`ReisSystem::open`]) a deployment
    /// immediately checkpoints a new snapshot: deployments are carried by
    /// snapshots, mutations by the WAL, so a database is crash-durable from
    /// the moment this method returns.
    ///
    /// # Errors
    ///
    /// Propagates layout and capacity errors from the deployment path.
    pub fn deploy(&mut self, database: &VectorDatabase) -> Result<u32> {
        let db_id = self.next_db_id;
        let deployed = deploy::deploy(&mut self.controller, database, db_id)?;
        self.databases.insert(db_id, deployed);
        self.next_db_id += 1;
        if self.durability.is_some() {
            self.save()?;
        }
        self.telemetry
            .gauge_set(GaugeId::DatabasesDeployed, self.databases.len() as u64);
        Ok(db_id)
    }

    /// Map a target Recall@10 to an `nprobe` setting for a database with
    /// `nlist` clusters (the `R` parameter of `IVF_Search`). The mapping is
    /// the monotone heuristic the device uses when the host does not specify
    /// `nprobe` directly: ~2 % of the clusters at recall 0.90 rising to
    /// ~10 % at recall 0.98.
    pub fn nprobe_for_recall(nlist: usize, target_recall: f64) -> usize {
        let recall = target_recall.clamp(0.0, 1.0);
        let fraction = 0.02 + (recall - 0.90).max(0.0) * 1.0;
        ((nlist as f64 * fraction).ceil() as usize).clamp(1, nlist.max(1))
    }

    /// `Search(Q, Qid, Did, k)`: brute-force top-k search over the whole
    /// database.
    ///
    /// # Errors
    ///
    /// * [`ReisError::DatabaseNotDeployed`] for an unknown id.
    /// * [`ReisError::QueryDimensionMismatch`] for a query of the wrong
    ///   dimensionality.
    ///
    /// # Examples
    ///
    /// ```
    /// use reis_core::{ReisConfig, ReisSystem, VectorDatabase};
    ///
    /// # fn main() -> Result<(), reis_core::ReisError> {
    /// let vectors: Vec<Vec<f32>> = (0..64)
    ///     .map(|i| (0..32).map(|d| ((i * 7 + d) % 13) as f32 - 6.0).collect())
    ///     .collect();
    /// let documents: Vec<Vec<u8>> = (0..64).map(|i| format!("doc {i}").into_bytes()).collect();
    ///
    /// let mut reis = ReisSystem::new(ReisConfig::tiny());
    /// let db = reis.deploy(&VectorDatabase::flat(&vectors, documents)?)?;
    /// let outcome = reis.search(db, &vectors[5], 5)?;
    ///
    /// // An indexed vector is its own nearest neighbor, and the linked
    /// // document chunk comes back with the hit.
    /// assert_eq!(outcome.results[0].id, 5);
    /// assert_eq!(outcome.documents[0], b"doc 5");
    /// assert!(outcome.total_latency().as_secs_f64() > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn search(&mut self, db_id: u32, query: &[f32], k: usize) -> Result<SearchOutcome> {
        self.run_query(db_id, query, k, None)
    }

    /// `IVF_Search(Q, Qid, Did, k, R)`: IVF top-k search with a target
    /// recall, which the device maps to an `nprobe` value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::search`], plus
    /// [`ReisError::UnsupportedSearch`] if the database was deployed without
    /// cluster structure.
    pub fn ivf_search(
        &mut self,
        db_id: u32,
        query: &[f32],
        k: usize,
        target_recall: f64,
    ) -> Result<SearchOutcome> {
        let nlist = self.database(db_id)?.rivf.len();
        if nlist == 0 {
            return Err(ReisError::UnsupportedSearch(
                "IVF_Search requires an IVF deployment".into(),
            ));
        }
        let nprobe = Self::nprobe_for_recall(nlist, target_recall);
        self.run_query(db_id, query, k, Some(nprobe))
    }

    /// IVF top-k search with an explicit `nprobe` (used by benchmarks that
    /// calibrate `nprobe` against measured recall).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::ivf_search`].
    pub fn ivf_search_with_nprobe(
        &mut self,
        db_id: u32,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Result<SearchOutcome> {
        if self.database(db_id)?.rivf.is_empty() {
            return Err(ReisError::UnsupportedSearch(
                "IVF_Search requires an IVF deployment".into(),
            ));
        }
        self.run_query(db_id, query, k, Some(nprobe))
    }

    /// Insert one entry into a deployed database and return its assigned
    /// stable id (plus the mutation's cost breakdown).
    ///
    /// The embedding is quantized with the deployment's frozen quantizers,
    /// assigned to its nearest IVF centroid (cluster 0 for flat
    /// deployments) and appended — together with its INT8 copy and document
    /// chunk — to that cluster's append segment on freshly programmed
    /// pages. The entry is searchable immediately; no rebuild or redeploy
    /// happens. May trigger an automatic compaction afterwards, per the
    /// configured [`CompactionPolicy`](reis_update::CompactionPolicy).
    ///
    /// # Errors
    ///
    /// * [`ReisError::DatabaseNotDeployed`] for an unknown id.
    /// * [`ReisError::QueryDimensionMismatch`] for a vector of the wrong
    ///   dimensionality.
    /// * [`ReisError::MalformedDatabase`] for a document chunk that does
    ///   not fit the deployment's document slots.
    ///
    /// # Examples
    ///
    /// ```
    /// use reis_core::{ReisConfig, ReisSystem, VectorDatabase};
    ///
    /// # fn main() -> Result<(), reis_core::ReisError> {
    /// let vectors: Vec<Vec<f32>> = (0..32)
    ///     .map(|i| (0..16).map(|d| ((i * 5 + d) % 11) as f32 - 5.0).collect())
    ///     .collect();
    /// let documents: Vec<Vec<u8>> = (0..32).map(|i| format!("doc {i}").into_bytes()).collect();
    /// let mut reis = ReisSystem::new(ReisConfig::tiny());
    /// let db = reis.deploy(&VectorDatabase::flat(&vectors, documents)?)?;
    ///
    /// let fresh: Vec<f32> = (0..16).map(|d| (d % 3) as f32).collect();
    /// let outcome = reis.insert(db, &fresh, b"fresh doc".to_vec())?;
    /// let id = outcome.ids[0];
    ///
    /// // The inserted entry is immediately searchable and returns its chunk.
    /// let hit = reis.search(db, &fresh, 1)?;
    /// assert_eq!(hit.results[0].id, id as usize);
    /// assert_eq!(hit.documents[0], b"fresh doc");
    ///
    /// // And it can be deleted again.
    /// reis.delete(db, id)?;
    /// let miss = reis.search(db, &fresh, 1)?;
    /// assert_ne!(miss.results[0].id, id as usize);
    /// # Ok(())
    /// # }
    /// ```
    pub fn insert(
        &mut self,
        db_id: u32,
        vector: &[f32],
        document: Vec<u8>,
    ) -> Result<MutationOutcome> {
        self.insert_batch(
            db_id,
            std::slice::from_ref(&vector.to_vec()),
            vec![document],
        )
    }

    /// Insert a batch of entries (see [`ReisSystem::insert`]); ids are
    /// returned in batch order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::insert`].
    pub fn insert_batch(
        &mut self,
        db_id: u32,
        vectors: &[Vec<f32>],
        documents: Vec<Vec<u8>>,
    ) -> Result<MutationOutcome> {
        // Clone the batch for the WAL only when a durable store is attached
        // (the clone is the record's payload; the ids it carries are filled
        // in after the mutation assigns them).
        let started = self.telemetry.is_enabled().then(Instant::now);
        let wal_payload = self
            .durability
            .is_some()
            .then(|| (vectors.to_vec(), documents.clone()));
        let outcome = self.insert_batch_inner(db_id, vectors, documents)?;
        if let Some((vectors, documents)) = wal_payload {
            self.log_wal(WalRecord::InsertBatch {
                db_id,
                vectors,
                documents,
                ids: outcome.ids.clone(),
            })?;
        }
        self.record_mutation(
            CounterId::Inserts,
            outcome.ids.len() as u64,
            started,
            &outcome,
            db_id,
        );
        Ok(outcome)
    }

    /// The body of [`ReisSystem::insert_batch`], minus WAL logging (WAL
    /// replay re-applies records through this path).
    pub(crate) fn insert_batch_inner(
        &mut self,
        db_id: u32,
        vectors: &[Vec<f32>],
        documents: Vec<Vec<u8>>,
    ) -> Result<MutationOutcome> {
        let db = self
            .databases
            .get_mut(&db_id)
            .ok_or(ReisError::DatabaseNotDeployed(db_id))?;
        let (centroid_pages, centroids) = if db.is_ivf() {
            (db.layout.centroid_pages, db.layout.centroids)
        } else {
            (0, 0)
        };
        let (ids, latency, pages_programmed) =
            mutate::insert_batch(&mut self.controller, db, vectors, &documents)?;
        // The mutation path prices the flash work (page programs, centroid
        // senses); the controller-core and DRAM costs of the append are
        // modelled here.
        let overhead = self
            .perf
            .append_overhead(ids.len(), centroid_pages, centroids);
        let compaction = self.maybe_auto_compact(db_id)?;
        Ok(MutationOutcome {
            ids,
            latency: latency + overhead,
            pages_programmed,
            compaction,
        })
    }

    /// Delete the entry with stable id `id` (a tombstone: the flash pages
    /// are reclaimed by the next compaction).
    ///
    /// # Errors
    ///
    /// * [`ReisError::DatabaseNotDeployed`] for an unknown database.
    /// * [`ReisError::EntryNotFound`] if the id never existed or was
    ///   already deleted.
    pub fn delete(&mut self, db_id: u32, id: u32) -> Result<MutationOutcome> {
        let started = self.telemetry.is_enabled().then(Instant::now);
        let outcome = self.delete_inner(db_id, id)?;
        self.log_wal(WalRecord::Delete { db_id, id })?;
        self.record_mutation(CounterId::Deletes, 1, started, &outcome, db_id);
        Ok(outcome)
    }

    /// The body of [`ReisSystem::delete`], minus WAL logging.
    pub(crate) fn delete_inner(&mut self, db_id: u32, id: u32) -> Result<MutationOutcome> {
        let db = self
            .databases
            .get_mut(&db_id)
            .ok_or(ReisError::DatabaseNotDeployed(db_id))?;
        mutate::delete_entry(&mut self.controller, db, id)?;
        let compaction = self.maybe_auto_compact(db_id)?;
        Ok(MutationOutcome {
            ids: vec![id],
            // A tombstone touches no flash; its modelled cost is the id-map
            // lookup plus the DRAM validity-bit write.
            latency: self.perf.tombstone_overhead(),
            pages_programmed: 0,
            compaction,
        })
    }

    /// Replace the entry with stable id `id` by a new embedding/document
    /// pair under the same id (delete + append in one call; a deleted id is
    /// revived). The id must have been assigned by the deployment or an
    /// earlier insert.
    ///
    /// # Errors
    ///
    /// Union of the conditions of [`ReisSystem::insert`] and
    /// [`ReisSystem::delete`].
    pub fn upsert(
        &mut self,
        db_id: u32,
        id: u32,
        vector: &[f32],
        document: &[u8],
    ) -> Result<MutationOutcome> {
        let started = self.telemetry.is_enabled().then(Instant::now);
        let outcome = self.upsert_inner(db_id, id, vector, document)?;
        if self.durability.is_some() {
            self.log_wal(WalRecord::Upsert {
                db_id,
                id,
                vector: vector.to_vec(),
                document: document.to_vec(),
            })?;
        }
        self.record_mutation(CounterId::Upserts, 1, started, &outcome, db_id);
        Ok(outcome)
    }

    /// The body of [`ReisSystem::upsert`], minus WAL logging.
    pub(crate) fn upsert_inner(
        &mut self,
        db_id: u32,
        id: u32,
        vector: &[f32],
        document: &[u8],
    ) -> Result<MutationOutcome> {
        let db = self
            .databases
            .get_mut(&db_id)
            .ok_or(ReisError::DatabaseNotDeployed(db_id))?;
        let (centroid_pages, centroids) = if db.is_ivf() {
            (db.layout.centroid_pages, db.layout.centroids)
        } else {
            (0, 0)
        };
        let (latency, pages_programmed, tombstoned) =
            mutate::upsert_entry(&mut self.controller, db, id, vector, document)?;
        // A revival of a deleted id writes no tombstone, so it costs none.
        let mut overhead = self.perf.append_overhead(1, centroid_pages, centroids);
        if tombstoned {
            overhead += self.perf.tombstone_overhead();
        }
        let compaction = self.maybe_auto_compact(db_id)?;
        Ok(MutationOutcome {
            ids: vec![id],
            latency: latency + overhead,
            pages_programmed,
            compaction,
        })
    }

    /// Compact a database now: fold its append segments and tombstones into
    /// a densely packed base region, swap the R-DB record and erase every
    /// block the rewrite freed completely. Search results are unchanged by
    /// compaction; only the scan cost shrinks back to the dense layout's.
    ///
    /// # Errors
    ///
    /// * [`ReisError::DatabaseNotDeployed`] for an unknown database.
    /// * Flash/allocator errors if the device cannot hold the old and new
    ///   generation simultaneously during the rewrite.
    pub fn compact(&mut self, db_id: u32) -> Result<CompactionOutcome> {
        let started = self.telemetry.is_enabled().then(Instant::now);
        let outcome = self.compact_inner(db_id)?;
        self.log_wal(WalRecord::Compact { db_id })?;
        if self.telemetry.is_enabled() {
            self.record_compaction(&outcome, started.map(|t0| t0.elapsed().as_nanos() as u64));
            self.publish_gauges(db_id);
        }
        Ok(outcome)
    }

    /// The body of [`ReisSystem::compact`], minus WAL logging. Also the
    /// compaction the auto-compaction policy triggers: a policy-driven
    /// compaction is *derived* state, re-derived identically during WAL
    /// replay, so only explicitly requested compactions are logged.
    pub(crate) fn compact_inner(&mut self, db_id: u32) -> Result<CompactionOutcome> {
        let db = self
            .databases
            .get_mut(&db_id)
            .ok_or(ReisError::DatabaseNotDeployed(db_id))?;
        mutate::compact(&mut self.controller, db)
    }

    /// Append one mutation record to the open WAL epoch, if a durable store
    /// is attached (no-op otherwise — including during WAL replay, which
    /// runs before the store is re-attached). An I/O failure here surfaces
    /// as an error *after* the in-memory mutation applied; the next
    /// successful [`ReisSystem::save`] re-establishes durability.
    pub(crate) fn log_wal(&mut self, record: WalRecord) -> Result<()> {
        if let Some(durability) = self.durability.as_mut() {
            durability.append(&record)?;
        }
        Ok(())
    }

    /// Run the configured [`CompactionPolicy`](reis_update::CompactionPolicy)
    /// against a database's current shape, compacting if it says so.
    pub(crate) fn maybe_auto_compact(&mut self, db_id: u32) -> Result<Option<CompactionOutcome>> {
        let db = self
            .databases
            .get(&db_id)
            .ok_or(ReisError::DatabaseNotDeployed(db_id))?;
        let store = &db.updates.store;
        let dead = db.updates.tombstones.dead_count() + (store.len() - store.live_count());
        let should = self.config.compaction.should_compact(
            db.entries(),
            store.len(),
            dead,
            db.live_entries(),
            db.updates.stats.mutations(),
        );
        if should {
            Ok(Some(self.compact_inner(db_id)?))
        } else {
            Ok(None)
        }
    }

    /// Record one completed mutation: its counter, wall-clock and modelled
    /// latencies, any compaction it triggered, and the refreshed update
    /// gauges. No-op when telemetry is disabled.
    fn record_mutation(
        &self,
        counter: CounterId,
        entries: u64,
        started: Option<Instant>,
        outcome: &MutationOutcome,
        db_id: u32,
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.count(counter, entries);
        if let Some(t0) = started {
            self.telemetry
                .observe(HistogramId::MutationWallNs, t0.elapsed().as_nanos() as u64);
        }
        self.telemetry
            .observe(HistogramId::MutationModelledNs, outcome.latency.as_nanos());
        if let Some(compaction) = &outcome.compaction {
            // Auto-triggered: the wall clock is folded into the mutation's.
            self.record_compaction(compaction, None);
        }
        self.publish_gauges(db_id);
    }

    /// Record one compaction pass (explicit or policy-triggered).
    fn record_compaction(&self, outcome: &CompactionOutcome, wall_ns: Option<u64>) {
        self.telemetry.count(CounterId::Compactions, 1);
        self.telemetry.count(
            CounterId::CompactionPagesRewritten,
            outcome.pages_rewritten as u64,
        );
        self.telemetry.count(
            CounterId::CompactionBlocksReclaimed,
            outcome.blocks_reclaimed as u64,
        );
        if let Some(ns) = wall_ns {
            self.telemetry.observe(HistogramId::CompactionWallNs, ns);
        }
    }

    /// Refresh the update-state gauges (segment entries, tombstones) of a
    /// database plus the deployment gauge.
    fn publish_gauges(&self, db_id: u32) {
        if let Some(db) = self.databases.get(&db_id) {
            db.updates.publish_telemetry(&self.telemetry);
        }
        self.telemetry
            .gauge_set(GaugeId::DatabasesDeployed, self.databases.len() as u64);
    }

    /// Single-query execution. When the configured [`ScanParallelism`] is
    /// the constructor default (sequential) and no batch is in flight —
    /// which is always true here, since batches run through
    /// [`ReisSystem::search_batch`] — the fine scan is auto-sharded across
    /// up to `available_parallelism` channel/die workers: a latency-only
    /// optimization whose results, activity and modelled latency are
    /// bit-identical to the sequential scan. Adapting scans shard too —
    /// their windowed threshold schedule is a pure function of page order,
    /// so even the transferred-entry counts are machine-invariant (see
    /// [`AdaptiveFiltering`](crate::config::AdaptiveFiltering)). An
    /// explicitly configured parallelism — including
    /// [`ScanParallelism::pinned_sequential`] — is used as-is.
    fn run_query(
        &mut self,
        db_id: u32,
        query: &[f32],
        k: usize,
        nprobe: Option<usize>,
    ) -> Result<SearchOutcome> {
        let db = self
            .databases
            .get(&db_id)
            .ok_or(ReisError::DatabaseNotDeployed(db_id))?;
        let mut config = self.config;
        if config.scan_parallelism.is_auto_default() {
            config.scan_parallelism = ScanParallelism::sharded(self.auto_shards);
        }
        execute_query(
            &config,
            &mut self.controller,
            &self.perf,
            &self.energy,
            &mut self.scratch,
            &self.sched,
            db,
            query,
            k,
            nprobe,
            &self.telemetry,
            "search",
        )
    }

    /// `Search` over a whole batch of independent queries.
    ///
    /// By default ([`BatchFusion::Fused`]) the batch executes page-major on
    /// the *shared* device: the union of the batch's probed pages is
    /// computed up front, each distinct page is sensed once, and the fused
    /// multi-query kernel scores it against every query whose selection
    /// covers it — the same sense-amortization REIS applies to in-flight
    /// query batches. The fused pass additionally shards across up to
    /// `workers` (capped at the host's parallelism) channel/die workers —
    /// adaptive scans included, chunked at their window barriers — and
    /// per-query results, documents, activity and
    /// modelled latency/energy are bit-identical to running
    /// [`ReisSystem::search`] sequentially; only the device-level sense
    /// count (and the wall clock) shrinks. The physical scan activity is
    /// folded into the primary controller with each page counted as sensed
    /// once.
    ///
    /// With [`BatchFusion::Replicas`] (or when the embedding regions are
    /// not error-free to read) the pre-fusion path runs instead: up to
    /// `workers` threads each own a copy-on-write replica of the device and
    /// execute their chunk of queries independently, re-sensing every page
    /// per query; the workers' flash, DRAM and ECC activity is merged back
    /// into the primary controller afterwards. Either way, only the raw
    /// error-injection statistics may differ from the sequential run, since
    /// TLC rerank reads draw from different points of the error stream.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::search`]; the first failing query's
    /// error (in query order) is returned.
    pub fn search_batch(
        &mut self,
        db_id: u32,
        queries: &[Vec<f32>],
        k: usize,
        workers: usize,
    ) -> Result<Vec<SearchOutcome>> {
        self.run_batch(db_id, queries, k, None, workers)
    }

    /// `IVF_Search` over a batch of independent queries with a target
    /// recall, executed in parallel across up to `workers` threads (see
    /// [`ReisSystem::search_batch`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::ivf_search`].
    pub fn ivf_search_batch(
        &mut self,
        db_id: u32,
        queries: &[Vec<f32>],
        k: usize,
        target_recall: f64,
        workers: usize,
    ) -> Result<Vec<SearchOutcome>> {
        let nlist = self.database(db_id)?.rivf.len();
        if nlist == 0 {
            return Err(ReisError::UnsupportedSearch(
                "IVF_Search requires an IVF deployment".into(),
            ));
        }
        let nprobe = Self::nprobe_for_recall(nlist, target_recall);
        self.run_batch(db_id, queries, k, Some(nprobe), workers)
    }

    /// IVF batch search with an explicit `nprobe` (see
    /// [`ReisSystem::search_batch`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::ivf_search_with_nprobe`].
    pub fn ivf_search_batch_with_nprobe(
        &mut self,
        db_id: u32,
        queries: &[Vec<f32>],
        k: usize,
        nprobe: usize,
        workers: usize,
    ) -> Result<Vec<SearchOutcome>> {
        if self.database(db_id)?.rivf.is_empty() {
            return Err(ReisError::UnsupportedSearch(
                "IVF_Search requires an IVF deployment".into(),
            ));
        }
        self.run_batch(db_id, queries, k, Some(nprobe), workers)
    }

    fn run_batch(
        &mut self,
        db_id: u32,
        queries: &[Vec<f32>],
        k: usize,
        nprobe: Option<usize>,
        workers: usize,
    ) -> Result<Vec<SearchOutcome>> {
        let db = self
            .databases
            .get(&db_id)
            .ok_or(ReisError::DatabaseNotDeployed(db_id))?;
        // Validate up front so a malformed query fails before threads spawn.
        let dim = db.binary_quantizer.dim();
        if let Some(bad) = queries.iter().find(|q| q.len() != dim) {
            return Err(ReisError::QueryDimensionMismatch {
                expected: dim,
                actual: bad.len(),
            });
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        self.telemetry.count(CounterId::Batches, 1);

        // Page-major fused execution on the shared device (the default):
        // every distinct probed page is sensed once and scored against all
        // covering queries; per-query outcomes are bit-identical to
        // sequential search. Exactness of the borrowed page reads requires
        // error-free embedding reads (ESP-SLC), the same gate the
        // intra-query shard path applies; otherwise — or when configured —
        // fall back to the per-worker replica path below.
        let embedding_scheme = self
            .controller
            .hybrid_policy()
            .scheme_for(RegionKind::BinaryEmbeddings);
        if self.config.batch_fusion == BatchFusion::Fused
            && self
                .controller
                .device()
                .read_is_error_free(embedding_scheme)
        {
            let shard_budget = workers.clamp(1, self.auto_shards.max(1));
            self.telemetry.count(CounterId::FusedBatches, 1);
            return fused::execute_batch_fused(
                &self.config,
                &mut self.controller,
                &self.perf,
                &self.energy,
                &mut self.scratch,
                &self.sched,
                db,
                queries,
                k,
                nprobe,
                shard_budget,
                &self.telemetry,
            );
        }

        let workers = workers.clamp(1, queries.len().max(1));
        if workers == 1 {
            return queries
                .iter()
                .map(|query| {
                    execute_query(
                        &self.config,
                        &mut self.controller,
                        &self.perf,
                        &self.energy,
                        &mut self.scratch,
                        &self.sched,
                        db,
                        query,
                        k,
                        nprobe,
                        &self.telemetry,
                        "batch",
                    )
                })
                .collect();
        }

        // Latch contents are per-query scratch; dropping them first makes the
        // per-worker clones (copy-on-write over the flash blocks) nearly
        // free, so batch throughput scales with the worker count instead of
        // being dominated by device copies.
        self.controller.device_mut().clear_all_latches();
        let config = &self.config;
        let perf = &self.perf;
        let energy = &self.energy;
        let telemetry = &self.telemetry;
        let controller = &self.controller;
        let sched = &self.sched;
        let worker_scratch = &self.worker_scratch;
        let activity_before = controller.activity_snapshot();
        let chunk_len = queries.len().div_ceil(workers);

        // One replica worker's chunk: its own copy-on-write device replica,
        // a re-seeded error RNG (decorrelating the workers' injected error
        // streams, which would otherwise all replay the primary's) and the
        // scratch the caller hands it. No state is shared between queries
        // in flight; the chunking and the seed depend only on the worker
        // *number*, so both executors compute identical outcomes.
        let run_chunk = |worker: usize, chunk: &[Vec<f32>], scratch: &mut ScanScratch| {
            let mut replica = controller.clone();
            replica.device_mut().reseed_error_rng(
                0x9E37_79B9_7F4A_7C15 ^ activity_before.flash.page_reads ^ ((worker as u64) << 32),
            );
            let outcomes: Vec<Result<SearchOutcome>> = chunk
                .iter()
                .map(|query| {
                    execute_query(
                        config,
                        &mut replica,
                        perf,
                        energy,
                        scratch,
                        sched,
                        db,
                        query,
                        k,
                        nprobe,
                        telemetry,
                        "batch",
                    )
                })
                .collect();
            WorkerOutput {
                outcomes,
                activity: replica.activity_since(&activity_before),
            }
        };
        let run_chunk = &run_chunk;

        let mut worker_outputs: Vec<WorkerOutput> = match self.config.scan_executor {
            // Queue one task per chunk on the persistent pool. Each task
            // reuses its worker's long-lived scratch (warm buffers across
            // batches); when every slot is momentarily held — possible
            // while a waiting worker helps run a sibling chunk — it falls
            // back to a temporary scratch, which cannot affect results.
            ScanExecutor::Pooled => {
                let chunks: Vec<_> = queries.chunks(chunk_len).enumerate().collect();
                let mut outputs: Vec<Option<WorkerOutput>> =
                    (0..chunks.len()).map(|_| None).collect();
                sched
                    .scope(|scope| {
                        for ((worker, chunk), output) in chunks.into_iter().zip(outputs.iter_mut())
                        {
                            scope.spawn(move |ctx| {
                                let mut guard = worker_scratch.acquire(ctx);
                                let mut temp;
                                let scratch: &mut ScanScratch = match guard.as_deref_mut() {
                                    Some(slot) => slot,
                                    None => {
                                        temp = ScanScratch::new();
                                        &mut temp
                                    }
                                };
                                *output = Some(run_chunk(worker, chunk, scratch));
                            });
                        }
                    })
                    .map_err(|panic| ReisError::WorkerPanic(panic.message))?;
                outputs
                    .into_iter()
                    .map(|output| output.expect("scope waits for every chunk task"))
                    .collect()
            }
            ScanExecutor::SpawnScoped => std::thread::scope(|scope| {
                let handles: Vec<_> = queries
                    .chunks(chunk_len)
                    .enumerate()
                    .map(|(worker, chunk)| {
                        scope.spawn(move || {
                            let mut scratch = ScanScratch::new();
                            run_chunk(worker, chunk, &mut scratch)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch worker panicked"))
                    .collect()
            }),
        };

        // Merge every worker's flash, DRAM and ECC activity into the primary
        // controller before surfacing any per-query error: even a failing
        // batch performed real work on the replicas, and the primary's
        // counters stay authoritative for monitoring.
        for output in &worker_outputs {
            self.controller.absorb_activity(&output.activity);
        }

        let mut outcomes = Vec::with_capacity(queries.len());
        for output in worker_outputs.drain(..) {
            for outcome in output.outcomes {
                outcomes.push(outcome?);
            }
        }
        Ok(outcomes)
    }
}

/// Per-worker products of one batch-search chunk: the query outcomes plus
/// the controller-activity delta to merge back into the primary.
struct WorkerOutput {
    outcomes: Vec<Result<SearchOutcome>>,
    activity: ControllerActivity,
}

/// Execute one query against a deployed database on the given controller.
///
/// This is the shared body of the sequential and batched search paths: the
/// caller supplies the controller (the system's own, or a per-worker
/// replica) and the [`ScanScratch`] to reuse.
#[allow(clippy::too_many_arguments)]
fn execute_query(
    config: &ReisConfig,
    controller: &mut SsdController,
    perf: &PerfModel,
    energy: &EnergyModel,
    scratch: &mut ScanScratch,
    pool: &WorkerPool,
    db: &DeployedDatabase,
    query: &[f32],
    k: usize,
    nprobe: Option<usize>,
    telemetry: &Telemetry,
    kind: &'static str,
) -> Result<SearchOutcome> {
    let dim = db.binary_quantizer.dim();
    if query.len() != dim {
        return Err(ReisError::QueryDimensionMismatch {
            expected: dim,
            actual: query.len(),
        });
    }
    let query_binary = db.binary_quantizer.quantize(query)?;
    let query_int8 = db.int8_quantizer.quantize(query)?;

    // Arm the scratch-side telemetry capture. Recording into the log
    // happens at barrier/scan-end points on the driving thread and only
    // *reads* counts the engine computed anyway, so execution is identical
    // with telemetry on and off.
    let enabled = telemetry.is_enabled();
    scratch.record_windows = enabled;
    scratch.window_log.clear();
    scratch.explain_log = (enabled && telemetry.explain_armed()).then(Vec::new);
    scratch.explain_window = 0;
    let mut walls = StageWalls::default();
    let mut mark = enabled.then(Instant::now);

    let stats_before = *controller.device().stats();
    let dram_before = controller.dram().bytes_read() + controller.dram().bytes_written();

    let mut engine = InStorageEngine::new(controller, *config, scratch, pool);
    engine.broadcast_query(db, &query_binary)?;
    stamp(&mut mark, &mut walls.broadcast);

    let (clusters, coarse_counts) = match nprobe {
        Some(nprobe) => {
            let (clusters, counts) = engine.coarse_search(db, nprobe)?;
            (Some(clusters), counts)
        }
        None => (None, Default::default()),
    };
    stamp(&mut mark, &mut walls.coarse);

    let candidate_count = engine.rerank_candidates(k);
    let fine_counts =
        engine.fine_search(db, &query_binary, clusters.as_deref(), candidate_count)?;
    stamp(&mut mark, &mut walls.fine);
    let num_candidates = engine.num_candidates();
    let (results, int8_pages) = engine.rerank(db, &query_int8, k)?;
    stamp(&mut mark, &mut walls.rerank);
    let documents = engine.fetch_documents(db, &results)?;
    stamp(&mut mark, &mut walls.doc_fetch);

    let activity = engine.activity(
        db,
        coarse_counts,
        fine_counts,
        num_candidates,
        int8_pages,
        results.len(),
        dim,
    );
    let latency = perf.query_latency(&activity, k);
    let core_busy = perf.core_busy(&activity, k);
    let flash_stats = controller.device().stats().delta_since(&stats_before);
    let dram_bytes =
        controller.dram().bytes_read() + controller.dram().bytes_written() - dram_before;
    let energy = energy.query_energy(&flash_stats, dram_bytes, core_busy, latency.total());

    let outcome = SearchOutcome {
        results,
        documents,
        latency,
        activity,
        energy,
        flash_stats,
    };
    if enabled {
        let window_log = std::mem::take(&mut scratch.window_log);
        let explain_log = scratch.explain_log.take();
        record_query_telemetry(telemetry, kind, &walls, &window_log, explain_log, &outcome);
        scratch.window_log = window_log;
    }
    Ok(outcome)
}

/// Wall-clock nanoseconds of each query stage (all zero when telemetry is
/// disabled or a stage did not run on this path).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct StageWalls {
    pub(crate) broadcast: u64,
    pub(crate) coarse: u64,
    pub(crate) fine: u64,
    pub(crate) rerank: u64,
    pub(crate) doc_fetch: u64,
}

/// Advance a stage-timing mark: store the elapsed nanoseconds since the
/// previous mark and restart the clock. No-op when timing is off.
pub(crate) fn stamp(mark: &mut Option<Instant>, out: &mut u64) {
    if let Some(t0) = mark {
        *out = t0.elapsed().as_nanos() as u64;
        *mark = Some(Instant::now());
    }
}

/// Record one completed query into the telemetry handle: lifecycle
/// counters, wall/modelled histograms, the trace-ring span record and the
/// explain trace if one was armed. Shared by the sequential/replica path
/// ([`execute_query`]) and the fused batch executor. No-op when disabled.
pub(crate) fn record_query_telemetry(
    telemetry: &Telemetry,
    kind: &'static str,
    walls: &StageWalls,
    window_log: &[u64],
    explain_log: Option<Vec<ExplainEvent>>,
    outcome: &SearchOutcome,
) {
    if !telemetry.is_enabled() {
        return;
    }
    let activity = &outcome.activity;
    let latency = &outcome.latency;
    telemetry.count(CounterId::Queries, 1);
    telemetry.count(CounterId::CoarsePages, activity.coarse_pages as u64);
    telemetry.count(CounterId::FinePages, activity.fine_pages as u64);
    telemetry.count(CounterId::FineEntries, activity.fine_entries as u64);
    telemetry.count(CounterId::FineWindows, activity.fine_windows as u64);
    telemetry.count(
        CounterId::RerankCandidates,
        activity.rerank_candidates as u64,
    );
    telemetry.count(CounterId::DocumentsFetched, activity.documents as u64);
    telemetry.count(CounterId::FlashSenses, outcome.flash_stats.page_reads);
    for &entries in window_log {
        telemetry.count(CounterId::WindowEntries, entries);
        telemetry.observe(HistogramId::WindowEntriesPerWindow, entries);
    }
    let wall_total = walls.broadcast + walls.coarse + walls.fine + walls.rerank + walls.doc_fetch;
    telemetry.observe(HistogramId::QueryWallNs, wall_total);
    telemetry.observe(HistogramId::QueryModelledNs, latency.total().as_nanos());
    telemetry.observe(
        HistogramId::CoarseModelledNs,
        latency.coarse_scan.as_nanos(),
    );
    telemetry.observe(HistogramId::FineModelledNs, latency.fine_scan.as_nanos());
    telemetry.observe(HistogramId::RerankModelledNs, latency.rerank.as_nanos());
    telemetry.observe(
        HistogramId::DocFetchModelledNs,
        latency.document_fetch.as_nanos(),
    );
    let sequence = telemetry.next_sequence();
    telemetry.record_trace(QueryTrace {
        sequence,
        kind,
        spans: vec![
            span("broadcast", walls.broadcast, latency.input_broadcast),
            span("coarse_scan", walls.coarse, latency.coarse_scan),
            span("fine_scan", walls.fine, latency.fine_scan),
            span("select", 0, latency.select),
            span("rerank", walls.rerank, latency.rerank),
            span("doc_fetch", walls.doc_fetch, latency.document_fetch),
            span("host_transfer", 0, latency.host_transfer),
        ],
    });
    if let Some(events) = explain_log {
        telemetry.record_explain(ExplainTrace { sequence, events });
    }
}

/// A lifecycle span with both clocks (see [`reis_telemetry::Span`]).
fn span(stage: &'static str, wall_ns: u64, modelled: Nanos) -> Span {
    Span {
        stage,
        index: 0,
        wall_ns,
        modelled_ns: modelled.as_nanos(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;
    use reis_ann::flat::FlatIndex;
    use reis_ann::metrics::recall_at_k;
    use reis_ann::Metric;

    fn clustered_vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
        // Eight well-separated pseudo-random clusters.
        (0..n)
            .map(|i| {
                let cluster = i % 8;
                (0..dim)
                    .map(|d| {
                        let center = (((cluster * 37 + d * 11) % 19) as f32 - 9.0) / 2.0;
                        let jitter = (((i * 13 + d * 7) % 11) as f32 - 5.0) / 25.0;
                        center + jitter
                    })
                    .collect()
            })
            .collect()
    }

    fn documents(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("document {i}").into_bytes())
            .collect()
    }

    fn deploy_flat(system: &mut ReisSystem, n: usize, dim: usize) -> (u32, Vec<Vec<f32>>) {
        let vectors = clustered_vectors(n, dim);
        let db = VectorDatabase::flat(&vectors, documents(n)).unwrap();
        let id = system.deploy(&db).unwrap();
        (id, vectors)
    }

    fn deploy_ivf(
        system: &mut ReisSystem,
        n: usize,
        dim: usize,
        nlist: usize,
    ) -> (u32, Vec<Vec<f32>>) {
        let vectors = clustered_vectors(n, dim);
        let db = VectorDatabase::ivf(&vectors, documents(n), nlist).unwrap();
        let id = system.deploy(&db).unwrap();
        (id, vectors)
    }

    #[test]
    fn brute_force_search_returns_the_query_itself_and_its_document() {
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_flat(&mut system, 96, 64);
        let outcome = system.search(id, &vectors[17], 5).unwrap();
        assert_eq!(outcome.results.len(), 5);
        assert_eq!(
            outcome.results[0].id, 17,
            "an indexed vector is its own nearest neighbor"
        );
        assert_eq!(outcome.documents[0], b"document 17");
        assert!(outcome.total_latency() > Nanos::ZERO);
        assert!(outcome.energy.total_j() > 0.0);
        assert!(outcome.qps() > 0.0);
        assert!(outcome.qps_per_watt() > 0.0);
        assert!(outcome.flash_stats.page_reads > 0);
        assert_eq!(outcome.activity.coarse_pages, 0);
        // A brute-force search scans every embedding page of the database.
        let expected_pages = system.database(id).unwrap().layout.embedding_pages;
        assert_eq!(outcome.activity.fine_pages, expected_pages);
    }

    #[test]
    fn ivf_search_matches_brute_force_recall_on_clustered_data() {
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_ivf(&mut system, 160, 64, 8);
        let flat = FlatIndex::new(vectors.clone(), Metric::SquaredL2).unwrap();
        let mut recall = 0.0;
        let queries = 8usize;
        for q in 0..queries {
            let query = &vectors[q * 19];
            let truth: Vec<usize> = flat
                .search(query, 10)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            let outcome = system.ivf_search_with_nprobe(id, query, 10, 8).unwrap();
            recall += recall_at_k(&outcome.result_ids(), &truth, 10);
        }
        recall /= queries as f64;
        assert!(recall > 0.8, "in-storage IVF recall@10 = {recall}");
    }

    #[test]
    fn probing_fewer_clusters_scans_fewer_pages() {
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_ivf(&mut system, 200, 64, 10);
        let query = &vectors[3];
        let narrow = system.ivf_search_with_nprobe(id, query, 10, 1).unwrap();
        let wide = system.ivf_search_with_nprobe(id, query, 10, 10).unwrap();
        assert!(narrow.activity.fine_pages < wide.activity.fine_pages);
        assert!(narrow.total_latency() < wide.total_latency());
        assert!(narrow.activity.coarse_pages > 0);
    }

    #[test]
    fn distance_filtering_reduces_transferred_entries_without_losing_the_top_hit() {
        let config_df = ReisConfig::tiny();
        let config_nodf = ReisConfig::tiny().with_optimizations(Optimizations::none());
        let mut with_df = ReisSystem::new(config_df);
        let mut without_df = ReisSystem::new(config_nodf);
        let vectors = clustered_vectors(120, 64);
        let db = VectorDatabase::flat(&vectors, documents(120)).unwrap();
        let id_a = with_df.deploy(&db).unwrap();
        let id_b = without_df.deploy(&db).unwrap();
        let query = &vectors[33];
        let a = with_df.search(id_a, query, 5).unwrap();
        let b = without_df.search(id_b, query, 5).unwrap();
        assert!(a.activity.fine_entries < b.activity.fine_entries);
        assert_eq!(a.results[0].id, 33);
        assert_eq!(b.results[0].id, 33);
    }

    #[test]
    fn searches_validate_inputs() {
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_flat(&mut system, 32, 64);
        assert!(matches!(
            system.search(99, &vectors[0], 5),
            Err(ReisError::DatabaseNotDeployed(99))
        ));
        assert!(matches!(
            system.search(id, &vectors[0][..10], 5),
            Err(ReisError::QueryDimensionMismatch { .. })
        ));
        assert!(matches!(
            system.ivf_search(id, &vectors[0], 5, 0.94),
            Err(ReisError::UnsupportedSearch(_))
        ));
    }

    #[test]
    fn search_batch_matches_sequential_search_for_any_worker_count() {
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_flat(&mut system, 96, 64);
        let queries: Vec<Vec<f32>> = (0..7).map(|q| vectors[q * 11].clone()).collect();
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| system.search(id, q, 5).unwrap())
            .collect();
        for workers in [1usize, 2, 3, 8] {
            let batch = system.search_batch(id, &queries, 5, workers).unwrap();
            assert_eq!(batch.len(), sequential.len());
            for (b, s) in batch.iter().zip(&sequential) {
                assert_eq!(b.result_ids(), s.result_ids(), "workers {workers}");
                assert_eq!(b.documents, s.documents, "workers {workers}");
                assert_eq!(b.latency, s.latency, "workers {workers}");
                assert_eq!(b.activity, s.activity, "workers {workers}");
            }
        }
    }

    #[test]
    fn ivf_search_batch_matches_sequential_and_merges_stats() {
        // Replica mode: every query re-senses its own pages, so the merged
        // device delta equals the per-query sum exactly.
        let config = ReisConfig::tiny().with_batch_fusion(crate::config::BatchFusion::Replicas);
        let mut system = ReisSystem::new(config);
        let (id, vectors) = deploy_ivf(&mut system, 160, 64, 8);
        let queries: Vec<Vec<f32>> = (0..6).map(|q| vectors[q * 19].clone()).collect();
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| system.ivf_search_with_nprobe(id, q, 10, 4).unwrap())
            .collect();
        let before = *system.controller().device().stats();
        let batch = system
            .ivf_search_batch_with_nprobe(id, &queries, 10, 4, 3)
            .unwrap();
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(b.result_ids(), s.result_ids());
            assert_eq!(b.documents, s.documents);
        }
        // The workers' flash activity is folded back into the primary device.
        let delta = system.controller().device().stats().delta_since(&before);
        let per_query: u64 = batch.iter().map(|o| o.flash_stats.page_reads).sum();
        assert_eq!(delta.page_reads, per_query);
        assert!(delta.page_reads > 0);
    }

    #[test]
    fn fused_batch_amortizes_senses_but_reports_per_query_activity() {
        // Fused mode (the default): per-query outcomes are unchanged, but
        // the device senses the shared pages once for the whole batch, so
        // the merged delta is strictly below the per-query sum.
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_ivf(&mut system, 160, 64, 8);
        let queries: Vec<Vec<f32>> = (0..6).map(|q| vectors[q * 19].clone()).collect();
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| system.ivf_search_with_nprobe(id, q, 10, 4).unwrap())
            .collect();
        let before = *system.controller().device().stats();
        let batch = system
            .ivf_search_batch_with_nprobe(id, &queries, 10, 4, 3)
            .unwrap();
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(b.result_ids(), s.result_ids());
            assert_eq!(b.documents, s.documents);
            assert_eq!(b.latency, s.latency);
            assert_eq!(b.activity, s.activity);
        }
        let delta = system.controller().device().stats().delta_since(&before);
        let per_query: u64 = batch.iter().map(|o| o.flash_stats.page_reads).sum();
        assert!(
            delta.page_reads < per_query,
            "fused batch sensed {} pages, per-query accounting says {}",
            delta.page_reads,
            per_query
        );
        // The in-plane compute is not amortized: one XOR per (page, query).
        let per_query_xor: u64 = batch.iter().map(|o| o.flash_stats.xor_ops).sum();
        assert_eq!(delta.xor_ops, per_query_xor);
        assert!(delta.page_reads > 0);
    }

    #[test]
    fn batch_searches_validate_inputs() {
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_flat(&mut system, 32, 64);
        assert!(matches!(
            system.search_batch(99, &[vectors[0].clone()], 5, 2),
            Err(ReisError::DatabaseNotDeployed(99))
        ));
        assert!(matches!(
            system.search_batch(id, &[vectors[0][..10].to_vec()], 5, 2),
            Err(ReisError::QueryDimensionMismatch { .. })
        ));
        assert!(matches!(
            system.ivf_search_batch(id, &[vectors[0].clone()], 5, 0.94, 2),
            Err(ReisError::UnsupportedSearch(_))
        ));
        assert!(system.search_batch(id, &[], 5, 4).unwrap().is_empty());
    }

    /// Equality of everything a query computes. The raw
    /// `injected_bit_errors` counter is exempt: it reflects the device RNG's
    /// position, which depends on the *history* of TLC reads on that device,
    /// not on how the scan of the compared query was parallelized (the batch
    /// path documents the same exemption for its worker replicas).
    fn assert_outcome_eq(a: &SearchOutcome, b: &SearchOutcome, ctx: &str) {
        assert_eq!(a.results, b.results, "results: {ctx}");
        assert_eq!(a.documents, b.documents, "documents: {ctx}");
        assert_eq!(a.latency, b.latency, "latency: {ctx}");
        assert_eq!(a.activity, b.activity, "activity: {ctx}");
        assert_eq!(a.energy, b.energy, "energy: {ctx}");
        let mut fa = a.flash_stats;
        let mut fb = b.flash_stats;
        fa.injected_bit_errors = 0;
        fb.injected_bit_errors = 0;
        assert_eq!(fa, fb, "flash stats: {ctx}");
    }

    #[test]
    fn sharded_scan_is_bit_identical_to_sequential() {
        let vectors = clustered_vectors(160, 64);
        let db = VectorDatabase::ivf(&vectors, documents(160), 8).unwrap();
        for shards in [2usize, 3, 4, 8] {
            // Fresh systems per shard count so both devices see the same
            // query history; everything including the raw error-injection
            // stream must then agree. This test pins static thresholds; the
            // adaptive (windowed) counterpart lives in
            // `crates/core/tests/adaptive.rs`.
            let mut sequential = ReisSystem::new(ReisConfig::tiny().with_adaptive_filtering(false));
            let seq_id = sequential.deploy(&db).unwrap();
            let config = ReisConfig::tiny()
                .with_adaptive_filtering(false)
                .with_scan_parallelism(
                    crate::config::ScanParallelism::sharded(shards).with_min_pages_per_shard(1),
                );
            let mut system = ReisSystem::new(config);
            let id = system.deploy(&db).unwrap();
            for q in [0usize, 19, 57] {
                let query = &vectors[q];
                let a = sequential.search(seq_id, query, 10).unwrap();
                let b = system.search(id, query, 10).unwrap();
                assert_eq!(a, b, "brute force, {shards} shards, query {q}");
                let a = sequential
                    .ivf_search_with_nprobe(seq_id, query, 10, 4)
                    .unwrap();
                let b = system.ivf_search_with_nprobe(id, query, 10, 4).unwrap();
                assert_eq!(a, b, "ivf, {shards} shards, query {q}");
            }
        }
    }

    #[test]
    fn scan_parallelism_is_reconfigurable_at_runtime() {
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_flat(&mut system, 96, 64);
        let baseline = system.search(id, &vectors[11], 5).unwrap();
        system.set_scan_parallelism(
            crate::config::ScanParallelism::sharded(4).with_min_pages_per_shard(1),
        );
        let sharded = system.search(id, &vectors[11], 5).unwrap();
        assert_outcome_eq(&baseline, &sharded, "sharded after reconfigure");
        system.set_scan_parallelism(crate::config::ScanParallelism::pinned_sequential());
        let again = system.search(id, &vectors[11], 5).unwrap();
        assert_outcome_eq(&again, &baseline, "sequential after reconfigure");
    }

    #[test]
    fn batch_workers_compose_with_intra_query_shards() {
        // Pin the replica batch path: this test is about replica workers
        // each driving their own intra-query shards (fused composition is
        // covered by the fused test suite).
        let config = ReisConfig::tiny()
            .with_batch_fusion(crate::config::BatchFusion::Replicas)
            .with_adaptive_filtering(false)
            .with_scan_parallelism(
                crate::config::ScanParallelism::sharded(2).with_min_pages_per_shard(1),
            );
        let mut system = ReisSystem::new(config);
        let (id, vectors) = deploy_flat(&mut system, 96, 64);
        let queries: Vec<Vec<f32>> = (0..5).map(|q| vectors[q * 13].clone()).collect();
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| system.search(id, q, 5).unwrap())
            .collect();
        let batch = system.search_batch(id, &queries, 5, 3).unwrap();
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(b.result_ids(), s.result_ids());
            assert_eq!(b.documents, s.documents);
            assert_eq!(b.latency, s.latency);
            assert_eq!(b.activity, s.activity);
        }
    }

    #[test]
    fn auto_sharded_default_search_matches_forced_sequential() {
        // The constructor default is ScanParallelism::sequential(), which
        // single-query search upgrades to sharded(available_parallelism).
        // A config that pins the scan sequential (one shard, unreachable
        // minimum) must produce bit-identical outcomes on every machine.
        let vectors = clustered_vectors(160, 64);
        let db = VectorDatabase::ivf(&vectors, documents(160), 8).unwrap();
        let mut auto = ReisSystem::new(ReisConfig::tiny());
        let auto_id = auto.deploy(&db).unwrap();
        let pinned_config = ReisConfig::tiny()
            .with_scan_parallelism(crate::config::ScanParallelism::pinned_sequential());
        let mut pinned = ReisSystem::new(pinned_config);
        let pinned_id = pinned.deploy(&db).unwrap();
        for q in [0usize, 19, 57] {
            let query = &vectors[q];
            let a = auto.search(auto_id, query, 10).unwrap();
            let b = pinned.search(pinned_id, query, 10).unwrap();
            assert_eq!(a, b, "brute force, query {q}");
            let a = auto.ivf_search_with_nprobe(auto_id, query, 10, 4).unwrap();
            let b = pinned
                .ivf_search_with_nprobe(pinned_id, query, 10, 4)
                .unwrap();
            assert_eq!(a, b, "ivf, query {q}");
        }
    }

    #[test]
    fn default_adaptive_brute_force_keeps_topk_and_lowers_modelled_latency() {
        // Adaptive filtering is default-on for brute-force scans; against an
        // explicitly static system the top-k is identical while the
        // transferred entries — and with them the modelled latency — shrink.
        let vectors = clustered_vectors(150, 64);
        let db = VectorDatabase::flat(&vectors, documents(150)).unwrap();
        let mut adaptive = ReisSystem::new(ReisConfig::tiny());
        let adaptive_id = adaptive.deploy(&db).unwrap();
        let mut static_system = ReisSystem::new(ReisConfig::tiny().with_adaptive_filtering(false));
        let static_id = static_system.deploy(&db).unwrap();
        let query = &vectors[42];
        let a = adaptive.search(adaptive_id, query, 1).unwrap();
        let b = static_system.search(static_id, query, 1).unwrap();
        assert_eq!(a.results, b.results);
        assert_eq!(a.documents, b.documents);
        assert!(
            a.activity.fine_entries < b.activity.fine_entries,
            "adaptive transferred {} entries, static {}",
            a.activity.fine_entries,
            b.activity.fine_entries
        );
        assert!(
            a.total_latency() < b.total_latency(),
            "adaptive modelled latency {} should beat static {}",
            a.total_latency(),
            b.total_latency()
        );
        // IVF scans keep the static threshold under the default scope
        // (fresh systems — the tiny device cannot hold a second database).
        let ivf_db = VectorDatabase::ivf(&vectors, documents(150), 8).unwrap();
        let mut adaptive_ivf = ReisSystem::new(ReisConfig::tiny());
        let ivf_a = adaptive_ivf.deploy(&ivf_db).unwrap();
        let mut static_ivf = ReisSystem::new(ReisConfig::tiny().with_adaptive_filtering(false));
        let ivf_b = static_ivf.deploy(&ivf_db).unwrap();
        let x = adaptive_ivf
            .ivf_search_with_nprobe(ivf_a, query, 5, 4)
            .unwrap();
        let y = static_ivf
            .ivf_search_with_nprobe(ivf_b, query, 5, 4)
            .unwrap();
        assert_eq!(x.activity, y.activity);
    }

    #[test]
    fn mutation_latency_includes_controller_overheads() {
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_ivf(&mut system, 96, 64, 4);
        let fresh: Vec<f32> = (0..64).map(|d| (d % 5) as f32).collect();
        let insert = system.insert(id, &fresh, b"fresh".to_vec()).unwrap();
        let perf = PerfModel::new(*system.config());
        let db = system.database(id).unwrap();
        let overhead = perf.append_overhead(1, db.layout.centroid_pages, db.layout.centroids);
        assert!(overhead > Nanos::ZERO);
        assert!(insert.latency > overhead, "insert prices flash + overhead");
        // Deletes used to be modelled as free; they now cost the id-map
        // lookup and the DRAM tombstone write.
        let delete = system.delete(id, insert.ids[0]).unwrap();
        assert_eq!(delete.latency, perf.tombstone_overhead());
        assert!(delete.latency > Nanos::ZERO);
        let upsert = system
            .upsert(id, vectors.len() as u32 - 1, &fresh, b"updated")
            .unwrap();
        assert!(upsert.latency > overhead + perf.tombstone_overhead());
    }

    #[test]
    fn nprobe_mapping_is_monotone_in_recall() {
        let low = ReisSystem::nprobe_for_recall(16384, 0.90);
        let mid = ReisSystem::nprobe_for_recall(16384, 0.94);
        let high = ReisSystem::nprobe_for_recall(16384, 0.98);
        assert!(low < mid && mid < high);
        assert!(ReisSystem::nprobe_for_recall(4, 0.99) <= 4);
        assert_eq!(ReisSystem::nprobe_for_recall(0, 0.9), 1);
    }

    #[test]
    fn ssd2_serves_the_same_query_faster_than_ssd1_scaled_geometry() {
        // Use the two reference configurations on a small database; SSD2's
        // extra channels and planes must strictly reduce latency.
        let vectors = clustered_vectors(256, 1024);
        let db = VectorDatabase::ivf(&vectors, documents(256), 8).unwrap();
        let mut ssd1 = ReisSystem::new(ReisConfig::ssd1());
        let mut ssd2 = ReisSystem::new(ReisConfig::ssd2());
        let a = ssd1.deploy(&db).unwrap();
        let b = ssd2.deploy(&db).unwrap();
        let q = &vectors[5];
        let t1 = ssd1
            .ivf_search_with_nprobe(a, q, 10, 4)
            .unwrap()
            .total_latency();
        let t2 = ssd2
            .ivf_search_with_nprobe(b, q, 10, 4)
            .unwrap()
            .total_latency();
        assert!(t2 < t1, "REIS-SSD2 ({t2}) should beat REIS-SSD1 ({t1})");
    }
}
