//! The REIS system: the host-facing API of Table 1 on top of the in-storage
//! engine.
//!
//! [`ReisSystem`] owns the simulated SSD, deploys vector databases into it
//! (`DB_Deploy` / `IVF_Deploy`) and serves `Search` / `IVF_Search` requests,
//! returning both the retrieved documents and the modelled latency and
//! energy of each query.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use reis_ann::topk::Neighbor;
use reis_nand::{FlashStats, Nanos};
use reis_ssd::{SsdController, SsdMode};

use crate::config::ReisConfig;
use crate::database::VectorDatabase;
use crate::deploy::{self, DeployedDatabase};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::engine::InStorageEngine;
use crate::error::{ReisError, Result};
use crate::perf::{LatencyBreakdown, PerfModel, QueryActivity};

/// Result of one REIS search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The top-k results as `(original entry id, INT8 rerank distance)` in
    /// ascending distance order.
    pub results: Vec<Neighbor>,
    /// The retrieved document chunks, aligned with `results`.
    pub documents: Vec<Vec<u8>>,
    /// Per-phase latency of the query.
    pub latency: LatencyBreakdown,
    /// Activity counters (pages scanned, entries transferred, …).
    pub activity: QueryActivity,
    /// Energy breakdown of the query.
    pub energy: EnergyBreakdown,
    /// Flash operation counters attributable to the query.
    pub flash_stats: FlashStats,
}

impl SearchOutcome {
    /// End-to-end latency of the query.
    pub fn total_latency(&self) -> Nanos {
        self.latency.total()
    }

    /// Queries per second this query's latency corresponds to.
    pub fn qps(&self) -> f64 {
        let secs = self.total_latency().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            1.0 / secs
        }
    }

    /// Queries per second per watt (the energy-efficiency metric of Fig. 8).
    pub fn qps_per_watt(&self) -> f64 {
        let energy = self.energy.total_j();
        if energy <= 0.0 {
            0.0
        } else {
            1.0 / energy
        }
    }

    /// The original entry ids of the results, in rank order.
    pub fn result_ids(&self) -> Vec<usize> {
        self.results.iter().map(|n| n.id).collect()
    }
}

/// The REIS retrieval system.
#[derive(Debug)]
pub struct ReisSystem {
    config: ReisConfig,
    controller: SsdController,
    perf: PerfModel,
    energy: EnergyModel,
    databases: HashMap<u32, DeployedDatabase>,
    next_db_id: u32,
}

impl ReisSystem {
    /// Create a REIS system on a freshly initialised SSD.
    pub fn new(config: ReisConfig) -> Self {
        let mut controller = SsdController::new(config.ssd);
        controller.switch_mode(SsdMode::Rag);
        ReisSystem {
            config,
            controller,
            perf: PerfModel::new(config),
            energy: EnergyModel::default(),
            databases: HashMap::new(),
            next_db_id: 1,
        }
    }

    /// The configuration of this instance.
    pub fn config(&self) -> &ReisConfig {
        &self.config
    }

    /// Access to the underlying SSD controller (primarily for inspection in
    /// tests and benchmarks).
    pub fn controller(&self) -> &SsdController {
        &self.controller
    }

    /// The deployed database with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`ReisError::DatabaseNotDeployed`] for an unknown id.
    pub fn database(&self, db_id: u32) -> Result<&DeployedDatabase> {
        self.databases.get(&db_id).ok_or(ReisError::DatabaseNotDeployed(db_id))
    }

    /// Deploy a database (`DB_Deploy` for flat databases, `IVF_Deploy` when
    /// the database carries cluster information) and return its id.
    ///
    /// # Errors
    ///
    /// Propagates layout and capacity errors from the deployment path.
    pub fn deploy(&mut self, database: &VectorDatabase) -> Result<u32> {
        let db_id = self.next_db_id;
        let deployed = deploy::deploy(&mut self.controller, database, db_id)?;
        self.databases.insert(db_id, deployed);
        self.next_db_id += 1;
        Ok(db_id)
    }

    /// Map a target Recall@10 to an `nprobe` setting for a database with
    /// `nlist` clusters (the `R` parameter of `IVF_Search`). The mapping is
    /// the monotone heuristic the device uses when the host does not specify
    /// `nprobe` directly: ~2 % of the clusters at recall 0.90 rising to
    /// ~10 % at recall 0.98.
    pub fn nprobe_for_recall(nlist: usize, target_recall: f64) -> usize {
        let recall = target_recall.clamp(0.0, 1.0);
        let fraction = 0.02 + (recall - 0.90).max(0.0) * 1.0;
        ((nlist as f64 * fraction).ceil() as usize).clamp(1, nlist.max(1))
    }

    /// `Search(Q, Qid, Did, k)`: brute-force top-k search over the whole
    /// database.
    ///
    /// # Errors
    ///
    /// * [`ReisError::DatabaseNotDeployed`] for an unknown id.
    /// * [`ReisError::QueryDimensionMismatch`] for a query of the wrong
    ///   dimensionality.
    pub fn search(&mut self, db_id: u32, query: &[f32], k: usize) -> Result<SearchOutcome> {
        self.run_query(db_id, query, k, None)
    }

    /// `IVF_Search(Q, Qid, Did, k, R)`: IVF top-k search with a target
    /// recall, which the device maps to an `nprobe` value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::search`], plus
    /// [`ReisError::UnsupportedSearch`] if the database was deployed without
    /// cluster structure.
    pub fn ivf_search(
        &mut self,
        db_id: u32,
        query: &[f32],
        k: usize,
        target_recall: f64,
    ) -> Result<SearchOutcome> {
        let nlist = self.database(db_id)?.rivf.len();
        if nlist == 0 {
            return Err(ReisError::UnsupportedSearch(
                "IVF_Search requires an IVF deployment".into(),
            ));
        }
        let nprobe = Self::nprobe_for_recall(nlist, target_recall);
        self.run_query(db_id, query, k, Some(nprobe))
    }

    /// IVF top-k search with an explicit `nprobe` (used by benchmarks that
    /// calibrate `nprobe` against measured recall).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::ivf_search`].
    pub fn ivf_search_with_nprobe(
        &mut self,
        db_id: u32,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Result<SearchOutcome> {
        if self.database(db_id)?.rivf.is_empty() {
            return Err(ReisError::UnsupportedSearch(
                "IVF_Search requires an IVF deployment".into(),
            ));
        }
        self.run_query(db_id, query, k, Some(nprobe))
    }

    fn run_query(
        &mut self,
        db_id: u32,
        query: &[f32],
        k: usize,
        nprobe: Option<usize>,
    ) -> Result<SearchOutcome> {
        let db = self.databases.get(&db_id).ok_or(ReisError::DatabaseNotDeployed(db_id))?;
        let dim = db.binary_quantizer.dim();
        if query.len() != dim {
            return Err(ReisError::QueryDimensionMismatch { expected: dim, actual: query.len() });
        }
        let query_binary = db.binary_quantizer.quantize(query)?;
        let query_int8 = db.int8_quantizer.quantize(query)?;

        let stats_before = *self.controller.device().stats();
        let dram_before = self.controller.dram().bytes_read() + self.controller.dram().bytes_written();

        let mut engine = InStorageEngine::new(&mut self.controller, self.config);
        engine.broadcast_query(db, &query_binary)?;

        let (clusters, coarse_counts) = match nprobe {
            Some(nprobe) => {
                let (clusters, counts) = engine.coarse_search(db, nprobe)?;
                (Some(clusters), counts)
            }
            None => (None, Default::default()),
        };

        let candidate_count = engine.rerank_candidates(k);
        let (ttl, fine_counts) =
            engine.fine_search(db, &query_binary, clusters.as_deref(), candidate_count)?;
        let candidates = ttl.sorted_top(candidate_count);
        let (results, int8_pages) = engine.rerank(db, &query_int8, &candidates, k)?;
        let documents = engine.fetch_documents(db, &results)?;

        let activity = engine.activity(
            db,
            coarse_counts,
            fine_counts,
            candidates.len(),
            int8_pages,
            results.len(),
            dim,
        );
        let latency = self.perf.query_latency(&activity, k);
        let core_busy = self.perf.core_busy(&activity, k);
        let flash_stats = self.controller.device().stats().delta_since(&stats_before);
        let dram_bytes = self.controller.dram().bytes_read() + self.controller.dram().bytes_written()
            - dram_before;
        let energy =
            self.energy.query_energy(&flash_stats, dram_bytes, core_busy, latency.total());

        Ok(SearchOutcome { results, documents, latency, activity, energy, flash_stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;
    use reis_ann::flat::FlatIndex;
    use reis_ann::metrics::recall_at_k;
    use reis_ann::Metric;

    fn clustered_vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
        // Eight well-separated pseudo-random clusters.
        (0..n)
            .map(|i| {
                let cluster = i % 8;
                (0..dim)
                    .map(|d| {
                        let center = (((cluster * 37 + d * 11) % 19) as f32 - 9.0) / 2.0;
                        let jitter = (((i * 13 + d * 7) % 11) as f32 - 5.0) / 25.0;
                        center + jitter
                    })
                    .collect()
            })
            .collect()
    }

    fn documents(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("document {i}").into_bytes()).collect()
    }

    fn deploy_flat(system: &mut ReisSystem, n: usize, dim: usize) -> (u32, Vec<Vec<f32>>) {
        let vectors = clustered_vectors(n, dim);
        let db = VectorDatabase::flat(&vectors, documents(n)).unwrap();
        let id = system.deploy(&db).unwrap();
        (id, vectors)
    }

    fn deploy_ivf(system: &mut ReisSystem, n: usize, dim: usize, nlist: usize) -> (u32, Vec<Vec<f32>>) {
        let vectors = clustered_vectors(n, dim);
        let db = VectorDatabase::ivf(&vectors, documents(n), nlist).unwrap();
        let id = system.deploy(&db).unwrap();
        (id, vectors)
    }

    #[test]
    fn brute_force_search_returns_the_query_itself_and_its_document() {
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_flat(&mut system, 96, 64);
        let outcome = system.search(id, &vectors[17], 5).unwrap();
        assert_eq!(outcome.results.len(), 5);
        assert_eq!(outcome.results[0].id, 17, "an indexed vector is its own nearest neighbor");
        assert_eq!(outcome.documents[0], b"document 17");
        assert!(outcome.total_latency() > Nanos::ZERO);
        assert!(outcome.energy.total_j() > 0.0);
        assert!(outcome.qps() > 0.0);
        assert!(outcome.qps_per_watt() > 0.0);
        assert!(outcome.flash_stats.page_reads > 0);
        assert_eq!(outcome.activity.coarse_pages, 0);
        // A brute-force search scans every embedding page of the database.
        let expected_pages = system.database(id).unwrap().layout.embedding_pages;
        assert_eq!(outcome.activity.fine_pages, expected_pages);
    }

    #[test]
    fn ivf_search_matches_brute_force_recall_on_clustered_data() {
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_ivf(&mut system, 160, 64, 8);
        let flat = FlatIndex::new(vectors.clone(), Metric::SquaredL2).unwrap();
        let mut recall = 0.0;
        let queries = 8usize;
        for q in 0..queries {
            let query = &vectors[q * 19];
            let truth: Vec<usize> = flat.search(query, 10).unwrap().iter().map(|n| n.id).collect();
            let outcome = system.ivf_search_with_nprobe(id, query, 10, 8).unwrap();
            recall += recall_at_k(&outcome.result_ids(), &truth, 10);
        }
        recall /= queries as f64;
        assert!(recall > 0.8, "in-storage IVF recall@10 = {recall}");
    }

    #[test]
    fn probing_fewer_clusters_scans_fewer_pages() {
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_ivf(&mut system, 200, 64, 10);
        let query = &vectors[3];
        let narrow = system.ivf_search_with_nprobe(id, query, 10, 1).unwrap();
        let wide = system.ivf_search_with_nprobe(id, query, 10, 10).unwrap();
        assert!(narrow.activity.fine_pages < wide.activity.fine_pages);
        assert!(narrow.total_latency() < wide.total_latency());
        assert!(narrow.activity.coarse_pages > 0);
    }

    #[test]
    fn distance_filtering_reduces_transferred_entries_without_losing_the_top_hit() {
        let config_df = ReisConfig::tiny();
        let config_nodf = ReisConfig::tiny().with_optimizations(Optimizations::none());
        let mut with_df = ReisSystem::new(config_df);
        let mut without_df = ReisSystem::new(config_nodf);
        let vectors = clustered_vectors(120, 64);
        let db = VectorDatabase::flat(&vectors, documents(120)).unwrap();
        let id_a = with_df.deploy(&db).unwrap();
        let id_b = without_df.deploy(&db).unwrap();
        let query = &vectors[33];
        let a = with_df.search(id_a, query, 5).unwrap();
        let b = without_df.search(id_b, query, 5).unwrap();
        assert!(a.activity.fine_entries < b.activity.fine_entries);
        assert_eq!(a.results[0].id, 33);
        assert_eq!(b.results[0].id, 33);
    }

    #[test]
    fn searches_validate_inputs() {
        let mut system = ReisSystem::new(ReisConfig::tiny());
        let (id, vectors) = deploy_flat(&mut system, 32, 64);
        assert!(matches!(
            system.search(99, &vectors[0], 5),
            Err(ReisError::DatabaseNotDeployed(99))
        ));
        assert!(matches!(
            system.search(id, &vectors[0][..10], 5),
            Err(ReisError::QueryDimensionMismatch { .. })
        ));
        assert!(matches!(
            system.ivf_search(id, &vectors[0], 5, 0.94),
            Err(ReisError::UnsupportedSearch(_))
        ));
    }

    #[test]
    fn nprobe_mapping_is_monotone_in_recall() {
        let low = ReisSystem::nprobe_for_recall(16384, 0.90);
        let mid = ReisSystem::nprobe_for_recall(16384, 0.94);
        let high = ReisSystem::nprobe_for_recall(16384, 0.98);
        assert!(low < mid && mid < high);
        assert!(ReisSystem::nprobe_for_recall(4, 0.99) <= 4);
        assert_eq!(ReisSystem::nprobe_for_recall(0, 0.9), 1);
    }

    #[test]
    fn ssd2_serves_the_same_query_faster_than_ssd1_scaled_geometry() {
        // Use the two reference configurations on a small database; SSD2's
        // extra channels and planes must strictly reduce latency.
        let vectors = clustered_vectors(256, 1024);
        let db = VectorDatabase::ivf(&vectors, documents(256), 8).unwrap();
        let mut ssd1 = ReisSystem::new(ReisConfig::ssd1());
        let mut ssd2 = ReisSystem::new(ReisConfig::ssd2());
        let a = ssd1.deploy(&db).unwrap();
        let b = ssd2.deploy(&db).unwrap();
        let q = &vectors[5];
        let t1 = ssd1.ivf_search_with_nprobe(a, q, 10, 4).unwrap().total_latency();
        let t2 = ssd2.ivf_search_with_nprobe(b, q, 10, 4).unwrap().total_latency();
        assert!(t2 < t1, "REIS-SSD2 ({t2}) should beat REIS-SSD1 ({t1})");
    }
}
