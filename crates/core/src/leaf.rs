//! Leaf-facing hooks for multi-device scale-out.
//!
//! A scale-out deployment (see the `reis-cluster` crate) partitions one
//! logical corpus across N independent leaf [`ReisSystem`] instances and
//! merges their answers on an aggregator. Exactness is subtle: a single
//! device cuts the rerank candidate set *globally* (the best
//! `rerank_factor × k` by binary scan distance), while each leaf can only
//! cut locally. The protocol here makes the merge exact anyway:
//!
//! 1. [`ReisSystem::leaf_query`] runs the ordinary in-storage pipeline but
//!    returns **every** leaf-local candidate — up to the same
//!    `rerank_factor × k` budget a single device would use — with both its
//!    binary scan distance and its INT8 rerank distance
//!    ([`LeafCandidate`]). Any candidate in the union's global top-C is, a
//!    fortiori, in its own leaf's top-C, so the union of the leaf sets is a
//!    superset of the single-device candidate set.
//! 2. The aggregator re-applies the global cut over the union of leaf
//!    candidates under the lifted total order
//!    `(binary distance, leaf id, storage index)`, then ranks the
//!    survivors by `(raw INT8 distance, leaf id, storage index)` — the
//!    single-device `(distance, storage_index)` tie-breaks with the leaf id
//!    spliced in. When each leaf holds a contiguous slice of the
//!    single-device scan order, the lifted order coincides with the
//!    single-device order and the merged top-k is bit-identical.
//! 3. [`ReisSystem::leaf_fetch_documents`] retrieves the winners' chunks
//!    from their owning leaves only.
//!
//! Leaf scans pin [`AdaptiveFiltering`](crate::config::AdaptiveFiltering)
//! off: the windowed threshold schedule is a function of one *device's*
//! page list, which sharding a corpus changes. The static threshold is a
//! pure function of the configuration and the query, so the set of entries
//! that pass it — and with it the summed transferred-entry accounting — is
//! partition-invariant.
//!
//! Mutation routing stores *global* stable ids natively on the owning leaf:
//! [`ReisSystem::deploy_with_ids`] deploys a shard under its global ids and
//! [`ReisSystem::insert_batch_at`] appends new entries under
//! aggregator-assigned ids (WAL-logged as
//! [`WalRecord::InsertBatchAt`](reis_persist::WalRecord) so replay
//! reproduces the assignment). Deletes, upserts and compactions reuse the
//! ordinary per-leaf paths unchanged.

use reis_ann::topk::Neighbor;
use reis_nand::{FlashStats, Nanos};
use reis_persist::WalRecord;
use reis_telemetry::{CounterId, HistogramId};

use crate::config::ScanParallelism;
use crate::database::VectorDatabase;
use crate::deploy;
use crate::energy::EnergyBreakdown;
use crate::engine::InStorageEngine;
use crate::error::{ReisError, Result};
use crate::mutate::{self, MutationOutcome};
use crate::perf::{LatencyBreakdown, QueryActivity};
use crate::system::ReisSystem;

/// One fully scored fine-search candidate, as a leaf reports it to the
/// aggregator: the binary scan distance (the candidate-cut key), the
/// leaf-local storage index (the scan-order tie-break), the stable entry id
/// and the INT8 rerank distance (the final ranking key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafCandidate {
    /// Binary Hamming distance from the fine scan.
    pub binary: u32,
    /// Leaf-local storage index (scan-order position).
    pub storage_index: u32,
    /// Stable entry id (global in a cluster deployment).
    pub id: u32,
    /// Raw INT8 squared-L2 rerank distance.
    pub raw: i64,
}

/// Everything one leaf contributes to a fanned-out query: its full scored
/// candidate set plus the honest per-leaf accounting of the work done.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafQueryOutcome {
    /// All leaf-local candidates, ordered by `(binary, storage_index)`.
    pub candidates: Vec<LeafCandidate>,
    /// The candidate budget this leaf cut to (`rerank_factor × k`).
    pub candidate_budget: usize,
    /// Activity counters of the leaf's scan and rerank phases.
    pub activity: QueryActivity,
    /// Per-phase modelled latency of the leaf's work (documents excluded —
    /// the aggregator fetches only the merged winners' chunks).
    pub latency: LatencyBreakdown,
    /// Energy of the leaf's work.
    pub energy: EnergyBreakdown,
    /// Flash operation counters attributable to the leaf's work.
    pub flash_stats: FlashStats,
}

/// The winners' document chunks as fetched from one owning leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafDocumentsOutcome {
    /// The chunks, aligned with the requested results.
    pub documents: Vec<Vec<u8>>,
    /// Modelled latency of the fetch (flash reads + host transfer).
    pub latency: Nanos,
    /// Flash operation counters of the fetch.
    pub flash_stats: FlashStats,
}

impl ReisSystem {
    /// Deploy a database shard under *externally assigned* stable ids (the
    /// cluster router's global ids; `stable_ids[i]` names entry `i`).
    /// `min_doc_slot_bytes` floors the document slot size so every leaf
    /// uses the slot layout the union corpus would — per-leaf maxima differ,
    /// and slot size feeds both document accounting and insert validation.
    ///
    /// The shard's next-id watermark advances past the largest assigned id,
    /// so later [`ReisSystem::insert_batch_at`] calls and upserts of global
    /// ids validate against the global namespace. Like
    /// [`ReisSystem::deploy`], a durably-opened system checkpoints a
    /// snapshot before returning.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::deploy`], plus
    /// [`ReisError::MalformedDatabase`] if `stable_ids` does not cover the
    /// corpus one-to-one.
    pub fn deploy_with_ids(
        &mut self,
        database: &VectorDatabase,
        stable_ids: &[u32],
        min_doc_slot_bytes: usize,
    ) -> Result<u32> {
        let db_id = self.next_db_id;
        let mut deployed = deploy::deploy_with_ids(
            &mut self.controller,
            database,
            db_id,
            stable_ids,
            min_doc_slot_bytes,
        )?;
        let past_max = stable_ids.iter().map(|&id| id + 1).max().unwrap_or(0);
        deployed.updates.next_id = deployed.updates.next_id.max(past_max);
        // Document chunks live at entry-order slots; with external ids the
        // identity fallback of `base_doc_slot` no longer holds, so install
        // the explicit id → slot map (as snapshot recovery does).
        deployed.updates.doc_slots = Some(
            stable_ids
                .iter()
                .enumerate()
                .map(|(slot, &id)| (id, slot as u32))
                .collect(),
        );
        self.databases.insert(db_id, deployed);
        self.next_db_id += 1;
        if self.durability.is_some() {
            self.save()?;
        }
        Ok(db_id)
    }

    /// Insert a batch under *caller-chosen* stable ids (see
    /// [`mutate`]'s routed-insert primitive): every id must be fresh (at or
    /// past the shard's next-id watermark) and unique within the batch. On
    /// a durably-opened system the batch is WAL-logged as
    /// [`WalRecord::InsertBatchAt`] so replay re-applies the recorded
    /// assignment verbatim.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::insert_batch`], plus
    /// [`ReisError::MalformedDatabase`] for stale or duplicate ids.
    pub fn insert_batch_at(
        &mut self,
        db_id: u32,
        ids: &[u32],
        vectors: &[Vec<f32>],
        documents: Vec<Vec<u8>>,
    ) -> Result<MutationOutcome> {
        let wal_payload = self
            .durability
            .is_some()
            .then(|| (vectors.to_vec(), documents.clone()));
        let outcome = self.insert_batch_at_inner(db_id, ids, vectors, documents)?;
        if let Some((vectors, documents)) = wal_payload {
            self.log_wal(WalRecord::InsertBatchAt {
                db_id,
                vectors,
                documents,
                ids: ids.to_vec(),
            })?;
        }
        Ok(outcome)
    }

    /// The body of [`ReisSystem::insert_batch_at`], minus WAL logging (WAL
    /// replay re-applies records through this path).
    pub(crate) fn insert_batch_at_inner(
        &mut self,
        db_id: u32,
        ids: &[u32],
        vectors: &[Vec<f32>],
        documents: Vec<Vec<u8>>,
    ) -> Result<MutationOutcome> {
        let db = self
            .databases
            .get_mut(&db_id)
            .ok_or(ReisError::DatabaseNotDeployed(db_id))?;
        let (centroid_pages, centroids) = if db.is_ivf() {
            (db.layout.centroid_pages, db.layout.centroids)
        } else {
            (0, 0)
        };
        let (latency, pages_programmed) =
            mutate::insert_batch_at(&mut self.controller, db, ids, vectors, &documents)?;
        let overhead = self
            .perf
            .append_overhead(ids.len(), centroid_pages, centroids);
        let compaction = self.maybe_auto_compact(db_id)?;
        Ok(MutationOutcome {
            ids: ids.to_vec(),
            latency: latency + overhead,
            pages_programmed,
            compaction,
        })
    }

    /// The shard's next unassigned stable id — after recovery, the cluster
    /// re-derives its global id watermark as the maximum over its leaves.
    pub fn next_stable_id(&self, db_id: u32) -> Result<u32> {
        Ok(self.database(db_id)?.updates.next_id)
    }

    /// Execute the leaf half of a fanned-out query: the ordinary in-storage
    /// pipeline through the INT8 rerank, returning *every* leaf-local
    /// candidate fully scored (see the module docs for why that makes the
    /// aggregator's global cut exact) instead of a top-k cut, and no
    /// documents — the aggregator fetches only the merged winners' chunks
    /// via [`ReisSystem::leaf_fetch_documents`].
    ///
    /// The scan pins adaptive filtering off (static thresholds are
    /// partition-invariant; the windowed schedule is not) but honors the
    /// configured [`ScanParallelism`] exactly like
    /// [`ReisSystem::search`], including the auto-shard upgrade.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::search`] /
    /// [`ReisSystem::ivf_search_with_nprobe`] (pass `nprobe: None` for a
    /// brute-force scan).
    pub fn leaf_query(
        &mut self,
        db_id: u32,
        query: &[f32],
        k: usize,
        nprobe: Option<usize>,
    ) -> Result<LeafQueryOutcome> {
        let db = self
            .databases
            .get(&db_id)
            .ok_or(ReisError::DatabaseNotDeployed(db_id))?;
        if nprobe.is_some() && db.rivf.is_empty() {
            return Err(ReisError::UnsupportedSearch(
                "IVF_Search requires an IVF deployment".into(),
            ));
        }
        let mut config = self.config.with_adaptive_filtering(false);
        if config.scan_parallelism.is_auto_default() {
            config.scan_parallelism = ScanParallelism::sharded(self.auto_shards);
        }
        let dim = db.binary_quantizer.dim();
        if query.len() != dim {
            return Err(ReisError::QueryDimensionMismatch {
                expected: dim,
                actual: query.len(),
            });
        }
        let query_binary = db.binary_quantizer.quantize(query)?;
        let query_int8 = db.int8_quantizer.quantize(query)?;

        // Leaf scans are static-threshold (adaptive off), so per-window
        // telemetry is a single-device concern; make sure a previous
        // single-device query's recording flags don't linger.
        self.scratch.record_windows = false;
        self.scratch.explain_log = None;

        let stats_before = *self.controller.device().stats();
        let dram_before =
            self.controller.dram().bytes_read() + self.controller.dram().bytes_written();

        let mut engine =
            InStorageEngine::new(&mut self.controller, config, &mut self.scratch, &self.sched);
        engine.broadcast_query(db, &query_binary)?;
        let (clusters, coarse_counts) = match nprobe {
            Some(nprobe) => {
                let (clusters, counts) = engine.coarse_search(db, nprobe)?;
                (Some(clusters), counts)
            }
            None => (None, Default::default()),
        };
        let candidate_budget = engine.rerank_candidates(k);
        let fine_counts =
            engine.fine_search(db, &query_binary, clusters.as_deref(), candidate_budget)?;
        let num_candidates = engine.num_candidates();
        let (candidates, int8_pages) = engine.rerank_all(db, &query_int8)?;

        let activity = engine.activity(
            db,
            coarse_counts,
            fine_counts,
            num_candidates,
            int8_pages,
            0,
            dim,
        );
        let latency = self.perf.query_latency(&activity, k);
        let core_busy = self.perf.core_busy(&activity, k);
        let flash_stats = self.controller.device().stats().delta_since(&stats_before);
        let dram_bytes = self.controller.dram().bytes_read()
            + self.controller.dram().bytes_written()
            - dram_before;
        let energy = self
            .energy
            .query_energy(&flash_stats, dram_bytes, core_busy, latency.total());

        if self.telemetry.is_enabled() {
            self.telemetry.count(CounterId::Queries, 1);
            self.telemetry
                .count(CounterId::CoarsePages, activity.coarse_pages as u64);
            self.telemetry
                .count(CounterId::FinePages, activity.fine_pages as u64);
            self.telemetry
                .count(CounterId::FineEntries, activity.fine_entries as u64);
            self.telemetry.count(
                CounterId::RerankCandidates,
                activity.rerank_candidates as u64,
            );
            self.telemetry
                .count(CounterId::FlashSenses, flash_stats.page_reads);
            self.telemetry
                .observe(HistogramId::QueryModelledNs, latency.total().as_nanos());
        }

        Ok(LeafQueryOutcome {
            candidates,
            candidate_budget,
            activity,
            latency,
            energy,
            flash_stats,
        })
    }

    /// Fetch the document chunks of merged winners owned by this leaf, in
    /// the order given (the aggregator passes each leaf only its own
    /// winners and splices the chunks back into global rank order).
    ///
    /// # Errors
    ///
    /// Same conditions as the document phase of [`ReisSystem::search`]
    /// ([`ReisError::EntryNotFound`] for an id this leaf does not hold).
    pub fn leaf_fetch_documents(
        &mut self,
        db_id: u32,
        results: &[Neighbor],
    ) -> Result<LeafDocumentsOutcome> {
        let db = self
            .databases
            .get(&db_id)
            .ok_or(ReisError::DatabaseNotDeployed(db_id))?;
        let config = self.config;
        let stats_before = *self.controller.device().stats();
        let mut engine =
            InStorageEngine::new(&mut self.controller, config, &mut self.scratch, &self.sched);
        let documents = engine.fetch_documents(db, results)?;
        let doc_slot_bytes = db.layout.doc_slot_bytes;
        let latency = self.perf.document_fetch(documents.len(), doc_slot_bytes)
            + self.perf.host_transfer(documents.len(), doc_slot_bytes);
        let flash_stats = self.controller.device().stats().delta_since(&stats_before);
        Ok(LeafDocumentsOutcome {
            documents,
            latency,
            flash_stats,
        })
    }
}
