//! Energy model of the in-storage retrieval system.
//!
//! Energy is attributed per operation from the flash statistics collected by
//! the device model, plus DRAM traffic, embedded-core busy time and the
//! controller's static power over the query's duration. The per-operation
//! values follow the Flash-Cosmos characterization and commodity-SSD power
//! specifications the paper's methodology cites; what matters for the
//! paper's claims is the ~30× gap between SSD-level power and the host CPU
//! baseline, which these defaults reproduce.

use serde::{Deserialize, Serialize};

use reis_nand::{FlashStats, Nanos};

/// Per-operation energy parameters of the SSD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of one page sense (array to latch), in microjoules.
    pub read_uj_per_page: f64,
    /// Energy of one page program, in microjoules.
    pub program_uj_per_page: f64,
    /// Energy of one block erase, in microjoules.
    pub erase_uj_per_block: f64,
    /// Energy of one inter-latch XOR over a full page, in microjoules.
    pub xor_uj_per_page: f64,
    /// Energy of one fail-bit-counter scan over a full page, in microjoules.
    pub bit_count_uj_per_page: f64,
    /// Energy of one pass/fail comparator pass, in microjoules.
    pub pass_fail_uj: f64,
    /// Energy of one Input Broadcast, in microjoules.
    pub broadcast_uj: f64,
    /// Channel transfer energy, picojoules per byte.
    pub channel_pj_per_byte: f64,
    /// Internal DRAM energy, picojoules per byte.
    pub dram_pj_per_byte: f64,
    /// Active power of one embedded core, watts.
    pub core_active_w: f64,
    /// Static / idle power of the SSD (controller, DRAM refresh, peripheral
    /// circuitry), watts.
    pub static_power_w: f64,
}

impl EnergyParams {
    /// Defaults for a data-center NVMe SSD.
    pub fn commodity_ssd() -> Self {
        EnergyParams {
            read_uj_per_page: 45.0,
            program_uj_per_page: 180.0,
            erase_uj_per_block: 1500.0,
            xor_uj_per_page: 2.0,
            bit_count_uj_per_page: 2.5,
            pass_fail_uj: 0.2,
            broadcast_uj: 3.0,
            channel_pj_per_byte: 4.0,
            dram_pj_per_byte: 20.0,
            core_active_w: 0.35,
            static_power_w: 2.5,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::commodity_ssd()
    }
}

/// Energy of one query, broken down by component (joules).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Flash array operations (reads, programs, erases).
    pub flash_array_j: f64,
    /// In-plane compute (XOR, bit counting, pass/fail checks, broadcasts).
    pub in_plane_j: f64,
    /// Flash channel transfers.
    pub channel_j: f64,
    /// Internal DRAM traffic.
    pub dram_j: f64,
    /// Embedded core kernels.
    pub cores_j: f64,
    /// Static power integrated over the query latency.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.flash_array_j
            + self.in_plane_j
            + self.channel_j
            + self.dram_j
            + self.cores_j
            + self.static_j
    }
}

/// The energy model: turns operation counts into joules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Create a model from per-operation parameters.
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Energy of a query given the flash activity it caused, the DRAM bytes
    /// it moved, the time the embedded core was busy and the total elapsed
    /// latency.
    pub fn query_energy(
        &self,
        flash: &FlashStats,
        dram_bytes: u64,
        core_busy: Nanos,
        elapsed: Nanos,
    ) -> EnergyBreakdown {
        let p = &self.params;
        EnergyBreakdown {
            flash_array_j: (flash.page_reads as f64 * p.read_uj_per_page
                + flash.page_programs as f64 * p.program_uj_per_page
                + flash.block_erases as f64 * p.erase_uj_per_block)
                * 1e-6,
            in_plane_j: (flash.xor_ops as f64 * p.xor_uj_per_page
                + flash.bit_count_ops as f64 * p.bit_count_uj_per_page
                + flash.pass_fail_ops as f64 * p.pass_fail_uj
                + flash.broadcast_ops as f64 * p.broadcast_uj)
                * 1e-6,
            channel_j: flash.channel_bytes() as f64 * p.channel_pj_per_byte * 1e-12,
            dram_j: dram_bytes as f64 * p.dram_pj_per_byte * 1e-12,
            cores_j: p.core_active_w * core_busy.as_secs_f64(),
            static_j: p.static_power_w * elapsed.as_secs_f64(),
        }
    }

    /// Average power of the SSD while serving queries back-to-back with the
    /// given per-query energy and latency (used for the QPS/W figures).
    pub fn average_power_w(&self, energy_per_query: &EnergyBreakdown, latency: Nanos) -> f64 {
        if latency == Nanos::ZERO {
            return self.params.static_power_w;
        }
        energy_per_query.total_j() / latency.as_secs_f64()
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::new(EnergyParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(page_reads: u64, xor_ops: u64, bytes: u64) -> FlashStats {
        FlashStats {
            page_reads,
            xor_ops,
            bit_count_ops: xor_ops,
            bytes_to_controller: bytes,
            ..FlashStats::default()
        }
    }

    #[test]
    fn energy_scales_with_activity() {
        let model = EnergyModel::default();
        let small = model.query_energy(
            &stats(10, 10, 1_000),
            1_000,
            Nanos::from_micros(10),
            Nanos::from_micros(100),
        );
        let large = model.query_energy(
            &stats(1000, 1000, 100_000),
            100_000,
            Nanos::from_micros(100),
            Nanos::from_millis(1),
        );
        assert!(large.total_j() > small.total_j());
        assert!(small.total_j() > 0.0);
        assert!(small.flash_array_j > 0.0);
        assert!(small.in_plane_j > 0.0);
        assert!(small.channel_j > 0.0);
        assert!(small.dram_j > 0.0);
        assert!(small.cores_j > 0.0);
        assert!(small.static_j > 0.0);
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let model = EnergyModel::default();
        let b = model.query_energy(
            &stats(50, 50, 5_000),
            2_000,
            Nanos::from_micros(20),
            Nanos::from_micros(500),
        );
        let manual =
            b.flash_array_j + b.in_plane_j + b.channel_j + b.dram_j + b.cores_j + b.static_j;
        assert!((b.total_j() - manual).abs() < 1e-15);
    }

    #[test]
    fn ssd_power_is_an_order_of_magnitude_below_a_server_cpu() {
        // The paper attributes the 55x energy-efficiency gain largely to the
        // ~30x lower power of the SSD versus the dual-socket CPU baseline
        // (hundreds of watts). Sanity-check the order of magnitude here.
        let model = EnergyModel::default();
        let b = model.query_energy(
            &stats(1000, 1000, 1_000_000),
            1_000_000,
            Nanos::from_millis(1),
            Nanos::from_millis(2),
        );
        let power = model.average_power_w(&b, Nanos::from_millis(2));
        assert!(
            power < 40.0,
            "SSD average power {power} W should stay well below a server CPU"
        );
        assert!(power > 0.5);
        assert_eq!(
            model.average_power_w(&EnergyBreakdown::default(), Nanos::ZERO),
            model.params().static_power_w
        );
    }
}
