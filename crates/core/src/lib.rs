//! # reis-core — the REIS in-storage retrieval system
//!
//! The paper's primary contribution, built on the `reis-nand` flash device
//! model, the `reis-ssd` controller and the `reis-ann` algorithm library:
//!
//! * [`database`] — the host-side [`database::VectorDatabase`] handed to
//!   `DB_Deploy` / `IVF_Deploy`.
//! * [`layout`] — how a database maps onto flash pages (embedding /
//!   INT8 / document regions, mini-pages, OOB linkage capacity).
//! * [`deploy`] — deployment: cluster-contiguous storage order, OOB
//!   embedding-to-document linkage, the R-DB record and the R-IVF array.
//! * [`records`] — the controller-DRAM structures (R-IVF, Temporal Top
//!   Lists).
//! * [`engine`] — the functional in-storage ANNS engine (Input Broadcasting,
//!   in-plane XOR + fail-bit counting, distance filtering, quickselect,
//!   INT8 reranking, document retrieval), including the intra-query scan
//!   sharding that runs one query's fine scan concurrently across the
//!   device's channel/die units (see [`config::ScanParallelism`]).
//! * [`perf`] — the latency model (plane/die/channel parallelism,
//!   pipelining, MPIBC).
//! * [`energy`] — the per-operation energy model.
//! * [`system`] — [`system::ReisSystem`], the host-facing API of Table 1,
//!   whose batched searches default to page-major *fused* execution on the
//!   shared device: each probed page is sensed once and scored against
//!   every in-flight query (see [`config::BatchFusion`]), bit-identical
//!   per query to sequential search.
//! * [`config`] — REIS-SSD1 / REIS-SSD2 configurations and the optimization
//!   toggles of the Fig. 9 sensitivity study.
//!
//! # Example
//!
//! ```
//! use reis_core::{ReisConfig, ReisSystem, VectorDatabase};
//!
//! # fn main() -> Result<(), reis_core::ReisError> {
//! let vectors: Vec<Vec<f32>> = (0..96)
//!     .map(|i| (0..64).map(|d| (((i * 7 + d) % 13) as f32 - 6.0) / 3.0).collect())
//!     .collect();
//! let documents: Vec<Vec<u8>> = (0..96).map(|i| format!("doc {i}").into_bytes()).collect();
//!
//! let mut reis = ReisSystem::new(ReisConfig::tiny());
//! let db = VectorDatabase::ivf(&vectors, documents, 8)?;
//! let id = reis.deploy(&db)?;
//! let outcome = reis.ivf_search_with_nprobe(id, &vectors[5], 10, 8)?;
//! assert_eq!(outcome.results[0].id, 5);
//! assert_eq!(outcome.documents[0], b"doc 5");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod database;
pub mod deploy;
pub mod durable;
pub mod energy;
pub mod engine;
pub mod error;
mod fused;
pub mod layout;
pub mod leaf;
pub mod mutate;
pub mod perf;
pub mod pipeline;
pub mod records;
pub mod system;

pub use config::{
    AdaptiveFiltering, BatchFusion, Optimizations, ReisConfig, ScanExecutor, ScanParallelism,
};
pub use database::{ClusterInfo, VectorDatabase};
pub use deploy::DeployedDatabase;
pub use durable::{RecoveryReport, WalQuarantine};
pub use energy::{EnergyBreakdown, EnergyModel, EnergyParams};
pub use error::{ReisError, Result};
pub use layout::{LayoutPlan, DOC_SUBPAGE_BYTES};
pub use leaf::{LeafCandidate, LeafDocumentsOutcome, LeafQueryOutcome};
pub use mutate::{CompactionOutcome, MutationOutcome};
pub use perf::{LatencyBreakdown, PerfModel, QueryActivity};
pub use pipeline::{
    LanePriority, Pipeline, PipelineCompletion, PipelineConfig, PipelineReply, PipelineRequest,
};
pub use records::{RIvf, RIvfEntry, TemporalTopList, TtlEntry};
pub use reis_sched::{WorkerContext, WorkerLocal, WorkerPool};

pub use reis_persist::{
    DirVfs, DurableStore, FaultHandle, FaultVfs, MemVfs, PersistError, ScrubReport, Vfs, WalRecord,
};
pub use reis_telemetry::{
    CounterId, ExplainEvent, ExplainTrace, GaugeId, HistogramId, HistogramSnapshot, QueryTrace,
    Span, Telemetry, TELEMETRY_ENV,
};
pub use reis_update::{CompactionPolicy, MutationStats, UpdateState};
pub use system::{ReisSystem, SearchOutcome};
