//! Page-major fused execution of batched searches (the shared-device batch
//! path).
//!
//! The replica batch path parallelizes *across* queries: every worker clones
//! the simulated device and each query re-senses every page it scans, so the
//! physical sense count grows linearly with the batch. This module inverts
//! the loop, the way REIS amortizes flash sensing across in-flight queries:
//! the batch's probed pages are computed up front, each distinct page is
//! sensed **once** through the borrowed
//! [`SsdController::scan_region_page`] path, and the fused multi-query
//! kernel ([`FailBitCounter::count_fused_into`]) scores the sensed page
//! against every query whose selection covers it in a single pass over the
//! page words. Each query accumulates candidates in its own Temporal Top
//! List, and the downstream phases (quickselect, INT8 rerank, document
//! fetch) run per query on the shared controller.
//!
//! # Bit-identity
//!
//! Per-query outcomes — results, documents, activity counters, modelled
//! latency and energy — are bit-identical to running
//! [`ReisSystem::search`](crate::system::ReisSystem::search) sequentially
//! per query:
//!
//! * The per-query *logical* activity is unchanged: a query is charged every
//!   page its own selection covers, exactly as the sequential scan counts
//!   them, even though the device sensed the page once for the whole batch.
//!   Only the device-level counters (and the wall clock) see the
//!   amortization.
//! * Candidate admission reuses the engine's entry constructors
//!   ([`engine::base_scan_entry`], [`engine::segment_scan_entry`],
//!   [`engine::coarse_scan_entry`]), and selection runs under the same
//!   `(distance, storage_index)` total order, so the kept set is
//!   order-independent.
//! * Adaptive thresholds follow each query's own *windowed* schedule: a
//!   query's threshold tightens only at barriers every
//!   [`adaptive_window_pages`](crate::config::ReisConfig::adaptive_window_pages)
//!   pages of its own deterministic page list (base subsequence of the
//!   union scan, then its probed clusters' segment runs), from the TTL
//!   state accumulated over its completed windows — exactly the schedule
//!   the sequential engine runs. The union scan advances in *chunks* that
//!   end whenever any in-flight query reaches a barrier, so within a chunk
//!   every threshold is constant and the chunk may shard across channel/die
//!   workers like a static scan. Append segments fuse per group of queries
//!   that share a probed-cluster order (equal order ⇒ aligned windows);
//!   brute-force batches share one order and fuse fully.
//!
//! # Accounting
//!
//! The fused scan performs no device mutation while scanning; after the scan
//! the *physical* flash activity — each page sensed once, the in-plane
//! XOR/count/check per `(page, query)` pair, the aggregate TTL traffic — is
//! folded into the primary controller via
//! [`ControllerActivity::flash_only`], mirroring how intra-query scan shards
//! account their work.

use std::collections::HashMap;
use std::time::Instant;

use reis_nand::peripheral::PassFailChecker;
use reis_nand::{FlashStats, FusedHit, OobEntry, OobLayout, ScanShardPlan};
use reis_ssd::{ControllerActivity, SsdController, StripedRegion};
use reis_telemetry::Telemetry;

use reis_sched::WorkerPool;

use crate::config::{ReisConfig, ScanExecutor, ScanParallelism};
use crate::deploy::DeployedDatabase;
use crate::energy::EnergyModel;
use crate::engine::{self, InStorageEngine, ScanCounts, ScanScratch};
use crate::error::{ReisError, Result};
use crate::perf::{PerfModel, QueryActivity};
use crate::records::{TemporalTopList, TtlEntry};
use crate::system::{record_query_telemetry, SearchOutcome, StageWalls};

/// The immutable per-query plan: the slot-padded binary query image the
/// fused kernel scores against, and the selection the query's fine scan
/// covers (shared with the sequential path via
/// [`engine::plan_fine_selection`]).
struct QueryPlan {
    /// Binary query padded to the embedding slot size (the broadcast image).
    padded: Vec<u8>,
    /// Merged page ranges of the fine scan, relative to the embedding
    /// sub-region.
    page_ranges: Vec<(usize, usize)>,
    /// Sorted storage-index ranges of the probed clusters.
    valid_ranges: Vec<(u32, u32)>,
    /// Probed clusters in selection order (segment-scan order).
    cluster_buf: Vec<usize>,
    /// Probed clusters sorted, for the fused segment pass's membership test.
    cluster_sorted: Vec<usize>,
}

/// The mutable per-query scan state.
struct QueryScanState {
    /// Current distance-filter threshold (tightens under adaptation).
    threshold: u32,
    /// The query's Temporal Top List.
    ttl: TemporalTopList,
    /// Coarse-phase activity.
    coarse: ScanCounts,
    /// Fine-phase activity (base region plus append segments).
    fine: ScanCounts,
    /// Per-window passed-entry counts (telemetry only, recorded at the
    /// chunk/segment barriers on the driving thread; sums to
    /// `fine.entries_passed` like the sequential scan's log).
    window_log: Vec<u64>,
    /// Entries already pushed into `window_log`.
    logged_entries: usize,
}

impl QueryScanState {
    fn new(threshold: u32) -> Self {
        QueryScanState {
            threshold,
            ttl: TemporalTopList::new(),
            coarse: ScanCounts::default(),
            fine: ScanCounts::default(),
            window_log: Vec::new(),
            logged_entries: 0,
        }
    }

    /// Log the entries admitted since the last barrier as one window.
    fn log_window(&mut self) {
        self.window_log
            .push((self.fine.entries_passed - self.logged_entries) as u64);
        self.logged_entries = self.fine.entries_passed;
    }
}

/// Which per-query counter a scored page belongs to.
#[derive(Clone, Copy, PartialEq)]
enum Phase {
    Coarse,
    Fine,
}

/// Reusable buffers of one fused scoring loop: the active queries' padded
/// images and current thresholds, the kernel's per-query accumulator and
/// the emitted hits. One set serves one thread; workers own their own.
#[derive(Default)]
struct ScoreBufs<'a> {
    queries: Vec<&'a [u8]>,
    thresholds: Vec<u32>,
    acc: Vec<u32>,
    hits: Vec<FusedHit>,
}

/// Score one borrowed page against the active queries with the
/// threshold-aware fused kernel and push the admitted entries into each
/// query's Temporal Top List.
///
/// Each active query is scored under its *current* threshold — constant for
/// the duration of a window under the windowed adaptive schedule (barrier
/// tightening is the caller's job), and the static paper threshold
/// otherwise. [`PassFailChecker::filter_fused`] folds the per-query
/// comparison into the single pass over the page words and emits hits
/// chunk-major, so the OOB linkage of a slot unpacks once for every query
/// that passed it. `make_entry` maps `(query, page, slot, distance, oob)`
/// to an admitted entry.
#[allow(clippy::too_many_arguments)]
fn score_page<'a>(
    data: &[u8],
    oob: &[u8],
    page_offset: usize,
    slot_bytes: usize,
    epp: usize,
    oob_layout: &OobLayout,
    plans: &'a [QueryPlan],
    active: &[usize],
    states: &mut [QueryScanState],
    bufs: &mut ScoreBufs<'a>,
    phase: Phase,
    make_entry: &(dyn Fn(usize, usize, usize, u32, OobEntry) -> Option<TtlEntry> + Sync),
) -> Result<()> {
    let ScoreBufs {
        queries,
        thresholds,
        acc,
        hits,
    } = bufs;
    queries.clear();
    queries.extend(active.iter().map(|&q| plans[q].padded.as_slice()));
    thresholds.clear();
    thresholds.extend(active.iter().map(|&q| states[q].threshold));
    let n_chunks = data.len().div_ceil(slot_bytes);
    let limit = n_chunks.min(epp);
    PassFailChecker::filter_fused(data, slot_bytes, limit, queries, thresholds, acc, hits);
    for &q in active {
        let state = &mut states[q];
        let phase_counts = match phase {
            Phase::Coarse => &mut state.coarse,
            Phase::Fine => &mut state.fine,
        };
        phase_counts.pages += 1;
        phase_counts.slots_scanned += limit;
    }
    // Hits arrive chunk-major (ascending slot), so a slot's OOB entry is
    // unpacked once and reused across the queries that passed it.
    let mut cached: Option<(u32, OobEntry)> = None;
    for hit in hits.iter() {
        let oob_entry = match cached {
            Some((slot, entry)) if slot == hit.slot => entry,
            _ => {
                let entry = oob_layout.unpack_entry(oob, hit.slot as usize)?;
                cached = Some((hit.slot, entry));
                entry
            }
        };
        let q = active[hit.query as usize];
        if let Some(entry) = make_entry(q, page_offset, hit.slot as usize, hit.distance, oob_entry)
        {
            let state = &mut states[q];
            let phase_counts = match phase {
                Phase::Coarse => &mut state.coarse,
                Phase::Fine => &mut state.fine,
            };
            phase_counts.entries_passed += 1;
            state.ttl.push(entry);
        }
    }
    Ok(())
}

/// Walk `ranges` of `region` sequentially, sensing each page once and
/// scoring it against every query whose selection covers it. The shared
/// body of the unsharded static base scan and of one adaptive chunk.
#[allow(clippy::too_many_arguments)]
fn fused_walk_pages<'a>(
    controller: &SsdController,
    region: &StripedRegion,
    ranges: &[(usize, usize)],
    page_base: usize,
    slot_bytes: usize,
    epp: usize,
    oob_layout: &OobLayout,
    plans: &'a [QueryPlan],
    states: &mut [QueryScanState],
    bufs: &mut ScoreBufs<'a>,
    active: &mut Vec<usize>,
    physical_senses: &mut u64,
    make_entry: &(dyn Fn(usize, usize, usize, u32, OobEntry) -> Option<TtlEntry> + Sync),
) -> Result<()> {
    for &(start, end) in ranges {
        for offset in start..end {
            let page_offset = page_base + offset;
            let (_, data, oob) = controller.scan_region_page(region, page_offset)?;
            *physical_senses += 1;
            active.clear();
            active.extend(
                (0..plans.len()).filter(|&q| engine::in_page_ranges(&plans[q].page_ranges, offset)),
            );
            score_page(
                data,
                oob,
                page_offset,
                slot_bytes,
                epp,
                oob_layout,
                plans,
                active,
                states,
                bufs,
                Phase::Fine,
                make_entry,
            )?;
        }
    }
    Ok(())
}

/// The logical flash activity of one query's scan phases, reconstructed
/// from its counts exactly as the sequential engine tallies them on the
/// device: one sense, one XOR, one fail-bit count and one pass/fail check
/// per scanned page, plus the aggregate TTL channel traffic.
///
/// This (and [`broadcast_stats`]) mirrors the device-side accounting of
/// `InStorageEngine::scan_pages` / `FlashDevice::input_broadcast` rather
/// than sharing code with it; any drift between the two is caught by the
/// fused-vs-sequential `flash_stats` equality assertions in
/// `crates/core/tests/fused.rs`, which fail CI.
fn logical_scan_stats(coarse: &ScanCounts, fine: &ScanCounts, entry_bytes: usize) -> FlashStats {
    let pages = (coarse.pages + fine.pages) as u64;
    FlashStats {
        page_reads: pages,
        xor_ops: pages,
        bit_count_ops: pages,
        pass_fail_ops: pages,
        bytes_to_controller: (entry_bytes * (coarse.entries_passed + fine.entries_passed)) as u64,
        ..FlashStats::new()
    }
}

/// The logical flash activity of broadcasting one query into every die's
/// cache latches, matching `InStorageEngine::broadcast_query` +
/// `FlashDevice::input_broadcast` counter for counter.
fn broadcast_stats(config: &ReisConfig, payload_bytes: usize) -> FlashStats {
    let geometry = &config.ssd.geometry;
    let dies = (geometry.channels * geometry.dies_per_channel) as u64;
    let per_die = if config.optimizations.multi_plane_ibc {
        payload_bytes as u64
    } else {
        (payload_bytes * geometry.planes_per_die) as u64
    };
    FlashStats {
        broadcast_ops: dies,
        bytes_from_controller: dies * per_die,
        ..FlashStats::new()
    }
}

/// Execute a whole batch of queries page-major on the shared controller.
///
/// The caller has already validated the query dimensions and checked that
/// the embedding regions read error-free (the borrowed scan path's
/// exactness precondition, same as intra-query sharding).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_batch_fused(
    config: &ReisConfig,
    controller: &mut SsdController,
    perf: &PerfModel,
    energy: &EnergyModel,
    scratch: &mut ScanScratch,
    pool: &WorkerPool,
    db: &DeployedDatabase,
    queries: &[Vec<f32>],
    k: usize,
    nprobe: Option<usize>,
    shard_budget: usize,
    telemetry: &Telemetry,
) -> Result<Vec<SearchOutcome>> {
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    let record = telemetry.is_enabled();
    let scan_started = record.then(Instant::now);
    let layout = db.layout;
    let geometry = controller.config().geometry;
    let slot_bytes = layout.embedding_slot_bytes;
    let epp = layout.embeddings_per_page;
    let oob_layout = OobLayout::new(geometry.oob_size_bytes, epp)?;
    let entry_bytes = slot_bytes + config.ttl_metadata_bytes;
    let dim = db.binary_quantizer.dim();
    let candidate_count = config.rerank_factor.max(1) * k.max(1);
    let static_threshold = config.filter_threshold(dim);
    let adapt = if config.adapts(nprobe.is_none()) {
        Some(candidate_count.max(1))
    } else {
        None
    };

    // ---- Quantize every query up front and build the padded images the
    // fused kernel scores against (the broadcast payloads).
    let binaries = queries
        .iter()
        .map(|q| db.binary_quantizer.quantize(q))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    let int8s = queries
        .iter()
        .map(|q| db.int8_quantizer.quantize(q))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    let mut plans: Vec<QueryPlan> = binaries
        .iter()
        .map(|binary| {
            let mut padded = vec![0u8; slot_bytes];
            padded[..binary.as_bytes().len()].copy_from_slice(binary.as_bytes());
            QueryPlan {
                padded,
                page_ranges: Vec::new(),
                valid_ranges: Vec::new(),
                cluster_buf: Vec::new(),
                cluster_sorted: Vec::new(),
            }
        })
        .collect();
    let mut states: Vec<QueryScanState> = (0..queries.len())
        .map(|_| QueryScanState::new(static_threshold))
        .collect();

    let mut physical_senses = 0u64;
    let all_queries: Vec<usize> = (0..queries.len()).collect();
    // Reusable per-page active-query list: cleared and refilled for every
    // sensed page, like every other scan buffer (no per-page allocation).
    let mut active: Vec<usize> = Vec::with_capacity(queries.len());

    // The whole scan (coarse, planning, fused base, segments) runs inside
    // one fallible block so that the physical activity it accumulated is
    // folded into the primary device even when a phase fails midway — the
    // merge-then-fail policy the replica and shard paths follow.
    let scan_error = (|| -> Result<()> {
        // ---- Coarse phase (IVF): the centroid pages are common to every
        // query, so each is sensed once and scored against the whole batch.
        // The centroid scan never filters and never adapts, so the fused order
        // is immaterial — entries match the sequential coarse search exactly.
        let per_query_clusters: Option<Vec<Vec<usize>>> = match nprobe {
            Some(nprobe) => {
                let centroids = layout.centroids;
                let make_coarse =
                    |_q: usize, page: usize, slot: usize, distance: u32, oob: OobEntry| {
                        engine::coarse_scan_entry(epp, centroids, page, slot, distance, oob)
                    };
                // Thresholds are u32::MAX during the coarse phase; save and
                // restore the fine-scan thresholds around it. The scoring
                // buffers are scoped to the phase so their borrow of `plans`
                // ends before the fine-scan planning mutates them.
                let mut bufs = ScoreBufs::default();
                for state in states.iter_mut() {
                    state.threshold = u32::MAX;
                }
                for page_offset in 0..layout.centroid_pages {
                    let (_, data, oob) =
                        controller.scan_region_page(&db.record.embedding_region, page_offset)?;
                    physical_senses += 1;
                    score_page(
                        data,
                        oob,
                        page_offset,
                        slot_bytes,
                        epp,
                        &oob_layout,
                        &plans,
                        &all_queries,
                        &mut states,
                        &mut bufs,
                        Phase::Coarse,
                        &make_coarse,
                    )?;
                }
                let keep = nprobe.max(1);
                let clusters = states
                    .iter_mut()
                    .map(|state| {
                        state.threshold = static_threshold;
                        state.ttl.quickselect(keep);
                        state.ttl.sort_ascending();
                        let selected = state
                            .ttl
                            .top(keep)
                            .iter()
                            .map(|e| e.storage_index as usize)
                            .collect();
                        state.ttl.clear();
                        selected
                    })
                    .collect();
                Some(clusters)
            }
            None => None,
        };

        // ---- Fine-scan planning: per-query selections (identical to the
        // sequential prologue) plus their union, which is what the device
        // actually senses.
        for (q, plan) in plans.iter_mut().enumerate() {
            let clusters = per_query_clusters.as_ref().map(|c| c[q].as_slice());
            engine::plan_fine_selection(
                db,
                clusters,
                &mut plan.page_ranges,
                &mut plan.valid_ranges,
                &mut plan.cluster_buf,
            )?;
            plan.cluster_sorted = plan.cluster_buf.clone();
            plan.cluster_sorted.sort_unstable();
        }
        let mut union_ranges: Vec<(usize, usize)> = plans
            .iter()
            .flat_map(|p| p.page_ranges.iter().copied())
            .collect();
        engine::merge_page_ranges(&mut union_ranges);
        let union_pages: usize = union_ranges.iter().map(|&(s, e)| e - s).sum();

        // ---- Fused base scan over the union, page-major and ascending.
        // Static scans cover the whole union in one pass, sharded across
        // channel/die workers when large enough (each worker scores all
        // active queries for its pages). Adapting scans advance in *chunks*
        // bounded by the next window barrier of any in-flight query: within
        // a chunk every threshold is constant, so the chunk shards exactly
        // like a static scan, and the barrier tightening between chunks
        // reproduces each query's sequential windowed schedule.
        let tombstones = &db.updates.tombstones;
        let entries_total = layout.entries;
        let centroid_pages = layout.centroid_pages;
        let plans_ref = &plans;
        let make_base = move |q: usize, page: usize, slot: usize, distance: u32, oob: OobEntry| {
            engine::base_scan_entry(
                centroid_pages,
                epp,
                entries_total,
                tombstones,
                &plans_ref[q].valid_ranges,
                page,
                slot,
                distance,
                oob,
            )
        };
        let mut bufs = ScoreBufs::default();
        let parallelism = if config.scan_parallelism.is_auto_default() {
            ScanParallelism::sharded(shard_budget)
        } else {
            config.scan_parallelism
        };
        let scan_units = ScanShardPlan::scan_units(&geometry);
        let region = &db.record.embedding_region;
        let window = config.adaptive_window_pages.max(1);
        match adapt {
            None => {
                let shard_count = parallelism.effective_shards(scan_units, union_pages);
                if shard_count > 1 {
                    fused_scan_sharded(
                        config.scan_executor,
                        pool,
                        controller,
                        region,
                        &union_ranges,
                        shard_count,
                        centroid_pages,
                        slot_bytes,
                        epp,
                        &oob_layout,
                        plans_ref,
                        &mut states,
                        &mut physical_senses,
                        &make_base,
                    )?;
                } else {
                    fused_walk_pages(
                        controller,
                        region,
                        &union_ranges,
                        centroid_pages,
                        slot_bytes,
                        epp,
                        &oob_layout,
                        plans_ref,
                        &mut states,
                        &mut bufs,
                        &mut active,
                        &mut physical_senses,
                        &make_base,
                    )?;
                }
            }
            Some(candidate_count) => {
                // Per-query page positions (the index into each query's own
                // page list) advance deterministically with the union walk,
                // so chunk boundaries — the positions where some query
                // completes a window — are computed up front per chunk,
                // independent of how the chunk is then scanned.
                let mut chunk_ranges: Vec<(usize, usize)> = Vec::new();
                let mut pos: Vec<usize> = states.iter().map(|s| s.fine.pages).collect();
                let mut prev = pos.clone();
                let mut range_idx = 0usize;
                let mut off_in = 0usize;
                loop {
                    chunk_ranges.clear();
                    prev.copy_from_slice(&pos);
                    let mut crossed = false;
                    while !crossed && range_idx < union_ranges.len() {
                        let (start, end) = union_ranges[range_idx];
                        let offset = start + off_in;
                        match chunk_ranges.last_mut() {
                            Some(last) if last.1 == offset => last.1 = offset + 1,
                            _ => chunk_ranges.push((offset, offset + 1)),
                        }
                        off_in += 1;
                        if start + off_in == end {
                            range_idx += 1;
                            off_in = 0;
                        }
                        for (q, plan) in plans_ref.iter().enumerate() {
                            if engine::in_page_ranges(&plan.page_ranges, offset) {
                                pos[q] += 1;
                                if pos[q].is_multiple_of(window) {
                                    crossed = true;
                                }
                            }
                        }
                    }
                    let chunk_pages: usize = chunk_ranges.iter().map(|&(s, e)| e - s).sum();
                    if chunk_pages == 0 {
                        break;
                    }
                    let shard_count = parallelism.effective_shards(scan_units, chunk_pages);
                    if shard_count > 1 {
                        fused_scan_sharded(
                            config.scan_executor,
                            pool,
                            controller,
                            region,
                            &chunk_ranges,
                            shard_count,
                            centroid_pages,
                            slot_bytes,
                            epp,
                            &oob_layout,
                            plans_ref,
                            &mut states,
                            &mut physical_senses,
                            &make_base,
                        )?;
                    } else {
                        fused_walk_pages(
                            controller,
                            region,
                            &chunk_ranges,
                            centroid_pages,
                            slot_bytes,
                            epp,
                            &oob_layout,
                            plans_ref,
                            &mut states,
                            &mut bufs,
                            &mut active,
                            &mut physical_senses,
                            &make_base,
                        )?;
                    }
                    // ---- Window barriers (by construction only at the
                    // chunk's end): every query that just completed a window
                    // tightens against its accumulated TTL state.
                    for (q, state) in states.iter_mut().enumerate() {
                        if state.fine.pages > prev[q] && state.fine.pages.is_multiple_of(window) {
                            state.fine.windows += 1;
                            engine::tighten_threshold(
                                &mut state.ttl,
                                candidate_count,
                                &mut state.threshold,
                            );
                            if record {
                                state.log_window();
                            }
                        }
                    }
                }
            }
        }

        // ---- Append segments of mutated indexes. Statically filtered batches
        // fuse per cluster (each run page sensed once for every query probing
        // the cluster — admission is order-independent). Adapting batches fuse
        // per *group of queries with the same probed-cluster order*: queries
        // of one group share the whole page list, so their window positions
        // stay aligned and the windowed schedule continues seamlessly from
        // the base scan into the runs (a window may straddle the boundary and
        // any number of runs). Brute-force batches (the adaptive default)
        // share one order and fuse fully.
        if !db.updates.store.is_empty() {
            let store = &db.updates.store;
            let base_capacity = db.updates.base_capacity;
            let make_segment =
                move |_q: usize, _page: usize, _slot: usize, distance: u32, oob: OobEntry| {
                    engine::segment_scan_entry(store, base_capacity, distance, oob)
                };
            match adapt {
                None => {
                    for cluster in 0..store.clusters() {
                        active.clear();
                        active.extend((0..queries.len()).filter(|&q| {
                            plans_ref[q].cluster_sorted.binary_search(&cluster).is_ok()
                        }));
                        if active.is_empty() {
                            continue;
                        }
                        for run in store.runs(cluster) {
                            for offset in 0..run.len {
                                let (_, data, oob) = controller.scan_region_page(run, offset)?;
                                physical_senses += 1;
                                score_page(
                                    data,
                                    oob,
                                    offset,
                                    slot_bytes,
                                    epp,
                                    &oob_layout,
                                    plans_ref,
                                    &active,
                                    &mut states,
                                    &mut bufs,
                                    Phase::Fine,
                                    &make_segment,
                                )?;
                            }
                        }
                    }
                }
                Some(candidate_count) => {
                    let mut groups: HashMap<&[usize], Vec<usize>> = HashMap::new();
                    for (q, plan) in plans.iter().enumerate() {
                        groups
                            .entry(plan.cluster_buf.as_slice())
                            .or_default()
                            .push(q);
                    }
                    let mut ordered: Vec<(&[usize], Vec<usize>)> = groups.into_iter().collect();
                    // Group iteration order only affects which queries share a
                    // sense, never any per-query outcome; sort for determinism
                    // of the physical counters.
                    ordered.sort_unstable_by_key(|(_, members)| members[0]);
                    for (cluster_order, members) in ordered {
                        for &cluster in cluster_order {
                            for run in store.runs(cluster) {
                                for offset in 0..run.len {
                                    let (_, data, oob) =
                                        controller.scan_region_page(run, offset)?;
                                    physical_senses += 1;
                                    score_page(
                                        data,
                                        oob,
                                        offset,
                                        slot_bytes,
                                        epp,
                                        &oob_layout,
                                        plans_ref,
                                        &members,
                                        &mut states,
                                        &mut bufs,
                                        Phase::Fine,
                                        &make_segment,
                                    )?;
                                    // Window barrier checks continue across
                                    // the base/segment boundary: a member
                                    // whose page position hits a multiple of
                                    // the window tightens here too.
                                    for &q in &members {
                                        let state = &mut states[q];
                                        if state.fine.pages.is_multiple_of(window) {
                                            state.fine.windows += 1;
                                            engine::tighten_threshold(
                                                &mut state.ttl,
                                                candidate_count,
                                                &mut state.threshold,
                                            );
                                            if record {
                                                state.log_window();
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Trailing telemetry window per query: entries admitted since the
        // last barrier (the whole scan for a statically filtered batch).
        if record {
            for state in states.iter_mut() {
                if state.fine.entries_passed > state.logged_entries {
                    state.log_window();
                }
            }
        }
        Ok(())
    })()
    .err();

    // ---- Fold the physical scan activity into the primary device — each
    // page sensed once, the in-plane compute and TTL traffic per
    // (page, query), plus every query's broadcast — *before* surfacing any
    // scan error or running a downstream phase that could fail: even a
    // failing scan walked real pages.
    let broadcast = broadcast_stats(config, slot_bytes);
    let mut page_scores = 0u64;
    let mut ttl_bytes = 0u64;
    for state in &states {
        let logical = logical_scan_stats(&state.coarse, &state.fine, entry_bytes);
        page_scores += logical.xor_ops;
        ttl_bytes += logical.bytes_to_controller;
    }
    let mut physical = FlashStats::fused_scan(physical_senses, page_scores, ttl_bytes);
    for _ in 0..states.len() {
        physical.accumulate(&broadcast);
    }
    controller.absorb_activity(&ControllerActivity::flash_only(physical));
    if let Some(error) = scan_error {
        return Err(error);
    }

    // ---- Per-query downstream phases on the shared controller: candidate
    // selection, INT8 rerank and document fetch, measured with per-query
    // device deltas so the outcome's flash/DRAM accounting matches a
    // sequential run of the same query.
    //
    // Telemetry wall clocks: the fused scan served the whole batch at once,
    // so its wall time is amortized evenly across the queries; the
    // downstream phases are timed per query.
    let scan_wall_per_query = scan_started
        .map(|t0| t0.elapsed().as_nanos() as u64 / queries.len() as u64)
        .unwrap_or(0);
    let mut outcomes = Vec::with_capacity(queries.len());
    for (q, state) in states.iter_mut().enumerate() {
        let downstream_started = record.then(Instant::now);
        state.ttl.quickselect(candidate_count.max(1));
        state.ttl.sort_ascending();
        std::mem::swap(&mut scratch.ttl, &mut state.ttl);
        scratch.candidate_count = candidate_count;

        let stats_before = *controller.device().stats();
        let dram_before = controller.dram().bytes_read() + controller.dram().bytes_written();
        let (results, documents, num_candidates, int8_pages) = {
            let mut query_engine = InStorageEngine::new(controller, *config, scratch, pool);
            let num_candidates = query_engine.num_candidates();
            let (results, int8_pages) = query_engine.rerank(db, &int8s[q], k)?;
            let documents = query_engine.fetch_documents(db, &results)?;
            (results, documents, num_candidates, int8_pages)
        };
        let rerank_delta = controller.device().stats().delta_since(&stats_before);
        let dram_bytes =
            controller.dram().bytes_read() + controller.dram().bytes_written() - dram_before;

        let activity = QueryActivity {
            coarse_pages: state.coarse.pages,
            coarse_entries: state.coarse.entries_passed,
            fine_pages: state.fine.pages,
            fine_entries: state.fine.entries_passed,
            fine_windows: state.fine.windows,
            rerank_candidates: num_candidates,
            int8_pages,
            documents: results.len(),
            embedding_slot_bytes: slot_bytes,
            dim,
            doc_slot_bytes: layout.doc_slot_bytes,
        };
        let mut flash_stats = logical_scan_stats(&state.coarse, &state.fine, entry_bytes);
        flash_stats.accumulate(&broadcast);
        flash_stats.accumulate(&rerank_delta);
        let latency = perf.query_latency(&activity, k);
        let core_busy = perf.core_busy(&activity, k);
        let energy_breakdown =
            energy.query_energy(&flash_stats, dram_bytes, core_busy, latency.total());
        let outcome = SearchOutcome {
            results,
            documents,
            latency,
            activity,
            energy: energy_breakdown,
            flash_stats,
        };
        if record {
            let walls = StageWalls {
                fine: scan_wall_per_query,
                rerank: downstream_started
                    .map(|t0| t0.elapsed().as_nanos() as u64)
                    .unwrap_or(0),
                ..StageWalls::default()
            };
            record_query_telemetry(
                telemetry,
                "fused_batch",
                &walls,
                &state.window_log,
                None,
                &outcome,
            );
        }
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

/// Shard a fused scan pass across channel/die workers: each shard worker
/// senses its own page subset once and scores all queries whose selection
/// covers the page, in its own per-query state seeded with that query's
/// *current* threshold. Valid whenever every threshold is constant for the
/// duration of the pass — the whole union for a static scan, one
/// window-bounded chunk for an adaptive scan (the caller tightens at the
/// barrier after the pass; admission within the pass is then
/// order-independent). The physical sense count accumulates into
/// `physical_senses` even when a shard fails, so the caller's
/// merge-then-fail accounting sees the work every shard performed.
#[allow(clippy::too_many_arguments)]
fn fused_scan_sharded(
    executor: ScanExecutor,
    pool: &WorkerPool,
    controller: &SsdController,
    region: &StripedRegion,
    union_ranges: &[(usize, usize)],
    shard_count: usize,
    page_base: usize,
    slot_bytes: usize,
    epp: usize,
    oob_layout: &OobLayout,
    plans: &[QueryPlan],
    states: &mut [QueryScanState],
    physical_senses: &mut u64,
    make_entry: &(dyn Fn(usize, usize, usize, u32, OobEntry) -> Option<TtlEntry> + Sync),
) -> Result<()> {
    let geometry = controller.config().geometry;
    let plan = ScanShardPlan::build(&geometry, shard_count, union_ranges, |offset| {
        region
            .page_at(&geometry, page_base + offset)
            .map(|addr| addr.plane_addr())
    })?;
    let thresholds: Vec<u32> = states.iter().map(|s| s.threshold).collect();
    let thresholds = &thresholds;

    type ShardOutput = (Vec<QueryScanState>, u64, Option<ReisError>);
    let run_shard = |shard: &reis_nand::ScanShard| -> ShardOutput {
        let mut local: Vec<QueryScanState> = thresholds
            .iter()
            .map(|&threshold| QueryScanState::new(threshold))
            .collect();
        let mut senses = 0u64;
        let mut bufs = ScoreBufs::default();
        let mut active: Vec<usize> = Vec::with_capacity(plans.len());
        let error = fused_walk_pages(
            controller,
            region,
            shard.ranges(),
            page_base,
            slot_bytes,
            epp,
            oob_layout,
            plans,
            &mut local,
            &mut bufs,
            &mut active,
            &mut senses,
            make_entry,
        )
        .err();
        (local, senses, error)
    };
    let run_shard = &run_shard;
    let shard_outputs: Vec<ShardOutput> = match executor {
        // Pool tasks write into per-shard slots; the merge below walks the
        // slots in shard order, same as the joined-handle order of the
        // spawn path, so the executor cannot change the merged state.
        ScanExecutor::Pooled => {
            let shards: Vec<_> = plan
                .shards()
                .iter()
                .filter(|shard| !shard.is_empty())
                .collect();
            let mut outputs: Vec<Option<ShardOutput>> = (0..shards.len()).map(|_| None).collect();
            pool.scope(|scope| {
                for (shard, output) in shards.into_iter().zip(outputs.iter_mut()) {
                    scope.spawn(move |_ctx| {
                        *output = Some(run_shard(shard));
                    });
                }
            })
            .map_err(|panic| ReisError::WorkerPanic(panic.message))?;
            outputs
                .into_iter()
                .map(|output| output.expect("scope waits for every shard task"))
                .collect()
        }
        ScanExecutor::SpawnScoped => std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .shards()
                .iter()
                .filter(|shard| !shard.is_empty())
                .map(|shard| scope.spawn(move || run_shard(shard)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("fused scan shard worker panicked"))
                .collect()
        }),
    };

    // Merge shard-local states per query (selection is order-free under the
    // total-order quickselect) and the physical sense counts; the work a
    // failing shard performed is still merged before the error surfaces.
    let mut first_error = None;
    for (mut local, shard_senses, error) in shard_outputs {
        *physical_senses += shard_senses;
        for (state, shard_state) in states.iter_mut().zip(local.iter_mut()) {
            state.fine.absorb(shard_state.fine);
            state.ttl.absorb(&mut shard_state.ttl);
        }
        if first_error.is_none() {
            first_error = error;
        }
    }
    match first_error {
        Some(error) => Err(error),
        None => Ok(()),
    }
}
