//! Database deployment (`DB_Deploy` / `IVF_Deploy`).
//!
//! Deployment lays a [`VectorDatabase`] out in flash exactly as Sec. 4.1 and
//! 4.2.1 describe: cluster centroids followed by the binary embeddings in
//! cluster-contiguous storage order in the ESP-SLC embedding region, the
//! INT8 embeddings and document chunks in TLC regions, the
//! embedding-to-document linkage in the OOB bytes of every embedding page,
//! the R-DB record in the coarse-grained FTL, and the R-IVF array in
//! controller DRAM.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use reis_ann::quantize::{BinaryQuantizer, Int8Quantizer};
use reis_nand::oob::{OobEntry, OobLayout};
use reis_nand::Nanos;
use reis_ssd::{DatabaseRecord, RegionKind, SsdController, StripedRegion};
use reis_update::UpdateState;

use crate::database::VectorDatabase;
use crate::error::Result;
use crate::layout::LayoutPlan;
use crate::records::{RIvf, RIvfEntry};

/// The DRAM bookkeeping names of a database's three base regions. Regions
/// are renamed per compaction generation, and releasing a region needs the
/// name it was reserved under, so the names travel with the deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionNames {
    /// Name of the ESP-SLC embedding (and centroid) region.
    pub embeddings: String,
    /// Name of the TLC INT8 region.
    pub int8: String,
    /// Name of the TLC document region.
    pub documents: String,
}

impl RegionNames {
    /// The names of generation `generation` of database `db_id` (generation
    /// 0 is the original deployment; each compaction starts a new one).
    pub fn generation(db_id: u32, generation: u64) -> Self {
        if generation == 0 {
            RegionNames {
                embeddings: format!("db{db_id}/embeddings"),
                int8: format!("db{db_id}/int8"),
                documents: format!("db{db_id}/documents"),
            }
        } else {
            RegionNames {
                embeddings: format!("db{db_id}/g{generation}/embeddings"),
                int8: format!("db{db_id}/g{generation}/int8"),
                documents: format!("db{db_id}/g{generation}/documents"),
            }
        }
    }
}

/// Host-visible handle to a deployed database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployedDatabase {
    /// Database id (the `Did` of the host API).
    pub db_id: u32,
    /// How the database maps onto pages.
    pub layout: LayoutPlan,
    /// Where its regions live (also registered in the coarse FTL).
    pub record: DatabaseRecord,
    /// DRAM bookkeeping names of the current base regions.
    pub region_names: RegionNames,
    /// Per-cluster R-IVF array (empty for flat deployments).
    pub rivf: RIvf,
    /// Mapping from storage order to original entry id.
    pub storage_to_original: Vec<u32>,
    /// Mapping from original entry id to storage order (inverse of
    /// `storage_to_original`; ids become sparse once entries are deleted).
    pub original_to_storage: HashMap<u32, u32>,
    /// Cluster tag of every storage-order position (0 for flat deployments).
    pub storage_tags: Vec<u8>,
    /// Binary quantizer used to encode queries consistently with the
    /// deployed embeddings.
    pub binary_quantizer: BinaryQuantizer,
    /// INT8 quantizer used to encode queries for reranking.
    pub int8_quantizer: Int8Quantizer,
    /// Total latency of writing the database to flash (the offline indexing
    /// cost; not part of query latency).
    pub deploy_latency: Nanos,
    /// Online mutation state: append segments, tombstones, relocations and
    /// mutation counters (see `reis-update`).
    pub updates: UpdateState,
}

impl DeployedDatabase {
    /// Whether the database was deployed with IVF cluster structure.
    pub fn is_ivf(&self) -> bool {
        !self.rivf.is_empty()
    }

    /// Number of entries in the base region (the deployed corpus before
    /// online mutations; see [`DeployedDatabase::live_entries`]).
    pub fn entries(&self) -> usize {
        self.layout.entries
    }

    /// Number of live logical entries: base entries minus tombstones plus
    /// live append-segment entries.
    pub fn live_entries(&self) -> usize {
        self.updates.live_entries(self.layout.entries)
    }

    /// Number of clusters the update path tracks (1 for flat deployments,
    /// which treat the whole database as one pseudo-cluster).
    pub fn update_clusters(&self) -> usize {
        self.rivf.len().max(1)
    }

    /// The OOB layout of its embedding pages.
    pub fn oob_layout(&self, oob_size_bytes: usize) -> Result<OobLayout> {
        Ok(OobLayout::new(
            oob_size_bytes,
            self.layout.embeddings_per_page,
        )?)
    }
}

/// Deploy a database onto the SSD under the given id.
///
/// # Errors
///
/// * Layout errors for entries that do not fit a page.
/// * [`reis_ssd::SsdError::OutOfSpace`] if the flash array is too small.
/// * [`reis_ssd::SsdError::DatabaseAlreadyDeployed`] for a duplicate id.
pub fn deploy(
    ssd: &mut SsdController,
    database: &VectorDatabase,
    db_id: u32,
) -> Result<DeployedDatabase> {
    deploy_inner(ssd, database, db_id, None, None)
}

/// Deploy with *externally assigned* stable entry ids — the snapshot
/// recovery path.
///
/// A fresh [`deploy`] numbers entries `0..n` and records those numbers as
/// the OOB `dadr` linkage. After online mutations the surviving ids are
/// sparse, and a recovered deployment must reproduce them exactly (WAL
/// replay and client-visible search results address entries by stable id).
/// `stable_ids[i]` is the id of the database's `i`-th entry;
/// `min_doc_slot_bytes` floors the document slot size so documents larger
/// than the snapshot corpus's current maximum — still possible under
/// replayed or future mutations, as they were before the crash — keep
/// fitting their slots.
///
/// # Errors
///
/// Same as [`deploy`], plus [`crate::error::ReisError::MalformedDatabase`]
/// if `stable_ids` does not cover the corpus one-to-one.
pub(crate) fn deploy_with_ids(
    ssd: &mut SsdController,
    database: &VectorDatabase,
    db_id: u32,
    stable_ids: &[u32],
    min_doc_slot_bytes: usize,
) -> Result<DeployedDatabase> {
    deploy_inner(
        ssd,
        database,
        db_id,
        Some(stable_ids),
        Some(min_doc_slot_bytes),
    )
}

fn deploy_inner(
    ssd: &mut SsdController,
    database: &VectorDatabase,
    db_id: u32,
    stable_ids: Option<&[u32]>,
    min_doc_slot_bytes: Option<usize>,
) -> Result<DeployedDatabase> {
    let geometry = ssd.config().geometry;
    let mut layout = LayoutPlan::plan(database, &geometry)?;
    if let Some(min_slot) = min_doc_slot_bytes {
        let slot = min_slot.min(geometry.page_size_bytes);
        if slot > layout.doc_slot_bytes {
            layout.doc_slot_bytes = slot;
            layout.docs_per_page = (geometry.page_size_bytes / slot).max(1);
            layout.doc_pages = layout.entries.div_ceil(layout.docs_per_page);
        }
    }
    if let Some(ids) = stable_ids {
        if ids.len() != database.len() {
            return Err(crate::error::ReisError::MalformedDatabase(format!(
                "{} stable ids for {} entries",
                ids.len(),
                database.len()
            )));
        }
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(crate::error::ReisError::MalformedDatabase(
                "duplicate stable ids".into(),
            ));
        }
    }
    let oob_layout = OobLayout::new(geometry.oob_size_bytes, layout.embeddings_per_page)?;

    // Region reservation: centroids and embeddings share the ESP-SLC
    // embedding region; INT8 and documents get TLC regions.
    let region_names = RegionNames::generation(db_id, 0);
    let embedding_region = ssd.reserve_region(
        &region_names.embeddings,
        layout.centroid_pages + layout.embedding_pages,
        RegionKind::BinaryEmbeddings,
    )?;
    let int8_region = ssd.reserve_region(
        &region_names.int8,
        layout.int8_pages,
        RegionKind::Int8Embeddings,
    )?;
    let document_region = ssd.reserve_region(
        &region_names.documents,
        layout.doc_pages,
        RegionKind::Documents,
    )?;

    // Storage order: cluster-contiguous for IVF, entry order for flat.
    // `storage_to_entry` indexes the database arrays; `storage_to_original`
    // is the stable-id view recorded in the OOB linkage (identical unless
    // recovery supplied explicit ids).
    let (storage_to_entry, storage_tags, rivf) = storage_order(database, &layout);
    let storage_to_original: Vec<u32> = match stable_ids {
        Some(ids) => storage_to_entry
            .iter()
            .map(|&entry| ids[entry as usize])
            .collect(),
        None => storage_to_entry.clone(),
    };

    let mut latency = Nanos::ZERO;
    latency += write_embedding_region(
        ssd,
        database,
        &layout,
        &oob_layout,
        &embedding_region,
        &storage_to_entry,
        &storage_to_original,
        &storage_tags,
    )?;
    latency += write_int8_region(ssd, database, &layout, &int8_region, &storage_to_entry)?;
    latency += write_document_region(ssd, database, &layout, &document_region)?;

    let record = DatabaseRecord {
        db_id,
        embedding_region,
        int8_region,
        document_region,
        entries: layout.entries,
    };
    ssd.coarse_ftl_mut().deploy(record)?;
    ssd.dram_mut()
        .allocate(&format!("db{db_id}/r-ivf"), rivf.footprint_bytes())?;

    let original_to_storage = storage_to_original
        .iter()
        .enumerate()
        .map(|(storage, &original)| (original, storage as u32))
        .collect();
    let updates = UpdateState::new(layout.entries, rivf.len().max(1));
    Ok(DeployedDatabase {
        db_id,
        layout,
        record,
        region_names,
        rivf,
        storage_to_original,
        original_to_storage,
        storage_tags,
        binary_quantizer: database.binary_quantizer().clone(),
        int8_quantizer: database.int8_quantizer().clone(),
        deploy_latency: latency,
        updates,
    })
}

/// Compute the storage order, per-position cluster tags, and the R-IVF array.
fn storage_order(database: &VectorDatabase, layout: &LayoutPlan) -> (Vec<u32>, Vec<u8>, RIvf) {
    match database.clusters() {
        Some(info) => {
            let mut order = Vec::with_capacity(database.len());
            let mut tags = Vec::with_capacity(database.len());
            let mut entries = Vec::with_capacity(info.nlist());
            for (cluster, members) in info.lists.iter().enumerate() {
                let tag = (cluster % 256) as u8;
                let first = order.len();
                for &id in members {
                    order.push(id as u32);
                    tags.push(tag);
                }
                let (centroid_page, centroid_slot) = layout.centroid_location(cluster);
                let entry = if members.is_empty() {
                    RIvfEntry {
                        centroid_page: centroid_page as u32,
                        centroid_slot: centroid_slot as u32,
                        first_embedding: 1,
                        last_embedding: 0,
                        tag,
                    }
                } else {
                    RIvfEntry {
                        centroid_page: centroid_page as u32,
                        centroid_slot: centroid_slot as u32,
                        first_embedding: first as u32,
                        last_embedding: (order.len() - 1) as u32,
                        tag,
                    }
                };
                entries.push(entry);
            }
            (order, tags, RIvf::new(entries))
        }
        None => {
            let order: Vec<u32> = (0..database.len() as u32).collect();
            let tags = vec![0u8; database.len()];
            (order, tags, RIvf::new(Vec::new()))
        }
    }
}

pub(crate) fn pad_slot(bytes: &[u8], slot: usize) -> Vec<u8> {
    let mut out = vec![0u8; slot];
    out[..bytes.len()].copy_from_slice(bytes);
    out
}

#[allow(clippy::too_many_arguments)]
fn write_embedding_region(
    ssd: &mut SsdController,
    database: &VectorDatabase,
    layout: &LayoutPlan,
    oob_layout: &OobLayout,
    region: &StripedRegion,
    storage_to_entry: &[u32],
    storage_to_original: &[u32],
    storage_tags: &[u8],
) -> Result<Nanos> {
    let mut latency = Nanos::ZERO;
    let slot = layout.embedding_slot_bytes;
    let epp = layout.embeddings_per_page;

    // Centroid pages first.
    if let Some(info) = database.clusters() {
        for page in 0..layout.centroid_pages {
            let mut data = Vec::with_capacity(epp * slot);
            let mut oob_entries = Vec::with_capacity(epp);
            for s in 0..epp {
                let cluster = page * epp + s;
                if cluster >= info.nlist() {
                    break;
                }
                data.extend(pad_slot(info.centroids[cluster].as_bytes(), slot));
                oob_entries.push(OobEntry {
                    dadr: cluster as u32,
                    radr: cluster as u32,
                    tag: (cluster % 256) as u8,
                });
            }
            let oob = oob_layout.pack(&oob_entries)?;
            latency += ssd.program_region_page(region, page, RegionKind::Centroids, &data, &oob)?;
        }
    }

    // Database embedding pages, in storage order.
    for page in 0..layout.embedding_pages {
        let mut data = Vec::with_capacity(epp * slot);
        let mut oob_entries = Vec::with_capacity(epp);
        for s in 0..epp {
            let storage_index = page * epp + s;
            if storage_index >= layout.entries {
                break;
            }
            let entry = storage_to_entry[storage_index] as usize;
            data.extend(pad_slot(database.binary()[entry].as_bytes(), slot));
            oob_entries.push(OobEntry {
                dadr: storage_to_original[storage_index],
                radr: storage_index as u32,
                tag: storage_tags[storage_index],
            });
        }
        let oob = oob_layout.pack(&oob_entries)?;
        latency += ssd.program_region_page(
            region,
            layout.centroid_pages + page,
            RegionKind::BinaryEmbeddings,
            &data,
            &oob,
        )?;
    }
    Ok(latency)
}

fn write_int8_region(
    ssd: &mut SsdController,
    database: &VectorDatabase,
    layout: &LayoutPlan,
    region: &StripedRegion,
    storage_to_entry: &[u32],
) -> Result<Nanos> {
    let mut latency = Nanos::ZERO;
    for page in 0..layout.int8_pages {
        let mut data = Vec::with_capacity(layout.int8_per_page * layout.int8_bytes);
        for s in 0..layout.int8_per_page {
            let storage_index = page * layout.int8_per_page + s;
            if storage_index >= layout.entries {
                break;
            }
            let entry = storage_to_entry[storage_index] as usize;
            data.extend(database.int8()[entry].as_slice().iter().map(|&v| v as u8));
        }
        latency += ssd.program_region_page(region, page, RegionKind::Int8Embeddings, &data, &[])?;
    }
    Ok(latency)
}

fn write_document_region(
    ssd: &mut SsdController,
    database: &VectorDatabase,
    layout: &LayoutPlan,
    region: &StripedRegion,
) -> Result<Nanos> {
    let mut latency = Nanos::ZERO;
    for page in 0..layout.doc_pages {
        let mut data = vec![0u8; layout.docs_per_page * layout.doc_slot_bytes];
        for s in 0..layout.docs_per_page {
            let doc_index = page * layout.docs_per_page + s;
            if doc_index >= layout.entries {
                break;
            }
            let doc = &database.documents()[doc_index];
            let start = s * layout.doc_slot_bytes;
            data[start..start + 4].copy_from_slice(&(doc.len() as u32).to_le_bytes());
            data[start + 4..start + 4 + doc.len()].copy_from_slice(doc);
        }
        latency += ssd.program_region_page(region, page, RegionKind::Documents, &data, &[])?;
    }
    Ok(latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reis_ssd::SsdConfig;

    fn vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| (((i * 31 + d * 7) % 23) as f32 - 11.0) / 5.0)
                    .collect()
            })
            .collect()
    }

    fn documents(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("chunk number {i} with some body text").into_bytes())
            .collect()
    }

    #[test]
    fn flat_deployment_registers_regions_and_writes_all_pages() {
        let mut ssd = SsdController::new(SsdConfig::tiny());
        let db = VectorDatabase::flat(&vectors(60, 64), documents(60)).unwrap();
        let deployed = deploy(&mut ssd, &db, 1).unwrap();
        assert!(!deployed.is_ivf());
        assert_eq!(deployed.entries(), 60);
        assert!(deployed.deploy_latency > Nanos::ZERO);
        // The R-DB record is registered.
        let record = ssd.coarse_ftl().record(1).unwrap();
        assert_eq!(record.entries, 60);
        // Every embedding page is programmed.
        let geom = ssd.config().geometry;
        for offset in 0..deployed.layout.embedding_pages {
            let addr = record.embedding_region.page_at(&geom, offset).unwrap();
            assert!(ssd.device().is_programmed(addr).unwrap());
        }
        // Program counts match the layout's page totals.
        assert_eq!(
            ssd.device().stats().page_programs as usize,
            deployed.layout.total_pages()
        );
    }

    #[test]
    fn ivf_deployment_builds_rivf_covering_every_entry() {
        let mut ssd = SsdController::new(SsdConfig::tiny());
        let db = VectorDatabase::ivf(&vectors(90, 64), documents(90), 5).unwrap();
        let deployed = deploy(&mut ssd, &db, 3).unwrap();
        assert!(deployed.is_ivf());
        assert_eq!(deployed.rivf.len(), 5);
        let covered: usize = deployed
            .rivf
            .entries()
            .iter()
            .map(RIvfEntry::member_count)
            .sum();
        assert_eq!(covered, 90);
        // Cluster ranges are contiguous and ordered.
        let mut expected_first = 0u32;
        for entry in deployed.rivf.entries() {
            if entry.member_count() == 0 {
                continue;
            }
            assert_eq!(entry.first_embedding, expected_first);
            expected_first = entry.last_embedding + 1;
        }
        // Storage order is a permutation of the original ids.
        let mut ids = deployed.storage_to_original.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..90).collect::<Vec<u32>>());
        // R-IVF footprint is accounted in DRAM.
        assert_eq!(
            ssd.dram().allocation("db3/r-ivf"),
            Some(deployed.rivf.footprint_bytes())
        );
    }

    #[test]
    fn oob_linkage_points_back_to_original_ids() {
        let mut ssd = SsdController::new(SsdConfig::tiny());
        let db = VectorDatabase::ivf(&vectors(40, 64), documents(40), 4).unwrap();
        let deployed = deploy(&mut ssd, &db, 9).unwrap();
        let geom = ssd.config().geometry;
        let oob_layout = deployed.oob_layout(geom.oob_size_bytes).unwrap();
        // Read back the OOB of the first database-embedding page and verify
        // every entry's DADR equals the original id recorded at deployment.
        let record = deployed.record;
        let addr = record
            .embedding_region
            .page_at(&geom, deployed.layout.centroid_pages)
            .unwrap();
        let (oob, _) = ssd.device_mut().read_oob(addr).unwrap();
        for slot in 0..deployed.layout.embeddings_per_page.min(deployed.entries()) {
            let entry = oob_layout.unpack_entry(&oob, slot).unwrap();
            assert_eq!(entry.dadr, deployed.storage_to_original[slot]);
            assert_eq!(entry.radr, slot as u32);
            assert_eq!(entry.tag, deployed.storage_tags[slot]);
        }
    }

    #[test]
    fn duplicate_database_ids_are_rejected() {
        let mut ssd = SsdController::new(SsdConfig::tiny());
        let db = VectorDatabase::flat(&vectors(10, 32), documents(10)).unwrap();
        deploy(&mut ssd, &db, 7).unwrap();
        assert!(deploy(&mut ssd, &db, 7).is_err());
    }
}
