//! The host-side vector database handed to `DB_Deploy` / `IVF_Deploy`.
//!
//! A [`VectorDatabase`] bundles everything REIS needs to lay a RAG corpus out
//! in flash: the binary and INT8 quantized embeddings, the document chunks,
//! and (for IVF deployments) the cluster structure. It is built from raw
//! `f32` embeddings plus documents, mirroring the indexing stage of the RAG
//! pipeline which runs offline on the host.

use serde::{Deserialize, Serialize};

use reis_ann::ivf::{IvfBqIndex, IvfConfig};
use reis_ann::quantize::{BinaryQuantizer, Int8Quantizer};
use reis_ann::vector::{BinaryVector, Int8Vector};

use crate::error::{ReisError, Result};

/// Cluster structure of an IVF-organised database (the `CI` argument of
/// `IVF_Deploy`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterInfo {
    /// Binary-quantized centroid of every cluster.
    pub centroids: Vec<BinaryVector>,
    /// Member ids (into the database entry order) of every cluster.
    pub lists: Vec<Vec<usize>>,
}

impl ClusterInfo {
    /// Number of clusters.
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }
}

/// A complete vector database ready for deployment into REIS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorDatabase {
    dim: usize,
    binary: Vec<BinaryVector>,
    int8: Vec<Int8Vector>,
    documents: Vec<Vec<u8>>,
    binary_quantizer: BinaryQuantizer,
    int8_quantizer: Int8Quantizer,
    clusters: Option<ClusterInfo>,
}

impl VectorDatabase {
    /// Build a flat (non-IVF) database from raw `f32` embeddings and their
    /// document chunks.
    ///
    /// # Errors
    ///
    /// * [`ReisError::MalformedDatabase`] if the corpus is empty or the
    ///   number of documents does not match the number of embeddings.
    /// * Quantizer training errors for inconsistent dimensionality.
    pub fn flat(vectors: &[Vec<f32>], documents: Vec<Vec<u8>>) -> Result<Self> {
        Self::validate(vectors, &documents)?;
        let binary_quantizer = BinaryQuantizer::fit(vectors)?;
        let int8_quantizer = Int8Quantizer::fit(vectors)?;
        Ok(VectorDatabase {
            dim: vectors[0].len(),
            binary: binary_quantizer.quantize_all(vectors)?,
            int8: int8_quantizer.quantize_all(vectors)?,
            documents,
            binary_quantizer,
            int8_quantizer,
            clusters: None,
        })
    }

    /// Build an IVF-organised database with `nlist` clusters from raw `f32`
    /// embeddings and their document chunks.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VectorDatabase::flat`], plus IVF construction
    /// errors (e.g. `nlist` larger than the corpus).
    pub fn ivf(vectors: &[Vec<f32>], documents: Vec<Vec<u8>>, nlist: usize) -> Result<Self> {
        Self::validate(vectors, &documents)?;
        let index = IvfBqIndex::build(vectors.to_vec(), IvfConfig::new(nlist))?;
        Ok(Self::from_ivf_index(&index, documents))
    }

    /// Build a flat database from raw `f32` embeddings using *given*
    /// quantizers instead of fitting fresh ones.
    ///
    /// The online update path freezes a deployment's quantizers (every
    /// mutation is encoded with them), so a reference rebuild of the same
    /// logical corpus — the ground truth the mutation property tests compare
    /// against — must quantize with the original quantizers, not ones
    /// re-fitted to the surviving vectors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VectorDatabase::flat`], plus quantization errors
    /// for vectors whose dimensionality does not match the quantizers.
    pub fn flat_with_quantizers(
        vectors: &[Vec<f32>],
        documents: Vec<Vec<u8>>,
        binary_quantizer: BinaryQuantizer,
        int8_quantizer: Int8Quantizer,
    ) -> Result<Self> {
        Self::validate(vectors, &documents)?;
        Ok(VectorDatabase {
            dim: binary_quantizer.dim(),
            binary: binary_quantizer.quantize_all(vectors)?,
            int8: int8_quantizer.quantize_all(vectors)?,
            documents,
            binary_quantizer,
            int8_quantizer,
            clusters: None,
        })
    }

    /// Build an IVF-organised database from raw `f32` embeddings with
    /// *given* quantizers and an explicit cluster structure (centroids and
    /// member lists), instead of training k-means.
    ///
    /// Companion of [`VectorDatabase::flat_with_quantizers`] for IVF
    /// deployments: a reference rebuild after online mutations must reuse
    /// the original centroids and the mutated system's cluster assignment to
    /// be comparable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VectorDatabase::flat_with_quantizers`], plus
    /// [`ReisError::MalformedDatabase`] if the member lists are not a
    /// partition of the entry indices.
    pub fn ivf_with_clusters(
        vectors: &[Vec<f32>],
        documents: Vec<Vec<u8>>,
        binary_quantizer: BinaryQuantizer,
        int8_quantizer: Int8Quantizer,
        clusters: ClusterInfo,
    ) -> Result<Self> {
        Self::validate(vectors, &documents)?;
        let mut seen = vec![false; vectors.len()];
        for &member in clusters.lists.iter().flatten() {
            if member >= vectors.len() || seen[member] {
                return Err(ReisError::MalformedDatabase(format!(
                    "cluster member {member} is out of range or duplicated"
                )));
            }
            seen[member] = true;
        }
        if seen.iter().any(|&s| !s) {
            return Err(ReisError::MalformedDatabase(
                "cluster lists do not cover every entry".into(),
            ));
        }
        Ok(VectorDatabase {
            dim: binary_quantizer.dim(),
            binary: binary_quantizer.quantize_all(vectors)?,
            int8: int8_quantizer.quantize_all(vectors)?,
            documents,
            binary_quantizer,
            int8_quantizer,
            clusters: Some(clusters),
        })
    }

    /// Rebuild a database from *already-quantized* parts — the snapshot
    /// recovery path.
    ///
    /// A durable snapshot stores the binary/INT8 codes read back from
    /// flash, not the original `f32` embeddings (REIS never keeps those
    /// after deployment), so recovery cannot go through the quantizing
    /// constructors: it reassembles the database from the codes directly.
    /// Cluster member lists, when given, must partition the entry indices
    /// exactly as [`VectorDatabase::ivf_with_clusters`] requires.
    ///
    /// # Errors
    ///
    /// [`ReisError::MalformedDatabase`] if the corpus is empty, the
    /// binary/INT8/document counts disagree, any code has the wrong byte
    /// width for `dim`, or the cluster lists are not a partition.
    #[allow(clippy::too_many_arguments)]
    pub fn from_quantized_parts(
        dim: usize,
        binary: Vec<BinaryVector>,
        int8: Vec<Int8Vector>,
        documents: Vec<Vec<u8>>,
        binary_quantizer: BinaryQuantizer,
        int8_quantizer: Int8Quantizer,
        clusters: Option<ClusterInfo>,
    ) -> Result<Self> {
        if binary.is_empty() {
            return Err(ReisError::MalformedDatabase("no embeddings".into()));
        }
        if binary.len() != int8.len() || binary.len() != documents.len() {
            return Err(ReisError::MalformedDatabase(format!(
                "{} binary codes, {} INT8 codes, {} documents",
                binary.len(),
                int8.len(),
                documents.len()
            )));
        }
        if binary_quantizer.dim() != dim || int8_quantizer.dim() != dim {
            return Err(ReisError::MalformedDatabase(format!(
                "quantizers cover {} / {} dimensions, database stores {dim}",
                binary_quantizer.dim(),
                int8_quantizer.dim()
            )));
        }
        for v in &binary {
            if v.dim() != dim {
                return Err(ReisError::MalformedDatabase(format!(
                    "binary code of {} dimensions in a {dim}-dimensional database",
                    v.dim()
                )));
            }
        }
        for v in &int8 {
            if v.as_slice().len() != dim {
                return Err(ReisError::MalformedDatabase(format!(
                    "INT8 code of {} dimensions in a {dim}-dimensional database",
                    v.as_slice().len()
                )));
            }
        }
        if let Some(info) = &clusters {
            let mut seen = vec![false; binary.len()];
            for &member in info.lists.iter().flatten() {
                if member >= binary.len() || seen[member] {
                    return Err(ReisError::MalformedDatabase(format!(
                        "cluster member {member} is out of range or duplicated"
                    )));
                }
                seen[member] = true;
            }
            if seen.iter().any(|&s| !s) {
                return Err(ReisError::MalformedDatabase(
                    "cluster lists do not cover every entry".into(),
                ));
            }
        }
        Ok(VectorDatabase {
            dim,
            binary,
            int8,
            documents,
            binary_quantizer,
            int8_quantizer,
            clusters,
        })
    }

    /// Build an IVF-organised database from an already-trained
    /// [`IvfBqIndex`] (useful when the same index also drives a CPU
    /// baseline, so both systems search identical clusters).
    pub fn from_ivf_index(index: &IvfBqIndex, documents: Vec<Vec<u8>>) -> Self {
        VectorDatabase {
            dim: index.dim(),
            binary: index.binary_vectors().to_vec(),
            int8: index.int8_vectors().to_vec(),
            documents,
            binary_quantizer: index.binary_quantizer().clone(),
            int8_quantizer: index.int8_quantizer().clone(),
            clusters: Some(ClusterInfo {
                centroids: index.centroid_binary().to_vec(),
                lists: index.lists().to_vec(),
            }),
        }
    }

    fn validate(vectors: &[Vec<f32>], documents: &[Vec<u8>]) -> Result<()> {
        if vectors.is_empty() {
            return Err(ReisError::MalformedDatabase("no embeddings".into()));
        }
        if vectors.len() != documents.len() {
            return Err(ReisError::MalformedDatabase(format!(
                "{} embeddings but {} documents",
                vectors.len(),
                documents.len()
            )));
        }
        Ok(())
    }

    /// Number of entries (embedding/document pairs).
    pub fn len(&self) -> usize {
        self.binary.len()
    }

    /// Whether the database holds no entries (never true for a constructed
    /// database).
    pub fn is_empty(&self) -> bool {
        self.binary.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Binary embeddings in entry order.
    pub fn binary(&self) -> &[BinaryVector] {
        &self.binary
    }

    /// INT8 embeddings in entry order.
    pub fn int8(&self) -> &[Int8Vector] {
        &self.int8
    }

    /// Document chunks in entry order.
    pub fn documents(&self) -> &[Vec<u8>] {
        &self.documents
    }

    /// The binary quantizer fitted to the corpus (used by the host to encode
    /// queries the same way).
    pub fn binary_quantizer(&self) -> &BinaryQuantizer {
        &self.binary_quantizer
    }

    /// The INT8 quantizer fitted to the corpus.
    pub fn int8_quantizer(&self) -> &Int8Quantizer {
        &self.int8_quantizer
    }

    /// Cluster structure, if the database is IVF-organised.
    pub fn clusters(&self) -> Option<&ClusterInfo> {
        self.clusters.as_ref()
    }

    /// Byte footprint of one binary embedding.
    pub fn binary_bytes(&self) -> usize {
        self.dim.div_ceil(8)
    }

    /// Byte footprint of one INT8 embedding.
    pub fn int8_bytes(&self) -> usize {
        self.dim
    }

    /// Size of the largest document chunk, in bytes.
    pub fn max_document_bytes(&self) -> usize {
        self.documents.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| (((i * 13 + d * 7) % 29) as f32 - 14.0) / 7.0)
                    .collect()
            })
            .collect()
    }

    fn documents(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("document chunk {i}").into_bytes())
            .collect()
    }

    #[test]
    fn flat_database_quantizes_every_entry() {
        let db = VectorDatabase::flat(&vectors(50, 64), documents(50)).unwrap();
        assert_eq!(db.len(), 50);
        assert_eq!(db.dim(), 64);
        assert_eq!(db.binary().len(), 50);
        assert_eq!(db.int8().len(), 50);
        assert_eq!(db.binary_bytes(), 8);
        assert_eq!(db.int8_bytes(), 64);
        assert!(db.clusters().is_none());
        assert!(db.max_document_bytes() > 0);
        assert!(!db.is_empty());
    }

    #[test]
    fn ivf_database_carries_cluster_info_covering_all_entries() {
        let db = VectorDatabase::ivf(&vectors(120, 32), documents(120), 6).unwrap();
        let clusters = db.clusters().expect("IVF database must carry clusters");
        assert_eq!(clusters.nlist(), 6);
        let covered: usize = clusters.lists.iter().map(Vec::len).sum();
        assert_eq!(covered, 120);
    }

    #[test]
    fn mismatched_documents_are_rejected() {
        assert!(matches!(
            VectorDatabase::flat(&vectors(10, 8), documents(9)),
            Err(ReisError::MalformedDatabase(_))
        ));
        assert!(matches!(
            VectorDatabase::flat(&[], documents(0)),
            Err(ReisError::MalformedDatabase(_))
        ));
    }

    #[test]
    fn query_quantization_matches_database_quantization() {
        let vecs = vectors(40, 16);
        let db = VectorDatabase::flat(&vecs, documents(40)).unwrap();
        let q = db.binary_quantizer().quantize(&vecs[7]).unwrap();
        assert_eq!(q.hamming_distance(&db.binary()[7]), 0);
    }
}
