//! Database layout planning.
//!
//! REIS maps a vector database onto the flash array as separate regions
//! (Sec. 4.1): an ESP-SLC *embedding region* (cluster centroids followed by
//! binary embeddings, stored cluster-contiguously), a TLC *INT8 region* for
//! reranking data, and a TLC *document region* holding one chunk per 4 KB
//! sub-page (or full page for large chunks). [`LayoutPlan`] computes how many
//! pages each region needs and how entries map to mini-pages, honouring the
//! OOB capacity needed for the embedding–document linkage.

use serde::{Deserialize, Serialize};

use reis_nand::oob::OobEntry;
use reis_nand::Geometry;

use crate::database::VectorDatabase;
use crate::error::{ReisError, Result};

/// Size of a document sub-page slot in bytes (Sec. 4.1.1 assigns each chunk
/// a 4 KB sub-page or a full 16 KB page).
pub const DOC_SUBPAGE_BYTES: usize = 4096;

/// How a database maps onto flash pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutPlan {
    /// Number of database entries.
    pub entries: usize,
    /// Bytes of one binary embedding (one mini-page).
    pub embedding_bytes: usize,
    /// Bytes reserved per embedding slot: the embedding size rounded up to
    /// the next power of two so the slot size always divides the page size,
    /// which Input Broadcasting requires for its aligned query copies.
    pub embedding_slot_bytes: usize,
    /// Binary embeddings stored per flash page (bounded by both the page
    /// size and the OOB capacity needed for their linkage entries).
    pub embeddings_per_page: usize,
    /// Pages of the embedding region holding database embeddings.
    pub embedding_pages: usize,
    /// Pages of the embedding region holding IVF centroids (0 for flat
    /// deployments).
    pub centroid_pages: usize,
    /// Number of IVF centroids (0 for flat deployments).
    pub centroids: usize,
    /// Bytes of one INT8 embedding.
    pub int8_bytes: usize,
    /// INT8 embeddings stored per flash page.
    pub int8_per_page: usize,
    /// Pages of the INT8 region.
    pub int8_pages: usize,
    /// Bytes reserved per document chunk (4 KB sub-page or a full page).
    pub doc_slot_bytes: usize,
    /// Document chunks stored per flash page.
    pub docs_per_page: usize,
    /// Pages of the document region.
    pub doc_pages: usize,
}

impl LayoutPlan {
    /// Compute the layout of `database` on a device with `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`ReisError::MalformedDatabase`] if an embedding, INT8 vector
    /// or document chunk does not fit in a single page.
    pub fn plan(database: &VectorDatabase, geometry: &Geometry) -> Result<Self> {
        let page = geometry.page_size_bytes;
        let embedding_bytes = database.binary_bytes();
        if embedding_bytes == 0 || embedding_bytes > page {
            return Err(ReisError::MalformedDatabase(format!(
                "binary embedding of {embedding_bytes} bytes does not fit a {page}-byte page"
            )));
        }
        let int8_bytes = database.int8_bytes();
        if int8_bytes > page {
            return Err(ReisError::MalformedDatabase(format!(
                "INT8 embedding of {int8_bytes} bytes does not fit a {page}-byte page"
            )));
        }
        // Each document slot stores a 4-byte length prefix followed by the
        // chunk bytes, so chunks must leave room for the prefix.
        let max_doc = database.max_document_bytes();
        if max_doc + 4 > page {
            return Err(ReisError::MalformedDatabase(format!(
                "document chunk of {max_doc} bytes does not fit a {page}-byte page"
            )));
        }

        // Embeddings per page: bounded by page capacity and by the OOB space
        // needed for one linkage entry per embedding. Slots are padded to a
        // power of two so the broadcast query copies stay page-aligned.
        let embedding_slot_bytes = embedding_bytes.next_power_of_two().min(page);
        let by_capacity = page / embedding_slot_bytes;
        let by_oob = geometry.oob_size_bytes / OobEntry::SIZE;
        let embeddings_per_page = by_capacity.min(by_oob).max(1);

        let entries = database.len();
        let embedding_pages = entries.div_ceil(embeddings_per_page);
        let centroids = database.clusters().map(ClusterCount::count).unwrap_or(0);
        let centroid_pages = if centroids == 0 {
            0
        } else {
            centroids.div_ceil(embeddings_per_page)
        };

        let int8_per_page = (page / int8_bytes).max(1);
        let int8_pages = entries.div_ceil(int8_per_page);

        let doc_slot_bytes = if max_doc + 4 <= DOC_SUBPAGE_BYTES {
            DOC_SUBPAGE_BYTES.min(page)
        } else {
            page
        };
        let docs_per_page = (page / doc_slot_bytes).max(1);
        let doc_pages = entries.div_ceil(docs_per_page);

        Ok(LayoutPlan {
            entries,
            embedding_bytes,
            embedding_slot_bytes,
            embeddings_per_page,
            embedding_pages,
            centroid_pages,
            centroids,
            int8_bytes,
            int8_per_page,
            int8_pages,
            doc_slot_bytes,
            docs_per_page,
            doc_pages,
        })
    }

    /// The layout of a database with the same per-page parameters (slot
    /// sizes, entries per page, centroids) but a different entry count —
    /// what compaction needs when it rewrites the surviving corpus densely:
    /// only the page counts change.
    pub fn with_entries(&self, entries: usize) -> LayoutPlan {
        LayoutPlan {
            entries,
            embedding_pages: entries.div_ceil(self.embeddings_per_page),
            int8_pages: entries.div_ceil(self.int8_per_page),
            doc_pages: entries.div_ceil(self.docs_per_page),
            ..*self
        }
    }

    /// Total flash pages the deployment needs across all regions.
    pub fn total_pages(&self) -> usize {
        self.centroid_pages + self.embedding_pages + self.int8_pages + self.doc_pages
    }

    /// Page offset (within the embedding region) and mini-page slot of the
    /// `index`-th database embedding in storage order.
    pub fn embedding_location(&self, index: usize) -> (usize, usize) {
        (
            index / self.embeddings_per_page,
            index % self.embeddings_per_page,
        )
    }

    /// Page offset (within the INT8 region) and slot of the `index`-th INT8
    /// embedding.
    pub fn int8_location(&self, index: usize) -> (usize, usize) {
        (index / self.int8_per_page, index % self.int8_per_page)
    }

    /// Page offset (within the document region) and slot of the `index`-th
    /// document chunk.
    pub fn document_location(&self, index: usize) -> (usize, usize) {
        (index / self.docs_per_page, index % self.docs_per_page)
    }

    /// Page offset (within the centroid sub-region) and mini-page slot of the
    /// `cluster`-th centroid.
    pub fn centroid_location(&self, cluster: usize) -> (usize, usize) {
        (
            cluster / self.embeddings_per_page,
            cluster % self.embeddings_per_page,
        )
    }

    /// The range of embedding-region pages (inclusive start, exclusive end)
    /// that hold storage-order embedding indices `first..=last`.
    pub fn embedding_page_range(&self, first: usize, last: usize) -> (usize, usize) {
        (
            first / self.embeddings_per_page,
            last / self.embeddings_per_page + 1,
        )
    }
}

/// Helper trait-free adapter so `LayoutPlan::plan` can count clusters without
/// depending on the `ClusterInfo` field layout.
struct ClusterCount;

impl ClusterCount {
    fn count(info: &crate::database::ClusterInfo) -> usize {
        info.nlist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| (((i + d) % 17) as f32 - 8.0) / 4.0)
                    .collect()
            })
            .collect()
    }

    fn docs(n: usize, bytes: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![(i % 251) as u8; bytes]).collect()
    }

    #[test]
    fn paper_reference_layout_fits_128_embeddings_per_page() {
        // 1024-d binary embeddings on a 16 KB page with a 2208-byte OOB.
        let db = VectorDatabase::flat(&vectors(300, 1024), docs(300, 2000)).unwrap();
        let plan = LayoutPlan::plan(&db, &Geometry::reis_ssd1()).unwrap();
        assert_eq!(plan.embedding_bytes, 128);
        assert_eq!(plan.embeddings_per_page, 128);
        assert_eq!(plan.embedding_pages, 3);
        assert_eq!(plan.int8_per_page, 16);
        assert_eq!(plan.doc_slot_bytes, DOC_SUBPAGE_BYTES);
        assert_eq!(plan.docs_per_page, 4);
        assert_eq!(plan.doc_pages, 75);
        assert_eq!(plan.centroid_pages, 0);
    }

    #[test]
    fn oob_capacity_bounds_embeddings_per_page_on_small_devices() {
        // Tiny geometry: 4 KB pages, 256-byte OOB -> at most 28 linkage entries.
        let db = VectorDatabase::flat(&vectors(100, 64), docs(100, 100)).unwrap();
        let plan = LayoutPlan::plan(&db, &Geometry::tiny()).unwrap();
        assert!(plan.embeddings_per_page <= 256 / OobEntry::SIZE);
        assert!(plan.embeddings_per_page * OobEntry::SIZE <= Geometry::tiny().oob_size_bytes);
    }

    #[test]
    fn locations_are_consistent_with_page_counts() {
        let db = VectorDatabase::ivf(&vectors(200, 64), docs(200, 100), 8).unwrap();
        let plan = LayoutPlan::plan(&db, &Geometry::tiny()).unwrap();
        assert_eq!(plan.centroids, 8);
        assert!(plan.centroid_pages >= 1);
        for i in 0..plan.entries {
            let (page, slot) = plan.embedding_location(i);
            assert!(page < plan.embedding_pages);
            assert!(slot < plan.embeddings_per_page);
            let (dpage, dslot) = plan.document_location(i);
            assert!(dpage < plan.doc_pages);
            assert!(dslot < plan.docs_per_page);
            let (ipage, islot) = plan.int8_location(i);
            assert!(ipage < plan.int8_pages);
            assert!(islot < plan.int8_per_page);
        }
        let (start, end) = plan.embedding_page_range(0, plan.entries - 1);
        assert_eq!(start, 0);
        assert_eq!(end, plan.embedding_pages);
        assert!(plan.total_pages() > plan.embedding_pages);
    }

    #[test]
    fn oversized_documents_are_rejected() {
        let db = VectorDatabase::flat(&vectors(4, 16), docs(4, 5000)).unwrap();
        // 5000-byte chunks exceed the 4096-byte pages of the tiny geometry.
        assert!(matches!(
            LayoutPlan::plan(&db, &Geometry::tiny()),
            Err(ReisError::MalformedDatabase(_))
        ));
        // But they fit a 16 KB page device, occupying a full page each.
        let plan = LayoutPlan::plan(&db, &Geometry::reis_ssd1()).unwrap();
        assert_eq!(plan.doc_slot_bytes, 16 * 1024);
        assert_eq!(plan.docs_per_page, 1);
    }
}
