//! The in-storage ANNS engine (Sec. 4.3).
//!
//! The engine executes searches *functionally* on the simulated flash
//! device: it broadcasts the query into every plane's cache latch, senses
//! embedding pages, XORs them against the query in the page buffers, counts
//! differing bits with the fail-bit counter, filters by distance with the
//! pass/fail checker, streams the surviving Temporal-Top-List entries (with
//! the OOB linkage they carry) to the controller, runs quickselect, fetches
//! the INT8 copies for reranking, quicksorts the survivors and finally reads
//! the documents of the top-k results. Every step counts its activity in a
//! [`crate::perf::QueryActivity`] so the latency model can price it.

use std::collections::{BTreeMap, BTreeSet};

use reis_ann::topk::Neighbor;
use reis_ann::vector::{BinaryVector, Int8Vector};
use reis_ssd::{RegionKind, SsdController, StripedRegion};

use crate::config::ReisConfig;
use crate::deploy::DeployedDatabase;
use crate::error::{ReisError, Result};
use crate::perf::QueryActivity;
use crate::records::{TemporalTopList, TtlEntry};

/// Activity counters of one scan pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCounts {
    /// Pages sensed.
    pub pages: usize,
    /// Embedding slots whose distance was computed.
    pub slots_scanned: usize,
    /// Entries that passed the distance filter and were transferred.
    pub entries_passed: usize,
}

/// The functional in-storage search engine, borrowing the SSD controller for
/// the duration of one query.
#[derive(Debug)]
pub struct InStorageEngine<'a> {
    ssd: &'a mut SsdController,
    config: ReisConfig,
}

impl<'a> InStorageEngine<'a> {
    /// Create an engine bound to a controller and configuration.
    pub fn new(ssd: &'a mut SsdController, config: ReisConfig) -> Self {
        InStorageEngine { ssd, config }
    }

    /// Broadcast the query embedding into the cache latches of every die
    /// (Input Broadcasting, optionally multi-plane).
    pub fn broadcast_query(&mut self, db: &DeployedDatabase, query: &BinaryVector) -> Result<()> {
        let slot = db.layout.embedding_slot_bytes;
        let mut payload = vec![0u8; slot];
        payload[..query.as_bytes().len()].copy_from_slice(query.as_bytes());
        let geometry = self.ssd.config().geometry;
        let multi_plane = self.config.optimizations.multi_plane_ibc;
        for channel in 0..geometry.channels {
            for die in 0..geometry.dies_per_channel {
                self.ssd.device_mut().input_broadcast(channel, die, &payload, multi_plane)?;
            }
        }
        Ok(())
    }

    /// Scan a set of pages of the embedding region, computing in-plane
    /// distances and returning the TTL entries that pass the distance filter.
    ///
    /// `valid_slots` maps a page offset (relative to the embedding region) to
    /// the number of meaningful slots in that page; `make_entry` converts a
    /// passing `(page_offset, slot, distance, oob_entry)` into a TTL entry,
    /// or returns `None` to skip slots outside the caller's range of
    /// interest.
    fn scan_pages<F>(
        &mut self,
        region: &StripedRegion,
        page_offsets: impl IntoIterator<Item = usize>,
        slot_bytes: usize,
        threshold: u32,
        oob_entries_per_page: usize,
        mut make_entry: F,
    ) -> Result<(Vec<TtlEntry>, ScanCounts)>
    where
        F: FnMut(usize, usize, u32, reis_nand::OobEntry) -> Option<TtlEntry>,
    {
        let geometry = self.ssd.config().geometry;
        let oob_layout = reis_nand::OobLayout::new(geometry.oob_size_bytes, oob_entries_per_page)?;
        let mut counts = ScanCounts::default();
        let mut out = Vec::new();
        for offset in page_offsets {
            let addr = region.page_at(&geometry, offset)?;
            let device = self.ssd.device_mut();
            device.sense_page(addr)?;
            device.xor_latches(addr.plane_addr())?;
            let (distances, _) = device.count_fail_bits(addr.plane_addr(), slot_bytes)?;
            let (passes, _) = device.pass_fail_check(&distances, threshold);
            let oob = device.page_buffer(addr.plane_addr())?.oob().unwrap_or(&[]).to_vec();
            counts.pages += 1;
            for (slot, (&distance, &pass)) in distances.iter().zip(passes.iter()).enumerate() {
                if slot >= oob_entries_per_page {
                    break;
                }
                counts.slots_scanned += 1;
                if !pass {
                    continue;
                }
                let oob_entry = oob_layout.unpack_entry(&oob, slot)?;
                if let Some(entry) = make_entry(offset, slot, distance, oob_entry) {
                    counts.entries_passed += 1;
                    out.push(entry);
                }
            }
        }
        // Account the aggregate channel traffic of all transferred entries.
        let entry_bytes = slot_bytes + self.config.ttl_metadata_bytes;
        self.ssd.device_mut().transfer_to_controller(entry_bytes * counts.entries_passed);
        Ok((out, counts))
    }

    /// Coarse-grained search: scan the centroid pages and return the
    /// `nprobe` nearest cluster indices.
    pub fn coarse_search(
        &mut self,
        db: &DeployedDatabase,
        nprobe: usize,
    ) -> Result<(Vec<usize>, ScanCounts)> {
        if !db.is_ivf() {
            return Err(ReisError::UnsupportedSearch(
                "coarse search requires an IVF deployment".into(),
            ));
        }
        let layout = db.layout;
        let centroids = layout.centroids;
        let (entries, counts) = self.scan_pages(
            &db.record.embedding_region,
            0..layout.centroid_pages,
            layout.embedding_slot_bytes,
            // Centroid scan is never filtered: every cluster distance is needed.
            u32::MAX,
            layout.embeddings_per_page,
            |page, slot, distance, oob| {
                let cluster = page * layout.embeddings_per_page + slot;
                if cluster >= centroids {
                    return None;
                }
                Some(TtlEntry {
                    distance,
                    storage_index: cluster as u32,
                    radr: oob.radr,
                    dadr: oob.dadr,
                    tag: oob.tag,
                })
            },
        )?;
        let mut ttl = TemporalTopList::new();
        ttl.extend(entries);
        ttl.quickselect(nprobe.max(1));
        let clusters: Vec<usize> =
            ttl.sorted_top(nprobe.max(1)).into_iter().map(|e| e.storage_index as usize).collect();
        Ok((clusters, counts))
    }

    /// Fine-grained search over the embedding pages of the given clusters
    /// (or of the whole database for a brute-force search), returning the
    /// Temporal Top List after the controller's quickselect pass.
    pub fn fine_search(
        &mut self,
        db: &DeployedDatabase,
        query: &BinaryVector,
        clusters: Option<&[usize]>,
        candidate_count: usize,
    ) -> Result<(TemporalTopList, ScanCounts)> {
        let layout = db.layout;
        let threshold = self.config.filter_threshold(query.dim());

        // Which embedding pages (relative to the database-embedding
        // sub-region) need scanning, and which storage-index range is of
        // interest.
        let mut pages: BTreeSet<usize> = BTreeSet::new();
        let mut valid_ranges: Vec<(u32, u32)> = Vec::new();
        match clusters {
            Some(selected) => {
                for &cluster in selected {
                    let entry = db
                        .rivf
                        .entry(cluster)
                        .ok_or(ReisError::UnsupportedSearch(format!("cluster {cluster} unknown")))?;
                    if entry.member_count() == 0 {
                        continue;
                    }
                    valid_ranges.push((entry.first_embedding, entry.last_embedding));
                    let (start, end) = layout
                        .embedding_page_range(entry.first_embedding as usize, entry.last_embedding as usize);
                    pages.extend(start..end);
                }
            }
            None => {
                if layout.entries > 0 {
                    valid_ranges.push((0, (layout.entries - 1) as u32));
                    pages.extend(0..layout.embedding_pages);
                }
            }
        }

        let entries_total = layout.entries;
        let epp = layout.embeddings_per_page;
        let (entries, counts) = self.scan_pages(
            &db.record.embedding_region,
            pages.into_iter().map(|p| p + layout.centroid_pages),
            layout.embedding_slot_bytes,
            threshold,
            epp,
            |page, slot, distance, oob| {
                let storage_index = (page - layout.centroid_pages) * epp + slot;
                if storage_index >= entries_total {
                    return None;
                }
                let si = storage_index as u32;
                if !valid_ranges.iter().any(|&(first, last)| si >= first && si <= last) {
                    return None;
                }
                Some(TtlEntry { distance, storage_index: si, radr: oob.radr, dadr: oob.dadr, tag: oob.tag })
            },
        )?;
        let mut ttl = TemporalTopList::new();
        ttl.extend(entries);
        ttl.quickselect(candidate_count.max(1));
        Ok((ttl, counts))
    }

    /// Rerank the TTL candidates in INT8 precision on the embedded core:
    /// fetch their INT8 copies from the TLC region (through the controller,
    /// with ECC), recompute distances, and return the `k` nearest as
    /// `(original id, INT8 squared distance)` plus the number of distinct
    /// INT8 pages read.
    pub fn rerank(
        &mut self,
        db: &DeployedDatabase,
        query_int8: &Int8Vector,
        candidates: &[TtlEntry],
        k: usize,
    ) -> Result<(Vec<Neighbor>, usize)> {
        let layout = db.layout;
        let mut page_cache: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
        let mut scored: Vec<Neighbor> = Vec::with_capacity(candidates.len());
        for candidate in candidates {
            let (page, slot) = layout.int8_location(candidate.radr as usize);
            if !page_cache.contains_key(&page) {
                let readout =
                    self.ssd.read_region_page(&db.record.int8_region, page, RegionKind::Int8Embeddings)?;
                page_cache.insert(page, readout.data);
            }
            let data = &page_cache[&page];
            let start = slot * layout.int8_bytes;
            let values: Vec<i8> =
                data[start..start + layout.int8_bytes].iter().map(|&b| b as i8).collect();
            let vector = Int8Vector::new(values);
            let distance = vector.squared_l2(query_int8) as f32;
            scored.push(Neighbor::new(candidate.dadr as usize, distance));
        }
        scored.sort();
        scored.truncate(k);
        Ok((scored, page_cache.len()))
    }

    /// Document identification and retrieval: read the chunks of the top-k
    /// results from the document region.
    pub fn fetch_documents(
        &mut self,
        db: &DeployedDatabase,
        top: &[Neighbor],
    ) -> Result<Vec<Vec<u8>>> {
        let layout = db.layout;
        let mut page_cache: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
        let mut documents = Vec::with_capacity(top.len());
        for result in top {
            let (page, slot) = layout.document_location(result.id);
            if !page_cache.contains_key(&page) {
                let readout =
                    self.ssd.read_region_page(&db.record.document_region, page, RegionKind::Documents)?;
                page_cache.insert(page, readout.data);
            }
            let data = &page_cache[&page];
            let start = slot * layout.doc_slot_bytes;
            let len = u32::from_le_bytes(
                data[start..start + 4].try_into().expect("length prefix present"),
            ) as usize;
            documents.push(data[start + 4..start + 4 + len].to_vec());
        }
        Ok(documents)
    }

    /// Number of candidates handed to the reranker for a top-`k` search
    /// (`rerank_factor × k`, the paper's 10·k).
    pub fn rerank_candidates(&self, k: usize) -> usize {
        self.config.rerank_factor.max(1) * k.max(1)
    }

    /// Build the activity record of a query from its scan counts and
    /// downstream statistics.
    #[allow(clippy::too_many_arguments)]
    pub fn activity(
        &self,
        db: &DeployedDatabase,
        coarse: ScanCounts,
        fine: ScanCounts,
        rerank_candidates: usize,
        int8_pages: usize,
        documents: usize,
        dim: usize,
    ) -> QueryActivity {
        QueryActivity {
            coarse_pages: coarse.pages,
            coarse_entries: coarse.entries_passed,
            fine_pages: fine.pages,
            fine_entries: fine.entries_passed,
            rerank_candidates,
            int8_pages,
            documents,
            embedding_slot_bytes: db.layout.embedding_slot_bytes,
            dim,
            doc_slot_bytes: db.layout.doc_slot_bytes,
        }
    }
}
