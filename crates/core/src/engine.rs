//! The in-storage ANNS engine (Sec. 4.3).
//!
//! The engine executes searches *functionally* on the simulated flash
//! device: it broadcasts the query into every plane's cache latch, senses
//! embedding pages, XORs them against the query in the page buffers, counts
//! differing bits with the fail-bit counter, filters by distance with the
//! pass/fail checker, streams the surviving Temporal-Top-List entries (with
//! the OOB linkage they carry) to the controller, runs quickselect, fetches
//! the INT8 copies for reranking, quicksorts the survivors and finally reads
//! the documents of the top-k results. Every step counts its activity in a
//! [`crate::perf::QueryActivity`] so the latency model can price it.
//!
//! # Hot-path invariants
//!
//! The scan loop is the throughput-critical path of the whole simulator, so
//! it obeys three rules that any change here must preserve:
//!
//! 1. **Word kernels only.** All XOR-ing and bit counting goes through the
//!    `u64`-word kernels of `reis_nand::peripheral` and the distance filter
//!    uses the fused [`pass_fail_filter`](reis_nand::FlashDevice::pass_fail_filter)
//!    path — no byte-at-a-time loops and no `Vec<bool>` materialization.
//! 2. **No per-page allocation.** Every buffer a page scan needs (distance
//!    counts, passing slots, TTL entries, page ranges) lives in a
//!    [`ScanScratch`] that is reused across pages, across the coarse and
//!    fine phases, and across queries. OOB bytes are borrowed from the
//!    plane's page buffer, never copied.
//! 3. **Page-ordered downstream phases.** Reranking and document retrieval
//!    sort their candidates by flash page and stream each page once,
//!    scoring INT8 slots directly from the borrowed page slice — no page
//!    cache map and no per-candidate vector copies.
//!
//! # Two levels of parallelism
//!
//! The scan path parallelizes at two granularities, mirroring how REIS
//! exploits the device:
//!
//! * **Across queries** — workers of a batched search each own one engine
//!   (and therefore one scratch) on a device replica, so queries
//!   parallelize without sharing any mutable state
//!   (`ReisSystem::search_batch`).
//! * **Within one query** — when
//!   [`ScanParallelism`](crate::config::ScanParallelism) enables it, the
//!   fine scan's merged page ranges are split into per-channel/per-die
//!   shards ([`reis_nand::sharding`]) that scan concurrently. Shard workers
//!   share the controller immutably (borrowed page reads, worker-owned
//!   latch scratch) and their candidate lists merge into one Temporal Top
//!   List whose total-order quickselect makes the sharded result
//!   bit-identical to the sequential scan. Both levels compose: each batch
//!   worker drives its own intra-query shards.
//!
//! Adaptive distance filtering composes with both levels through the
//! *windowed* threshold schedule: an adapting scan consumes its
//! deterministic page list in fixed page-count windows, each window scans
//! under a constant threshold (and may itself shard), and the threshold
//! tightens only at window barriers — so the admitted entry set, and every
//! counter derived from it, is invariant under how the pages were
//! partitioned across workers or machines.

use reis_ann::topk::Neighbor;
use reis_ann::vector::{BinaryVector, Int8Vector};
use reis_nand::latch::Latch;
use reis_nand::peripheral::{FailBitCounter, PassFailChecker, XorLogic};
use reis_nand::{FlashStats, OobEntry, OobLayout, ScanShardPlan};
use reis_sched::WorkerPool;
use reis_ssd::{RegionKind, SsdController, StripedRegion};
use reis_update::OOB_INVALID_RADR;

use crate::config::{ReisConfig, ScanExecutor};
use crate::deploy::DeployedDatabase;
use crate::error::{ReisError, Result};
use crate::leaf::LeafCandidate;
use crate::perf::QueryActivity;
use crate::records::{TemporalTopList, TtlEntry};

/// Activity counters of one scan pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCounts {
    /// Pages sensed.
    pub pages: usize,
    /// Embedding slots whose distance was computed.
    pub slots_scanned: usize,
    /// Entries that passed the distance filter and were transferred.
    pub entries_passed: usize,
    /// Adaptive window barriers crossed (0 for static-threshold scans): the
    /// number of times the embedded core re-ran quickselect over the
    /// accumulated Temporal Top List to tighten the in-plane threshold.
    pub windows: usize,
}

impl ScanCounts {
    /// Fold the page/slot/entry counters of another pass into this one
    /// (window barriers are owned by the windowed driver, not by the
    /// per-window passes, so they do not accumulate here).
    pub(crate) fn absorb(&mut self, other: ScanCounts) {
        self.pages += other.pages;
        self.slots_scanned += other.slots_scanned;
        self.entries_passed += other.entries_passed;
    }
}

/// Reusable buffers of the query hot path.
///
/// One scratch serves one engine at a time; creating it is cheap but the
/// point is to create it *once* (per system, or per batch worker) so the
/// steady-state scan performs no heap allocation. See the module docs for
/// the invariants it upholds.
#[derive(Debug, Default)]
pub struct ScanScratch {
    /// Per-chunk fail-bit counts of the current page.
    distances: Vec<u32>,
    /// `(slot, distance)` pairs that passed the distance filter on the
    /// current page.
    passing: Vec<(u32, u32)>,
    /// The Temporal Top List accumulating candidates, reused across the
    /// coarse and fine phases.
    pub(crate) ttl: TemporalTopList,
    /// Merged `(start, end)` page ranges selected for the fine scan.
    page_ranges: Vec<(usize, usize)>,
    /// Sorted `(first, last)` storage-index ranges of the probed clusters.
    valid_ranges: Vec<(u32, u32)>,
    /// Candidate visit order for the page-sorted rerank / document phases.
    order: Vec<usize>,
    /// Rerank scoring buffer: exact INT8 distances keyed for the
    /// deterministic `(distance, storage position)` tie-break.
    rerank_buf: Vec<RerankCandidate>,
    /// Pooled controller staging buffer for ECC'd TLC page reads (the
    /// rerank and document-fetch phases reuse it across pages and queries).
    page_buf: Vec<u8>,
    /// Pooled OOB staging buffer accompanying `page_buf`.
    page_oob: Vec<u8>,
    /// Clusters whose append segments the current fine scan must cover.
    cluster_buf: Vec<usize>,
    /// Cursor over the probed clusters' segment runs in deterministic scan
    /// order (the segment tail of the windowed adaptive page list).
    run_cursor: reis_update::RunCursor,
    /// Per-window segment-run slices handed out by the cursor.
    run_slices: Vec<reis_update::RunSlice>,
    /// Base page ranges of the current adaptive window.
    win_ranges: Vec<(usize, usize)>,
    /// Number of fine-search candidates requested (bounds `ttl.top`).
    pub(crate) candidate_count: usize,
    /// Worker-local data-latch image of a read-only scan shard: the XOR of a
    /// stored page against the broadcast query, computed here instead of in
    /// the plane's (shared) page buffer.
    xor_latch: Vec<u8>,
    /// Per-window passed-entry counts of the most recent fine scan, filled
    /// only when `record_windows` is set (telemetry enabled). A static scan
    /// logs one window; a windowed adaptive scan logs one count per barrier
    /// plus the trailing partial window, so the log always sums to the
    /// scan's `entries_passed`. Recording happens at the existing barrier /
    /// scan-end points on the driving thread, never inside a scan loop, so
    /// it cannot perturb execution.
    pub(crate) window_log: Vec<u64>,
    /// Whether the next fine scan should fill `window_log`.
    pub(crate) record_windows: bool,
    /// Per-page explain capture of the next fine scan (telemetry explain
    /// mode): `Some` arms the capture. Only pages walked by the sequential
    /// scan driver are captured, so explain traces are exact under
    /// [`ScanParallelism::pinned_sequential`](crate::config::ScanParallelism)
    /// and cover the sequentially scanned subset otherwise.
    pub(crate) explain_log: Option<Vec<reis_telemetry::ExplainEvent>>,
    /// The adaptive-window index the windowed driver is currently in
    /// (annotates explain events; maintained only while capturing).
    pub(crate) explain_window: u32,
    /// Per-shard scratches of an intra-query sharded scan, grown on first
    /// use and reused across queries. Each scan shard's worker thread owns
    /// one — its own latch image, distance buffer and Temporal Top List —
    /// so shards run without shared mutable state, exactly like batch
    /// workers one level up.
    shard_pool: Vec<ScanScratch>,
}

impl ScanScratch {
    /// Create an empty scratch.
    pub fn new() -> Self {
        ScanScratch::default()
    }
}

/// One reranked candidate: the exact INT8 squared distance plus the keys of
/// the deterministic final sort. Sorting by `(raw, storage_index)` — the
/// entry's position in the scan order rather than its stable id — makes the
/// final ranking invariant under relocations: an index mutated online and
/// the same logical corpus redeployed from scratch order ties identically.
#[derive(Debug, Clone, Copy)]
struct RerankCandidate {
    raw: i64,
    storage_index: u32,
    dadr: u32,
}

/// Tighten an adaptive distance-filter threshold against the current
/// contents of a Temporal Top List: once at least `2 × candidate_count`
/// entries accumulated, quickselect down to the candidate count and clamp
/// the threshold to the worst surviving distance. Any embedding farther
/// than that can never enter the final candidate set (its total-order key
/// exceeds every kept key, and more candidates only shrink the cut), so
/// filtering it in-plane is lossless. The `<=` pass condition keeps
/// equal-distance entries flowing, which the `storage_index` tie-break may
/// still admit.
///
/// Under the windowed schedule this runs only at window *barriers* — fixed
/// page-count positions of the scan's deterministic page list — over the
/// TTL state accumulated across all completed windows. Because the TTL
/// quickselect keys on a total order, the merged state at a barrier (and
/// therefore the tightened threshold) is independent of how the window's
/// pages were partitioned across shard or fused-batch workers.
pub(crate) fn tighten_threshold(
    ttl: &mut crate::records::TemporalTopList,
    candidate_count: usize,
    threshold: &mut u32,
) {
    if ttl.len() >= candidate_count.saturating_mul(2) {
        ttl.quickselect(candidate_count);
        if let Some(max) = ttl.entries().iter().map(|e| e.distance).max() {
            *threshold = (*threshold).min(max);
        }
    }
}

/// The functional in-storage search engine, borrowing the SSD controller
/// (and a [`ScanScratch`]) for the duration of one or more queries.
#[derive(Debug)]
pub struct InStorageEngine<'a> {
    ssd: &'a mut SsdController,
    config: ReisConfig,
    scratch: &'a mut ScanScratch,
    pool: &'a WorkerPool,
}

/// Merge a list of `(start, end)` half-open ranges in place: empty ranges
/// are dropped, the rest sorted and overlapping/adjacent ranges coalesced.
pub(crate) fn merge_page_ranges(ranges: &mut Vec<(usize, usize)>) {
    ranges.retain(|&(start, end)| start < end);
    if ranges.len() <= 1 {
        return;
    }
    ranges.sort_unstable();
    let mut write = 0usize;
    for read in 1..ranges.len() {
        let (start, end) = ranges[read];
        if start <= ranges[write].1 {
            ranges[write].1 = ranges[write].1.max(end);
        } else {
            write += 1;
            ranges[write] = (start, end);
        }
    }
    ranges.truncate(write + 1);
}

/// Whether `index` falls inside one of the sorted, disjoint inclusive
/// `(first, last)` ranges.
pub(crate) fn in_valid_ranges(ranges: &[(u32, u32)], index: u32) -> bool {
    let after = ranges.partition_point(|&(first, _)| first <= index);
    after > 0 && ranges[after - 1].1 >= index
}

/// Whether relative page `offset` falls inside one of the sorted, disjoint
/// half-open `(start, end)` merged page ranges (the fused scan's per-query
/// membership test).
pub(crate) fn in_page_ranges(ranges: &[(usize, usize)], offset: usize) -> bool {
    let after = ranges.partition_point(|&(start, _)| start <= offset);
    after > 0 && ranges[after - 1].1 > offset
}

/// Compute the fine-scan selection of one query: the merged page ranges
/// (relative to the database-embedding sub-region), the sorted storage-index
/// ranges of interest, and the clusters whose append segments the scan must
/// also cover. This is the shared prologue of the sequential
/// [`InStorageEngine::fine_search`] and the fused batch executor, so both
/// paths select exactly the same pages and entries.
pub(crate) fn plan_fine_selection(
    db: &DeployedDatabase,
    clusters: Option<&[usize]>,
    page_ranges: &mut Vec<(usize, usize)>,
    valid_ranges: &mut Vec<(u32, u32)>,
    cluster_buf: &mut Vec<usize>,
) -> Result<()> {
    let layout = db.layout;
    page_ranges.clear();
    valid_ranges.clear();
    cluster_buf.clear();
    match clusters {
        Some(selected) => {
            for &cluster in selected {
                let entry = db
                    .rivf
                    .entry(cluster)
                    .ok_or(ReisError::UnsupportedSearch(format!(
                        "cluster {cluster} unknown"
                    )))?;
                cluster_buf.push(cluster);
                if entry.member_count() == 0 {
                    continue;
                }
                valid_ranges.push((entry.first_embedding, entry.last_embedding));
                let range = layout.embedding_page_range(
                    entry.first_embedding as usize,
                    entry.last_embedding as usize,
                );
                page_ranges.push(range);
            }
        }
        None => {
            cluster_buf.extend(0..db.update_clusters());
            if layout.entries > 0 {
                valid_ranges.push((0, (layout.entries - 1) as u32));
                page_ranges.push((0, layout.embedding_pages));
            }
        }
    }
    merge_page_ranges(page_ranges);
    valid_ranges.sort_unstable();
    Ok(())
}

/// Convert one passing base-region slot into a TTL entry, or `None` for
/// slots that are out of range, tombstoned or outside the probed clusters.
/// Shared by the sequential/sharded scan closures and the fused executor so
/// every path admits exactly the same candidates.
#[allow(clippy::too_many_arguments)]
pub(crate) fn base_scan_entry(
    centroid_pages: usize,
    epp: usize,
    entries_total: usize,
    tombstones: &reis_update::TombstoneSet,
    valid_ranges: &[(u32, u32)],
    page: usize,
    slot: usize,
    distance: u32,
    oob: OobEntry,
) -> Option<TtlEntry> {
    let storage_index = (page - centroid_pages) * epp + slot;
    if storage_index >= entries_total {
        return None;
    }
    // Tombstoned base entries are dead; their flash pages still hold
    // them, so the scan must drop them here.
    if tombstones.contains(storage_index) {
        return None;
    }
    let si = storage_index as u32;
    if !in_valid_ranges(valid_ranges, si) {
        return None;
    }
    Some(TtlEntry {
        distance,
        storage_index: si,
        radr: oob.radr,
        dadr: oob.dadr,
        tag: oob.tag,
    })
}

/// Convert one passing append-segment slot into a TTL entry, filtering the
/// OOB validity sentinel of unfilled slots and DRAM-side deletions. Shared
/// by the sequential scan closure and the fused executor.
pub(crate) fn segment_scan_entry(
    store: &reis_update::SegmentStore,
    base_capacity: u32,
    distance: u32,
    oob: OobEntry,
) -> Option<TtlEntry> {
    if oob.radr == OOB_INVALID_RADR || oob.radr < base_capacity {
        return None;
    }
    let entry = store.entry(oob.radr - base_capacity)?;
    if entry.deleted {
        return None;
    }
    Some(TtlEntry {
        distance,
        storage_index: oob.radr,
        radr: oob.radr,
        dadr: oob.dadr,
        tag: oob.tag,
    })
}

/// Convert one passing centroid slot into a TTL-C entry, or `None` for pad
/// slots past the last centroid. Shared by the sequential coarse search and
/// the fused executor.
pub(crate) fn coarse_scan_entry(
    epp: usize,
    centroids: usize,
    page: usize,
    slot: usize,
    distance: u32,
    oob: OobEntry,
) -> Option<TtlEntry> {
    let cluster = page * epp + slot;
    if cluster >= centroids {
        return None;
    }
    Some(TtlEntry {
        distance,
        storage_index: cluster as u32,
        radr: oob.radr,
        dadr: oob.dadr,
        tag: oob.tag,
    })
}

/// Body of one scan-shard worker: scan `ranges` (offsets relative to
/// `page_base` within the region) against the broadcast query, entirely in
/// the worker's own [`ScanScratch`], and return the scan counts plus the
/// flash activity to fold back into the primary device.
///
/// The worker mirrors the mutable scan loop step for step — borrow the
/// stored page (the sense), XOR it against the plane's cache latch into the
/// worker's latch image, count fail bits per slot, filter by threshold,
/// unpack OOB linkage for the survivors — but never touches shared state:
/// the controller is only read, and every operation that the sequential
/// path counts on the device (`page_reads`, `xor_ops`, `bit_count_ops`,
/// `pass_fail_ops`, TTL channel bytes) is tallied locally instead.
///
/// Counts and flash activity are returned even when the scan fails, so the
/// work a shard performed before the error is still folded into the
/// primary's counters — matching the sequential path, which counts each
/// operation on the device as it happens.
#[allow(clippy::too_many_arguments)]
fn scan_shard_pages<F>(
    ssd: &SsdController,
    region: &StripedRegion,
    ranges: &[(usize, usize)],
    page_base: usize,
    slot_bytes: usize,
    threshold: u32,
    oob_entries_per_page: usize,
    oob_layout: &OobLayout,
    entry_bytes: usize,
    scratch: &mut ScanScratch,
    make_entry: &F,
) -> (ScanCounts, FlashStats, Option<ReisError>)
where
    F: Fn(usize, usize, u32, OobEntry) -> Option<TtlEntry>,
{
    let mut counts = ScanCounts::default();
    let mut flash = FlashStats::new();
    scratch.ttl.clear();
    let ScanScratch {
        ttl,
        distances,
        passing,
        xor_latch,
        ..
    } = scratch;
    let mut scan = || -> Result<()> {
        for &(start, end) in ranges {
            for offset in start..end {
                let page_offset = page_base + offset;
                let (addr, data, oob) = ssd.scan_region_page(region, page_offset)?;
                // The borrowed read stands in for the sense; count it like
                // the sequential path's sense_page does.
                flash.page_reads += 1;
                // The broadcast query tiled into this plane's cache latch.
                let query = ssd
                    .device()
                    .page_buffer(addr.plane_addr())?
                    .read_latch(Latch::Cache)?;
                XorLogic::xor_into(data, query, xor_latch);
                flash.xor_ops += 1;
                FailBitCounter::count_per_chunk_into(xor_latch, slot_bytes, distances);
                flash.bit_count_ops += 1;
                let limit = distances.len().min(oob_entries_per_page);
                counts.pages += 1;
                counts.slots_scanned += limit;
                passing.clear();
                PassFailChecker::filter_passing(
                    &distances[..limit],
                    threshold,
                    |slot, distance| passing.push((slot as u32, distance)),
                );
                flash.pass_fail_ops += 1;
                for &(slot, distance) in passing.iter() {
                    let oob_entry = oob_layout.unpack_entry(oob, slot as usize)?;
                    if let Some(entry) = make_entry(page_offset, slot as usize, distance, oob_entry)
                    {
                        counts.entries_passed += 1;
                        ttl.push(entry);
                    }
                }
            }
        }
        Ok(())
    };
    let error = scan().err();
    if error.is_none() {
        // The aggregate channel traffic of this shard's transferred entries
        // (the sequential path, too, only accounts it after a whole scan).
        flash.bytes_to_controller += (entry_bytes * counts.entries_passed) as u64;
    }
    (counts, flash, error)
}

impl<'a> InStorageEngine<'a> {
    /// Create an engine bound to a controller, a configuration and the
    /// scratch buffers it may reuse across queries.
    pub fn new(
        ssd: &'a mut SsdController,
        config: ReisConfig,
        scratch: &'a mut ScanScratch,
        pool: &'a WorkerPool,
    ) -> Self {
        InStorageEngine {
            ssd,
            config,
            scratch,
            pool,
        }
    }

    /// Broadcast the query embedding into the cache latches of every die
    /// (Input Broadcasting, optionally multi-plane).
    pub fn broadcast_query(&mut self, db: &DeployedDatabase, query: &BinaryVector) -> Result<()> {
        let slot = db.layout.embedding_slot_bytes;
        let mut payload = vec![0u8; slot];
        payload[..query.as_bytes().len()].copy_from_slice(query.as_bytes());
        let geometry = self.ssd.config().geometry;
        let multi_plane = self.config.optimizations.multi_plane_ibc;
        for channel in 0..geometry.channels {
            for die in 0..geometry.dies_per_channel {
                self.ssd
                    .device_mut()
                    .input_broadcast(channel, die, &payload, multi_plane)?;
            }
        }
        Ok(())
    }

    /// Scan the pages of `ranges` (offsets relative to `page_base` within
    /// the embedding region), computing in-plane distances with the fused
    /// count-and-filter path and appending the TTL entries that pass the
    /// distance filter to the scratch's Temporal Top List.
    ///
    /// `make_entry` converts a passing `(page_offset, slot, distance,
    /// oob_entry)` into a TTL entry, or returns `None` to skip slots outside
    /// the caller's range of interest. The whole loop reuses the scratch
    /// buffers — no allocation per page.
    #[allow(clippy::too_many_arguments)]
    fn scan_pages<F>(
        &mut self,
        region: &StripedRegion,
        ranges: &[(usize, usize)],
        page_base: usize,
        slot_bytes: usize,
        threshold: u32,
        oob_entries_per_page: usize,
        mut make_entry: F,
    ) -> Result<ScanCounts>
    where
        F: FnMut(usize, usize, u32, reis_nand::OobEntry) -> Option<TtlEntry>,
    {
        let geometry = self.ssd.config().geometry;
        let oob_layout = reis_nand::OobLayout::new(geometry.oob_size_bytes, oob_entries_per_page)?;
        let mut counts = ScanCounts::default();
        for &(start, end) in ranges {
            for offset in start..end {
                let page_offset = page_base + offset;
                let addr = region.page_at(&geometry, page_offset)?;
                let device = self.ssd.device_mut();
                device.sense_page(addr)?;
                device.xor_latches(addr.plane_addr())?;
                device.count_fail_bits_into(
                    addr.plane_addr(),
                    slot_bytes,
                    &mut self.scratch.distances,
                )?;
                let limit = self.scratch.distances.len().min(oob_entries_per_page);
                counts.pages += 1;
                counts.slots_scanned += limit;
                let passing = &mut self.scratch.passing;
                passing.clear();
                device.pass_fail_filter(
                    &self.scratch.distances[..limit],
                    threshold,
                    |slot, distance| passing.push((slot as u32, distance)),
                );
                // The OOB bytes are borrowed straight from the plane buffer;
                // they were sensed together with the page.
                let oob = self
                    .ssd
                    .device()
                    .page_buffer(addr.plane_addr())?
                    .oob()
                    .unwrap_or(&[]);
                let entries_before = counts.entries_passed;
                for &(slot, distance) in &self.scratch.passing {
                    let oob_entry = oob_layout.unpack_entry(oob, slot as usize)?;
                    if let Some(entry) = make_entry(page_offset, slot as usize, distance, oob_entry)
                    {
                        counts.entries_passed += 1;
                        self.scratch.ttl.push(entry);
                    }
                }
                if let Some(events) = self.scratch.explain_log.as_mut() {
                    events.push(reis_telemetry::ExplainEvent {
                        page: page_offset as u32,
                        window: self.scratch.explain_window,
                        slots: limit as u32,
                        passed: (counts.entries_passed - entries_before) as u32,
                    });
                }
            }
        }
        // Account the aggregate channel traffic of all transferred entries.
        let entry_bytes = slot_bytes + self.config.ttl_metadata_bytes;
        self.ssd
            .device_mut()
            .transfer_to_controller(entry_bytes * counts.entries_passed);
        Ok(counts)
    }

    /// Scan the planned shards of one query concurrently — one task per
    /// non-empty shard on the persistent worker pool (or one scoped
    /// `std::thread` under [`ScanExecutor::SpawnScoped`]) — and merge the
    /// shard-local results.
    ///
    /// Each worker shares the controller *immutably*: it borrows stored
    /// pages through [`SsdController::scan_region_page`], reads the
    /// broadcast query from the scanned plane's cache latch, and computes
    /// the XOR + fail-bit counts in its own [`ScanScratch`] instead of the
    /// plane's page buffer. Flash activity is tallied in shard-local
    /// [`FlashStats`] and absorbed into the primary device after the shards
    /// join, and the shard-local Temporal Top Lists are concatenated into
    /// the engine's TTL — [`TemporalTopList::quickselect`]'s total-order
    /// tie-break then makes the final candidate set bit-identical to a
    /// sequential scan of the same pages.
    ///
    /// Only valid for regions whose reads are error-free (the ESP-SLC
    /// embedding regions); the caller gates on
    /// [`reis_nand::FlashDevice::read_is_error_free`].
    #[allow(clippy::too_many_arguments)]
    fn scan_pages_sharded<F>(
        &mut self,
        region: &StripedRegion,
        plan: &ScanShardPlan,
        page_base: usize,
        slot_bytes: usize,
        threshold: u32,
        oob_entries_per_page: usize,
        make_entry: F,
    ) -> Result<ScanCounts>
    where
        F: Fn(usize, usize, u32, OobEntry) -> Option<TtlEntry> + Sync,
    {
        let geometry = self.ssd.config().geometry;
        let oob_layout = OobLayout::new(geometry.oob_size_bytes, oob_entries_per_page)?;
        let entry_bytes = slot_bytes + self.config.ttl_metadata_bytes;
        let ScanScratch {
            ttl, shard_pool, ..
        } = &mut *self.scratch;
        while shard_pool.len() < plan.shard_count() {
            shard_pool.push(ScanScratch::new());
        }

        let ssd: &SsdController = self.ssd;
        let oob_layout = &oob_layout;
        let make_entry = &make_entry;
        let shard_outputs: Vec<(ScanCounts, FlashStats, Option<ReisError>)> =
            match self.config.scan_executor {
                // The persistent pool: one queued task per non-empty shard, no
                // thread creation. The task bodies are byte-for-byte the spawn
                // path's; only the execution vehicle differs, and the merge
                // below walks slots in shard order either way, so results and
                // accounting cannot depend on the executor.
                ScanExecutor::Pooled => {
                    let jobs: Vec<_> = plan
                        .shards()
                        .iter()
                        .zip(shard_pool.iter_mut())
                        .filter(|(shard, _)| !shard.is_empty())
                        .collect();
                    let mut outputs: Vec<Option<(ScanCounts, FlashStats, Option<ReisError>)>> =
                        (0..jobs.len()).map(|_| None).collect();
                    let scope_result = self.pool.scope(|scope| {
                        for ((shard, shard_scratch), output) in
                            jobs.into_iter().zip(outputs.iter_mut())
                        {
                            scope.spawn(move |_ctx| {
                                *output = Some(scan_shard_pages(
                                    ssd,
                                    region,
                                    shard.ranges(),
                                    page_base,
                                    slot_bytes,
                                    threshold,
                                    oob_entries_per_page,
                                    oob_layout,
                                    entry_bytes,
                                    shard_scratch,
                                    make_entry,
                                ));
                            });
                        }
                    });
                    if let Err(panic) = scope_result {
                        // A panicking shard leaves partial candidates in the
                        // shard scratches; drop them so the next scan over this
                        // scratch pool cannot absorb stale entries.
                        for shard_scratch in shard_pool.iter_mut() {
                            shard_scratch.ttl.clear();
                        }
                        return Err(ReisError::WorkerPanic(panic.message));
                    }
                    outputs
                        .into_iter()
                        .map(|output| output.expect("scope waits for every shard task"))
                        .collect()
                }
                // The pre-pool executor, kept for the identity baseline and the
                // `fig_scheduler` overhead comparison: scoped threads spawned
                // and joined for every call.
                ScanExecutor::SpawnScoped => std::thread::scope(|scope| {
                    let handles: Vec<_> = plan
                        .shards()
                        .iter()
                        .zip(shard_pool.iter_mut())
                        .filter(|(shard, _)| !shard.is_empty())
                        .map(|(shard, shard_scratch)| {
                            scope.spawn(move || {
                                scan_shard_pages(
                                    ssd,
                                    region,
                                    shard.ranges(),
                                    page_base,
                                    slot_bytes,
                                    threshold,
                                    oob_entries_per_page,
                                    oob_layout,
                                    entry_bytes,
                                    shard_scratch,
                                    make_entry,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|handle| handle.join().expect("scan shard worker panicked"))
                        .collect()
                }),
            };

        // Merge shard results in shard order: counts and flash activity are
        // additive, candidates are concatenated (selection is order-free).
        // Every shard — including a failing one — performed real flash
        // work, so the stats merge happens before any error is surfaced,
        // mirroring both the batch path's merge-then-fail policy and the
        // sequential path's count-as-you-go device statistics.
        let mut counts = ScanCounts::default();
        let mut flash = FlashStats::new();
        let mut first_error = None;
        for (shard_counts, shard_flash, shard_error) in shard_outputs {
            counts.absorb(shard_counts);
            flash.accumulate(&shard_flash);
            if first_error.is_none() {
                first_error = shard_error;
            }
        }
        for shard_scratch in shard_pool.iter_mut() {
            ttl.absorb(&mut shard_scratch.ttl);
        }
        self.ssd.device_mut().absorb_stats(&flash);
        match first_error {
            Some(error) => Err(error),
            None => Ok(counts),
        }
    }

    /// Coarse-grained search: scan the centroid pages and return the
    /// `nprobe` nearest cluster indices.
    pub fn coarse_search(
        &mut self,
        db: &DeployedDatabase,
        nprobe: usize,
    ) -> Result<(Vec<usize>, ScanCounts)> {
        if !db.is_ivf() {
            return Err(ReisError::UnsupportedSearch(
                "coarse search requires an IVF deployment".into(),
            ));
        }
        let layout = db.layout;
        let centroids = layout.centroids;
        let epp = layout.embeddings_per_page;
        self.scratch.ttl.clear();
        let counts = self.scan_pages(
            &db.record.embedding_region,
            &[(0, layout.centroid_pages)],
            0,
            layout.embedding_slot_bytes,
            // Centroid scan is never filtered: every cluster distance is needed.
            u32::MAX,
            epp,
            |page, slot, distance, oob| {
                coarse_scan_entry(epp, centroids, page, slot, distance, oob)
            },
        )?;
        let keep = nprobe.max(1);
        self.scratch.ttl.quickselect(keep);
        self.scratch.ttl.sort_ascending();
        let clusters: Vec<usize> = self
            .scratch
            .ttl
            .top(keep)
            .iter()
            .map(|e| e.storage_index as usize)
            .collect();
        Ok((clusters, counts))
    }

    /// Fine-grained search over the embedding pages of the given clusters
    /// (or of the whole database for a brute-force search). The surviving
    /// candidates are left, in rank order, in the scratch's Temporal Top
    /// List (see [`InStorageEngine::candidates`]).
    ///
    /// When the configuration's
    /// [`ScanParallelism`](crate::config::ScanParallelism) allows more than
    /// one shard for a scan of this size, the merged page ranges are split
    /// across per-channel/per-die shard workers and scanned concurrently;
    /// the result — candidates, counts and flash statistics — is
    /// bit-identical to the sequential scan. Both the brute-force and the
    /// IVF search path run through this method, so both inherit the
    /// sharding. The (much smaller) centroid scan of
    /// [`InStorageEngine::coarse_search`] always runs sequentially.
    ///
    /// Scans that adapt their distance-filter threshold run the *windowed*
    /// driver (`fine_scan_windowed`): the page list is
    /// consumed in fixed page-count windows, each window scans under a
    /// constant threshold (sharded when large enough), and the threshold
    /// tightens only at the barrier between windows — which is what makes
    /// adaptive results and transferred-entry counts identical under every
    /// parallelism setting.
    pub fn fine_search(
        &mut self,
        db: &DeployedDatabase,
        query: &BinaryVector,
        clusters: Option<&[usize]>,
        candidate_count: usize,
    ) -> Result<ScanCounts> {
        let layout = db.layout;
        let threshold = self.config.filter_threshold(query.dim());

        // Which embedding pages (relative to the database-embedding
        // sub-region) need scanning, and which storage-index ranges are of
        // interest. Page ranges are merged instead of materializing a page
        // set; storage ranges are sorted for binary search in the scan loop.
        // The probed clusters are remembered so the append-segment pass
        // below covers the same selection. The planning is shared with the
        // fused batch executor (`plan_fine_selection`), so both paths select
        // identically.
        {
            let ScanScratch {
                page_ranges,
                valid_ranges,
                cluster_buf,
                ..
            } = &mut *self.scratch;
            plan_fine_selection(db, clusters, page_ranges, valid_ranges, cluster_buf)?;
        }

        let entries_total = layout.entries;
        let epp = layout.embeddings_per_page;
        // Adaptive distance filtering tightens the in-plane threshold at
        // fixed page-window barriers of the scan's deterministic page list
        // (base ranges, then the probed clusters' segment runs). The
        // schedule is a pure function of page order, so it composes with
        // every parallelism mode (see `AdaptiveFiltering`).
        let adapt = if self.config.adapts(clusters.is_none()) {
            Some(candidate_count.max(1))
        } else {
            None
        };

        // Intra-query sharding decision: how many channel/die shards this
        // scan is worth, and whether the read-only shard path is exact for
        // the embedding region (error-free ESP reads). Adaptive scans make
        // the same decision per window (a window is the unit of parallel
        // work between two barriers), via the same `effective_shards` rule.
        let geometry = self.ssd.config().geometry;
        let scan_pages_total: usize = self
            .scratch
            .page_ranges
            .iter()
            .map(|&(start, end)| end - start)
            .sum();
        let shard_count = self
            .config
            .scan_parallelism
            .effective_shards(ScanShardPlan::scan_units(&geometry), scan_pages_total);
        let embedding_scheme = self
            .ssd
            .hybrid_policy()
            .scheme_for(RegionKind::BinaryEmbeddings);
        let shards_exact = self.ssd.device().read_is_error_free(embedding_scheme);
        let use_shards = shard_count > 1 && shards_exact;

        // Temporarily move the range buffers out of the scratch so the scan
        // (which borrows the engine mutably) can read them.
        let pages = std::mem::take(&mut self.scratch.page_ranges);
        let valid = std::mem::take(&mut self.scratch.valid_ranges);
        self.scratch.ttl.clear();
        let valid_ref = &valid;
        let tombstones = &db.updates.tombstones;
        let make_entry = move |page: usize, slot: usize, distance: u32, oob: OobEntry| {
            base_scan_entry(
                layout.centroid_pages,
                epp,
                entries_total,
                tombstones,
                valid_ref,
                page,
                slot,
                distance,
                oob,
            )
        };

        let scanned = match adapt {
            None => {
                self.fine_scan_static(db, &pages, threshold, use_shards, shard_count, &make_entry)
            }
            Some(candidates) => self.fine_scan_windowed(
                db,
                &pages,
                threshold,
                candidates,
                shards_exact,
                &make_entry,
            ),
        };
        self.scratch.page_ranges = pages;
        self.scratch.valid_ranges = valid;
        let counts = scanned?;

        self.scratch.ttl.quickselect(candidate_count.max(1));
        self.scratch.ttl.sort_ascending();
        self.scratch.candidate_count = candidate_count;
        Ok(counts)
    }

    /// Static-threshold fine scan: the merged base ranges in one pass
    /// (sharded across channel/die workers when `use_shards`), then the
    /// probed clusters' segment runs sequentially. Candidates join the
    /// scratch's Temporal Top List; the total-order quickselect keeps the
    /// combined result deterministic. OOB validity (the RADR sentinel of
    /// unfilled slots) and the DRAM-side deletion flags filter dead segment
    /// slots.
    fn fine_scan_static<F>(
        &mut self,
        db: &DeployedDatabase,
        pages: &[(usize, usize)],
        threshold: u32,
        use_shards: bool,
        shard_count: usize,
        make_entry: &F,
    ) -> Result<ScanCounts>
    where
        F: Fn(usize, usize, u32, OobEntry) -> Option<TtlEntry> + Sync,
    {
        let layout = db.layout;
        let epp = layout.embeddings_per_page;
        let slot_bytes = layout.embedding_slot_bytes;
        let geometry = self.ssd.config().geometry;
        let region = &db.record.embedding_region;
        let mut counts = if use_shards {
            // Plan per-channel/per-die shards over the merged ranges, then
            // scan them concurrently and merge the shard-local TTLs.
            let plan = ScanShardPlan::build(&geometry, shard_count, pages, |offset| {
                region
                    .page_at(&geometry, layout.centroid_pages + offset)
                    .map(|addr| addr.plane_addr())
            });
            match plan {
                Ok(plan) => self.scan_pages_sharded(
                    region,
                    &plan,
                    layout.centroid_pages,
                    slot_bytes,
                    threshold,
                    epp,
                    make_entry,
                )?,
                Err(error) => return Err(error.into()),
            }
        } else {
            self.scan_pages(
                region,
                pages,
                layout.centroid_pages,
                slot_bytes,
                threshold,
                epp,
                make_entry,
            )?
        };

        // Append-segment pass: entries inserted since deployment live in
        // per-cluster segment runs that the base region does not cover.
        // Segment runs are small (compaction folds them back), so they scan
        // sequentially after the (possibly sharded) base scan.
        if !db.updates.store.is_empty() {
            let seg_clusters = std::mem::take(&mut self.scratch.cluster_buf);
            let base_capacity = db.updates.base_capacity;
            let store = &db.updates.store;
            for &cluster in &seg_clusters {
                for run in store.runs(cluster) {
                    let seg_counts = self.scan_pages(
                        run,
                        &[(0, run.len)],
                        0,
                        slot_bytes,
                        threshold,
                        epp,
                        |_page, _slot, distance, oob| {
                            segment_scan_entry(store, base_capacity, distance, oob)
                        },
                    )?;
                    counts.absorb(seg_counts);
                }
            }
            self.scratch.cluster_buf = seg_clusters;
        }
        // A static scan is one telemetry "window": the whole page list under
        // one threshold.
        if self.scratch.record_windows && counts.entries_passed > 0 {
            self.scratch.window_log.push(counts.entries_passed as u64);
        }
        Ok(counts)
    }

    /// Windowed adaptive fine scan — the partition-invariant adaptive
    /// driver.
    ///
    /// The scan's deterministic page list — the merged base ranges followed
    /// by the probed clusters' segment runs (clusters in probe order, runs
    /// in append order) — is consumed in fixed windows of
    /// [`ReisConfig::adaptive_window_pages`](crate::config::ReisConfig)
    /// pages. Within a window the threshold is constant, so the window's
    /// base portion may shard across channel/die workers exactly like a
    /// static scan (the per-window page count feeds the same
    /// `effective_shards` rule, so tiny windows stay sequential); its
    /// segment slices scan sequentially. At each window *barrier* the
    /// threshold tightens from the Temporal-Top-List state accumulated over
    /// all completed windows ([`tighten_threshold`]). A trailing partial
    /// window ends the scan without a barrier.
    ///
    /// Because the threshold any page sees is a pure function of the page's
    /// position in the list — never of which worker scanned it when — the
    /// results, documents *and transferred-entry counts* are bit-identical
    /// across `ScanParallelism` settings, machines, and the fused batch
    /// executor (which implements the same schedule per query).
    fn fine_scan_windowed<F>(
        &mut self,
        db: &DeployedDatabase,
        pages: &[(usize, usize)],
        mut threshold: u32,
        candidate_count: usize,
        shards_exact: bool,
        make_entry: &F,
    ) -> Result<ScanCounts>
    where
        F: Fn(usize, usize, u32, OobEntry) -> Option<TtlEntry> + Sync,
    {
        let layout = db.layout;
        let epp = layout.embeddings_per_page;
        let slot_bytes = layout.embedding_slot_bytes;
        let geometry = self.ssd.config().geometry;
        let scan_units = ScanShardPlan::scan_units(&geometry);
        let window = self.config.adaptive_window_pages.max(1);
        let base_capacity = db.updates.base_capacity;
        let store = &db.updates.store;
        let region = &db.record.embedding_region;

        // The segment tail of the page list, pinned in probe order.
        let seg_clusters = std::mem::take(&mut self.scratch.cluster_buf);
        let mut run_cursor = std::mem::take(&mut self.scratch.run_cursor);
        run_cursor.reset(store, &seg_clusters);
        let mut run_slices = std::mem::take(&mut self.scratch.run_slices);
        let mut win_ranges = std::mem::take(&mut self.scratch.win_ranges);

        let seg_entry = |_page: usize, _slot: usize, distance: u32, oob: OobEntry| {
            segment_scan_entry(store, base_capacity, distance, oob)
        };

        let mut base_idx = 0usize;
        let mut base_off = 0usize;
        // Entries already logged into the telemetry window log (recording
        // happens at the barriers below, on this thread only).
        let mut logged_entries = 0usize;
        let mut scan = |engine: &mut Self,
                        run_cursor: &mut reis_update::RunCursor,
                        run_slices: &mut Vec<reis_update::RunSlice>,
                        win_ranges: &mut Vec<(usize, usize)>|
         -> Result<ScanCounts> {
            let mut counts = ScanCounts::default();
            loop {
                let mut budget = window;

                // ---- Base portion of this window.
                win_ranges.clear();
                while budget > 0 && base_idx < pages.len() {
                    let (start, end) = pages[base_idx];
                    let from = start + base_off;
                    let take = (end - from).min(budget);
                    win_ranges.push((from, from + take));
                    budget -= take;
                    base_off += take;
                    if from + take == end {
                        base_idx += 1;
                        base_off = 0;
                    }
                }
                if !win_ranges.is_empty() {
                    let win_pages: usize = win_ranges.iter().map(|&(s, e)| e - s).sum();
                    let wshards = engine
                        .config
                        .scan_parallelism
                        .effective_shards(scan_units, win_pages);
                    let scanned = if wshards > 1 && shards_exact {
                        let plan = ScanShardPlan::build(&geometry, wshards, win_ranges, |offset| {
                            region
                                .page_at(&geometry, layout.centroid_pages + offset)
                                .map(|addr| addr.plane_addr())
                        });
                        match plan {
                            Ok(plan) => engine.scan_pages_sharded(
                                region,
                                &plan,
                                layout.centroid_pages,
                                slot_bytes,
                                threshold,
                                epp,
                                make_entry,
                            )?,
                            Err(error) => return Err(error.into()),
                        }
                    } else {
                        engine.scan_pages(
                            region,
                            win_ranges,
                            layout.centroid_pages,
                            slot_bytes,
                            threshold,
                            epp,
                            make_entry,
                        )?
                    };
                    counts.absorb(scanned);
                }

                // ---- Segment portion of this window (a window may straddle
                // the base/segment boundary and any number of runs).
                if budget > 0 {
                    run_slices.clear();
                    budget -= run_cursor.take_into(budget, run_slices);
                    for slice in run_slices.iter() {
                        let seg_counts = engine.scan_pages(
                            &slice.region,
                            &[(slice.start, slice.end)],
                            0,
                            slot_bytes,
                            threshold,
                            epp,
                            &seg_entry,
                        )?;
                        counts.absorb(seg_counts);
                    }
                }

                if budget == window {
                    // The page list was exhausted before this window began.
                    break;
                }
                if budget > 0 {
                    // Trailing partial window: the scan ends, no barrier.
                    break;
                }
                // ---- Window barrier: tighten against every completed
                // window's accumulated TTL state.
                tighten_threshold(&mut engine.scratch.ttl, candidate_count, &mut threshold);
                counts.windows += 1;
                if engine.scratch.record_windows {
                    engine
                        .scratch
                        .window_log
                        .push((counts.entries_passed - logged_entries) as u64);
                    logged_entries = counts.entries_passed;
                }
                if engine.scratch.explain_log.is_some() {
                    engine.scratch.explain_window += 1;
                }
            }
            Ok(counts)
        };
        let result = scan(self, &mut run_cursor, &mut run_slices, &mut win_ranges);
        // Trailing partial window: entries admitted since the last barrier.
        if self.scratch.record_windows {
            if let Ok(counts) = &result {
                if counts.entries_passed > logged_entries {
                    self.scratch
                        .window_log
                        .push((counts.entries_passed - logged_entries) as u64);
                }
            }
        }

        self.scratch.cluster_buf = seg_clusters;
        self.scratch.run_cursor = run_cursor;
        self.scratch.run_slices = run_slices;
        self.scratch.win_ranges = win_ranges;
        result
    }

    /// The fine-search candidates in rank order (valid after
    /// [`InStorageEngine::fine_search`]).
    pub fn candidates(&self) -> &[TtlEntry] {
        self.scratch.ttl.top(self.scratch.candidate_count)
    }

    /// Number of candidates the fine search produced for reranking.
    pub fn num_candidates(&self) -> usize {
        self.candidates().len()
    }

    /// Rerank the fine-search candidates in INT8 precision on the embedded
    /// core: fetch their INT8 copies from the TLC regions (through the
    /// controller, with ECC), recompute distances, and return the `k`
    /// nearest as `(original id, INT8 squared distance)` plus the number of
    /// distinct INT8 pages read.
    ///
    /// Candidates are visited in page order so every distinct page is read
    /// exactly once and each slot is scored directly from the pooled staging
    /// buffer — no page cache, no per-candidate copy and no per-page
    /// allocation (the ECC staging buffer lives in the [`ScanScratch`]).
    /// Base-region candidates resolve their INT8 copy through the layout's
    /// RADR arithmetic; append-segment candidates resolve through the
    /// segment store's slot references. The final ranking ties on
    /// `(distance, storage_index)`, matching the candidate selection's total
    /// order.
    pub fn rerank(
        &mut self,
        db: &DeployedDatabase,
        query_int8: &Int8Vector,
        k: usize,
    ) -> Result<(Vec<Neighbor>, usize)> {
        let layout = db.layout;
        let base_capacity = db.updates.base_capacity;
        let candidate_count = self.scratch.candidate_count;
        let ScanScratch {
            ttl,
            order,
            rerank_buf,
            page_buf,
            page_oob,
            ..
        } = &mut *self.scratch;
        let candidates = ttl.top(candidate_count);

        // Resolve a candidate's INT8 page: `(region, page, slot)`.
        let locate = |candidate: &TtlEntry| -> (StripedRegion, usize, usize) {
            if candidate.radr < base_capacity {
                let (page, slot) = layout.int8_location(candidate.radr as usize);
                (db.record.int8_region, page, slot)
            } else {
                let entry = db
                    .updates
                    .store
                    .entry(candidate.radr - base_capacity)
                    .expect("candidate segment entry exists");
                (entry.int8.region, entry.int8.page, entry.int8.slot)
            }
        };

        order.clear();
        order.extend(0..candidates.len());
        order.sort_unstable_by_key(|&i| {
            let (region, page, _) = locate(&candidates[i]);
            (region.start, page)
        });

        rerank_buf.clear();
        let mut pages_read = 0usize;
        let mut current: Option<(usize, usize)> = None;
        for &i in order.iter() {
            let candidate = &candidates[i];
            let (region, page, slot) = locate(candidate);
            if current != Some((region.start, page)) {
                self.ssd.read_region_page_into(
                    &region,
                    page,
                    RegionKind::Int8Embeddings,
                    page_buf,
                    page_oob,
                )?;
                current = Some((region.start, page));
                pages_read += 1;
            }
            let start = slot * layout.int8_bytes;
            let raw = query_int8.squared_l2_raw(&page_buf[start..start + layout.int8_bytes]);
            rerank_buf.push(RerankCandidate {
                raw,
                storage_index: candidate.storage_index,
                dadr: candidate.dadr,
            });
        }
        rerank_buf.sort_unstable_by_key(|c| (c.raw, c.storage_index));
        let top = rerank_buf[..k.min(rerank_buf.len())]
            .iter()
            .map(|c| Neighbor::new(c.dadr as usize, c.raw as f32))
            .collect();
        Ok((top, pages_read))
    }

    /// Rerank *every* fine-search candidate and return the full scored set
    /// instead of a top-k cut — the leaf half of the scale-out protocol
    /// (see `crate::leaf`). The aggregator needs each candidate's binary
    /// scan distance (to reproduce the single-device candidate cut
    /// globally) *and* its INT8 raw distance (to reproduce the final
    /// ranking), so both are returned per candidate, together with the
    /// stable id. INT8 pages are read in page order exactly like
    /// [`InStorageEngine::rerank`]; the returned set is ordered by the
    /// leaf-local `(binary distance, storage index)` total order.
    pub fn rerank_all(
        &mut self,
        db: &DeployedDatabase,
        query_int8: &Int8Vector,
    ) -> Result<(Vec<LeafCandidate>, usize)> {
        let layout = db.layout;
        let base_capacity = db.updates.base_capacity;
        let candidate_count = self.scratch.candidate_count;
        let ScanScratch {
            ttl,
            order,
            page_buf,
            page_oob,
            ..
        } = &mut *self.scratch;
        let candidates = ttl.top(candidate_count);

        // Resolve a candidate's INT8 page: `(region, page, slot)`.
        let locate = |candidate: &TtlEntry| -> (StripedRegion, usize, usize) {
            if candidate.radr < base_capacity {
                let (page, slot) = layout.int8_location(candidate.radr as usize);
                (db.record.int8_region, page, slot)
            } else {
                let entry = db
                    .updates
                    .store
                    .entry(candidate.radr - base_capacity)
                    .expect("candidate segment entry exists");
                (entry.int8.region, entry.int8.page, entry.int8.slot)
            }
        };

        order.clear();
        order.extend(0..candidates.len());
        order.sort_unstable_by_key(|&i| {
            let (region, page, _) = locate(&candidates[i]);
            (region.start, page)
        });

        let mut scored: Vec<LeafCandidate> = Vec::with_capacity(candidates.len());
        let mut pages_read = 0usize;
        let mut current: Option<(usize, usize)> = None;
        for &i in order.iter() {
            let candidate = &candidates[i];
            let (region, page, slot) = locate(candidate);
            if current != Some((region.start, page)) {
                self.ssd.read_region_page_into(
                    &region,
                    page,
                    RegionKind::Int8Embeddings,
                    page_buf,
                    page_oob,
                )?;
                current = Some((region.start, page));
                pages_read += 1;
            }
            let start = slot * layout.int8_bytes;
            let raw = query_int8.squared_l2_raw(&page_buf[start..start + layout.int8_bytes]);
            scored.push(LeafCandidate {
                binary: candidate.distance,
                storage_index: candidate.storage_index,
                id: candidate.dadr,
                raw,
            });
        }
        scored.sort_unstable_by_key(|c| (c.binary, c.storage_index));
        Ok((scored, pages_read))
    }

    /// Document identification and retrieval: read the chunks of the top-k
    /// results from the document regions, in page order (each document page
    /// is read once), validating every slot's length prefix.
    ///
    /// A result id resolves to its live chunk: relocated ids (inserts, and
    /// upserts of base entries) read from their append-segment page; base
    /// ids read from the base document region at the slot the update state
    /// maps them to (identity before the first compaction). The page reads
    /// stage through the scratch's pooled buffer.
    ///
    /// # Errors
    ///
    /// * [`ReisError::CorruptDocument`] if a slot's 4-byte length prefix is
    ///   missing or points outside the slot.
    /// * [`ReisError::EntryNotFound`] if a result id has no live document
    ///   (cannot happen for ids produced by the same search).
    pub fn fetch_documents(
        &mut self,
        db: &DeployedDatabase,
        top: &[Neighbor],
    ) -> Result<Vec<Vec<u8>>> {
        let layout = db.layout;
        // Resolve an id's document page: `(region, page, slot)`.
        let locate = |id: u32| -> Result<(StripedRegion, usize, usize)> {
            if let Some(&sid) = db.updates.relocated.get(&id) {
                let entry = db
                    .updates
                    .store
                    .entry(sid)
                    .ok_or(ReisError::EntryNotFound(id))?;
                return Ok((
                    entry.document.region,
                    entry.document.page,
                    entry.document.slot,
                ));
            }
            let slot_index = db
                .updates
                .base_doc_slot(id)
                .ok_or(ReisError::EntryNotFound(id))? as usize;
            let (page, slot) = layout.document_location(slot_index);
            Ok((db.record.document_region, page, slot))
        };

        let ScanScratch {
            order,
            page_buf,
            page_oob,
            ..
        } = &mut *self.scratch;
        // Resolve every result's location once, up front; the sort and the
        // read loop then work off the resolved triples.
        let locations = top
            .iter()
            .map(|n| locate(n.id as u32))
            .collect::<Result<Vec<_>>>()?;
        order.clear();
        order.extend(0..top.len());
        order.sort_unstable_by_key(|&i| {
            let (region, page, _) = locations[i];
            (region.start, page)
        });

        let mut documents: Vec<Vec<u8>> = vec![Vec::new(); top.len()];
        let mut current: Option<(usize, usize)> = None;
        for &i in order.iter() {
            let (region, page, slot) = locations[i];
            if current != Some((region.start, page)) {
                self.ssd.read_region_page_into(
                    &region,
                    page,
                    RegionKind::Documents,
                    page_buf,
                    page_oob,
                )?;
                current = Some((region.start, page));
            }
            let start = slot * layout.doc_slot_bytes;
            let corrupt = ReisError::CorruptDocument { page, slot };
            if start + 4 > page_buf.len() {
                return Err(corrupt);
            }
            let len = u32::from_le_bytes(
                page_buf[start..start + 4]
                    .try_into()
                    .expect("4-byte prefix"),
            ) as usize;
            if len > layout.doc_slot_bytes - 4 || start + 4 + len > page_buf.len() {
                return Err(corrupt);
            }
            documents[i] = page_buf[start + 4..start + 4 + len].to_vec();
        }
        Ok(documents)
    }

    /// Number of candidates handed to the reranker for a top-`k` search
    /// (`rerank_factor × k`, the paper's 10·k).
    pub fn rerank_candidates(&self, k: usize) -> usize {
        self.config.rerank_factor.max(1) * k.max(1)
    }

    /// Build the activity record of a query from its scan counts and
    /// downstream statistics.
    #[allow(clippy::too_many_arguments)]
    pub fn activity(
        &self,
        db: &DeployedDatabase,
        coarse: ScanCounts,
        fine: ScanCounts,
        rerank_candidates: usize,
        int8_pages: usize,
        documents: usize,
        dim: usize,
    ) -> QueryActivity {
        QueryActivity {
            coarse_pages: coarse.pages,
            coarse_entries: coarse.entries_passed,
            fine_pages: fine.pages,
            fine_entries: fine.entries_passed,
            fine_windows: fine.windows,
            rerank_candidates,
            int8_pages,
            documents,
            embedding_slot_bytes: db.layout.embedding_slot_bytes,
            dim,
            doc_slot_bytes: db.layout.doc_slot_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::VectorDatabase;
    use reis_ssd::SsdConfig;

    #[test]
    fn fetch_documents_reports_corrupt_slots_instead_of_panicking() {
        let vectors: Vec<Vec<f32>> = (0..24)
            .map(|i| {
                (0..32)
                    .map(|d| (((i * 7 + d) % 13) as f32 - 6.0) / 3.0)
                    .collect()
            })
            .collect();
        let documents: Vec<Vec<u8>> = (0..24).map(|i| format!("doc {i}").into_bytes()).collect();
        let mut ssd = SsdController::new(SsdConfig::tiny());
        let db = VectorDatabase::flat(&vectors, documents).unwrap();
        let deployed = crate::deploy::deploy(&mut ssd, &db, 1).unwrap();

        // Corrupt the first document page: erase its block and reprogram the
        // page with all-ones, which makes every slot's length prefix invalid.
        let geometry = ssd.config().geometry;
        let addr = deployed
            .record
            .document_region
            .page_at(&geometry, 0)
            .unwrap();
        ssd.device_mut().erase_block(addr.block_addr()).unwrap();
        ssd.device_mut()
            .program_page(
                addr,
                &vec![0xFF; geometry.page_size_bytes],
                &[],
                reis_nand::ProgramScheme::EnhancedSlc,
            )
            .unwrap();

        let mut scratch = ScanScratch::new();
        let config = crate::config::ReisConfig::tiny();
        let pool = WorkerPool::new(2);
        let mut engine = InStorageEngine::new(&mut ssd, config, &mut scratch, &pool);
        let top = [Neighbor::new(0, 0.0)];
        let err = engine.fetch_documents(&deployed, &top).unwrap_err();
        assert!(
            matches!(err, ReisError::CorruptDocument { page: 0, slot: 0 }),
            "expected CorruptDocument, got {err:?}"
        );
    }

    #[test]
    fn merge_page_ranges_coalesces_overlaps() {
        let mut ranges = vec![(5, 7), (0, 2), (1, 4), (7, 9), (12, 12), (10, 11)];
        merge_page_ranges(&mut ranges);
        assert_eq!(ranges, vec![(0, 4), (5, 9), (10, 11)]);
        let mut empty: Vec<(usize, usize)> = vec![(3, 3)];
        merge_page_ranges(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn in_valid_ranges_uses_binary_search_semantics() {
        let ranges = vec![(0u32, 4u32), (10, 10), (20, 29)];
        for (index, expected) in [
            (0, true),
            (4, true),
            (5, false),
            (9, false),
            (10, true),
            (11, false),
            (25, true),
            (30, false),
        ] {
            assert_eq!(in_valid_ranges(&ranges, index), expected, "index {index}");
        }
        assert!(!in_valid_ranges(&[], 0));
    }
}
