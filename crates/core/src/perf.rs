//! Latency model of one in-storage query.
//!
//! The functional engine (`engine` module) counts what a query actually did —
//! pages scanned, entries that passed the distance filter, candidates
//! reranked, documents fetched. This module turns those counts into latency
//! by composing the flash, channel, DRAM and embedded-core costs of Table 3
//! with the parallelism and pipelining rules of Sec. 4.3: all planes sense
//! and compute concurrently, channels transfer concurrently, and (with PL
//! enabled) reads, in-plane computation, channel transfers and the
//! controller's selection kernel overlap.

use serde::{Deserialize, Serialize};

use reis_nand::{Nanos, ProgramScheme};
use reis_ssd::{EccParams, EmbeddedCores};

use crate::config::ReisConfig;

/// DRAM bytes of one relocation-map slot (stable id → segment id), matching
/// the update path's bookkeeping accounting.
const RELOCATION_ENTRY_BYTES: usize = 8;

/// What one query did, as counted by the functional engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryActivity {
    /// Centroid pages scanned during the coarse-grained search.
    pub coarse_pages: usize,
    /// TTL-C entries transferred to the controller during the coarse search.
    pub coarse_entries: usize,
    /// Embedding pages scanned during the fine-grained search.
    pub fine_pages: usize,
    /// TTL-E entries transferred to the controller during the fine search.
    pub fine_entries: usize,
    /// Adaptive window barriers the fine scan crossed (0 for
    /// static-threshold scans). At each barrier the embedded core re-ran
    /// quickselect over the accumulated Temporal Top List to tighten the
    /// in-plane threshold; [`PerfModel::window_maintenance`] prices that
    /// from the per-window entry counts. The barrier count is a pure
    /// function of the scan's page list and the configured window size, so
    /// it is identical across every parallelism setting.
    pub fine_windows: usize,
    /// Candidates handed to the reranking kernel.
    pub rerank_candidates: usize,
    /// Distinct INT8 pages fetched for reranking.
    pub int8_pages: usize,
    /// Documents fetched and returned to the host.
    pub documents: usize,
    /// Bytes of one embedding slot (mini-page) — also the broadcast payload.
    pub embedding_slot_bytes: usize,
    /// Embedding dimensionality (for the rerank kernel cost).
    pub dim: usize,
    /// Bytes of one document slot.
    pub doc_slot_bytes: usize,
}

impl QueryActivity {
    /// Fold another query's counters into this one — the scale-out
    /// aggregator uses this to report cluster-wide activity as the sum of
    /// its leaves' work. The geometry descriptors (slot bytes,
    /// dimensionality) are not additive: they must agree across the merged
    /// activities and the receiver's are kept (a zero-valued receiver, as
    /// `QueryActivity::default()` produces, adopts the other side's).
    pub fn absorb(&mut self, other: &QueryActivity) {
        debug_assert!(
            self.embedding_slot_bytes == 0
                || other.embedding_slot_bytes == 0
                || self.embedding_slot_bytes == other.embedding_slot_bytes,
            "merging activities of different embedding layouts"
        );
        debug_assert!(
            self.dim == 0 || other.dim == 0 || self.dim == other.dim,
            "merging activities of different dimensionalities"
        );
        self.coarse_pages += other.coarse_pages;
        self.coarse_entries += other.coarse_entries;
        self.fine_pages += other.fine_pages;
        self.fine_entries += other.fine_entries;
        self.fine_windows += other.fine_windows;
        self.rerank_candidates += other.rerank_candidates;
        self.int8_pages += other.int8_pages;
        self.documents += other.documents;
        if self.embedding_slot_bytes == 0 {
            self.embedding_slot_bytes = other.embedding_slot_bytes;
        }
        if self.dim == 0 {
            self.dim = other.dim;
        }
        if self.doc_slot_bytes == 0 {
            self.doc_slot_bytes = other.doc_slot_bytes;
        }
    }
}

/// Per-phase latency of one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Input Broadcasting of the query into the page buffers.
    pub input_broadcast: Nanos,
    /// Coarse-grained centroid scan (senses, in-plane compute, transfers).
    pub coarse_scan: Nanos,
    /// Fine-grained embedding scan.
    pub fine_scan: Nanos,
    /// Quickselect on the embedded core (portion not hidden by the scan).
    pub select: Nanos,
    /// INT8 fetch plus rerank kernel plus final quicksort.
    pub rerank: Nanos,
    /// Document identification and flash reads.
    pub document_fetch: Nanos,
    /// Transfer of the retrieved documents to the host.
    pub host_transfer: Nanos,
}

impl LatencyBreakdown {
    /// End-to-end latency of the query.
    pub fn total(&self) -> Nanos {
        self.input_broadcast
            + self.coarse_scan
            + self.fine_scan
            + self.select
            + self.rerank
            + self.document_fetch
            + self.host_transfer
    }
}

/// The latency model for a given REIS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PerfModel {
    config: ReisConfig,
}

impl PerfModel {
    /// Create the model for a configuration.
    pub fn new(config: ReisConfig) -> Self {
        PerfModel { config }
    }

    /// The configuration driving the model.
    pub fn config(&self) -> &ReisConfig {
        &self.config
    }

    /// Latency of broadcasting the query embedding into every die's page
    /// buffers. Dies on the same channel receive the broadcast one after the
    /// other; channels operate in parallel; MPIBC lets all planes of a die
    /// latch the payload in one transfer.
    pub fn input_broadcast(&self, query_bytes: usize) -> Nanos {
        let geom = &self.config.ssd.geometry;
        let timing = &self.config.ssd.timing;
        let per_die = timing.input_broadcast(
            query_bytes,
            geom.planes_per_die,
            self.config.optimizations.multi_plane_ibc,
        );
        per_die * geom.dies_per_channel as u64
    }

    /// Latency of scanning `pages` embedding (or centroid) pages and
    /// transferring `entries_out` TTL entries to the controller.
    ///
    /// `entries_out` is the *actual* transferred-entry count the functional
    /// engine measured, so optimizations that shrink the transfer — static
    /// distance filtering, and the adaptive threshold tightening that
    /// discards provably-unrankable entries in-plane — are priced directly:
    /// fewer entries mean smaller per-round channel transfers here and a
    /// cheaper quickselect in [`PerfModel::select`].
    pub fn scan(&self, pages: usize, entries_out: usize, embedding_slot_bytes: usize) -> Nanos {
        self.fused_scan(pages, 1, entries_out, embedding_slot_bytes)
    }

    /// Latency of one *fused multi-query* scan pass: `pages` pages sensed
    /// once each, every sensed page scored in-plane against `batch`
    /// resident queries, and `entries_out` TTL entries (across the whole
    /// batch) transferred to the controller.
    ///
    /// This prices the single-sense/multi-score asymmetry of page-major
    /// batch execution: the sense amortizes over the batch while the
    /// XOR + fail-bit-count peripheral still runs once per query, so a
    /// fused pass over `B` queries costs far less than `B` independent
    /// scans but more than one. With `batch == 1` this is exactly
    /// [`PerfModel::scan`].
    pub fn fused_scan(
        &self,
        pages: usize,
        batch: usize,
        entries_out: usize,
        embedding_slot_bytes: usize,
    ) -> Nanos {
        if pages == 0 {
            return Nanos::ZERO;
        }
        let geom = &self.config.ssd.geometry;
        let timing = &self.config.ssd.timing;
        let opts = &self.config.optimizations;

        let total_planes = geom.total_planes();
        let rounds = pages.div_ceil(total_planes);
        let sense = timing.read_latency(ProgramScheme::EnhancedSlc);
        let compute = timing.in_plane_distance(opts.distance_filtering) * batch.max(1) as u64;

        // Channel transfer per round: the entries produced in one round are
        // spread evenly over the channels.
        let entry_bytes = embedding_slot_bytes + self.config.ttl_metadata_bytes;
        let entries_per_round = entries_out as f64 / rounds as f64;
        let bytes_per_channel_round = entries_per_round * entry_bytes as f64 / geom.channels as f64;
        let transfer = Nanos::from_secs_f64(bytes_per_channel_round / timing.channel_bandwidth_bps);

        if opts.pipelining {
            // Read-page-cache mode: pipeline fill (first sense), a steady
            // state where each remaining round costs the slowest of
            // {next sense, in-plane compute, channel transfer}, and a drain
            // (compute + transfer of the last page).
            let steady = sense.max(compute.max(transfer));
            sense + steady * (rounds as u64 - 1) + compute + transfer
        } else {
            (sense + compute + transfer) * rounds as u64
        }
    }

    /// Latency of the quickselect kernel over `entries` TTL entries, given
    /// the scan time it can hide behind when pipelining is enabled.
    pub fn select(&self, entries: usize, k: usize, scan_time: Nanos) -> Nanos {
        self.select_with_maintenance(entries, k, Nanos::ZERO, scan_time)
    }

    /// Latency of the selection phase including the windowed adaptive
    /// maintenance: the final quickselect over `entries` TTL entries plus
    /// the (precomputed, see [`PerfModel::window_maintenance`]) per-barrier
    /// TTL upkeep, hidden together behind `scan_time` when pipelining is
    /// enabled — both run on the embedded core, interleaved with the scan
    /// they overlap. This is the single implementation of the selection
    /// pricing rule; [`PerfModel::select`] is the static-scan special case.
    pub fn select_with_maintenance(
        &self,
        entries: usize,
        k: usize,
        maintenance: Nanos,
        scan_time: Nanos,
    ) -> Nanos {
        let cores = EmbeddedCores::new(self.config.ssd.cores);
        let kernel = cores.quickselect(entries, k) + maintenance;
        if self.config.optimizations.pipelining {
            kernel.saturating_sub(scan_time)
        } else {
            kernel
        }
    }

    /// Controller cost of the windowed adaptive-threshold maintenance: one
    /// quickselect of the accumulated Temporal Top List per window barrier.
    ///
    /// Priced from the per-window entry counts: between two barriers the
    /// scan admits `entries / barriers` entries on average on top of the
    /// `candidates` the list was last truncated to, so each barrier's
    /// quickselect examines roughly `candidates + entries / barriers`
    /// entries and keeps `candidates`. Static scans (`barriers == 0`) cost
    /// nothing. Like the final selection kernel, this runs on the embedded
    /// core and — with pipelining enabled — overlaps the ongoing scan (see
    /// [`PerfModel::query_latency`] for how the two are hidden together).
    pub fn window_maintenance(&self, barriers: usize, entries: usize, candidates: usize) -> Nanos {
        if barriers == 0 {
            return Nanos::ZERO;
        }
        let cores = EmbeddedCores::new(self.config.ssd.cores);
        let per_window = entries / barriers;
        cores.quickselect(candidates + per_window, candidates) * barriers as u64
    }

    /// Latency of the reranking phase: fetching `int8_pages` pages of INT8
    /// embeddings through the controller (TLC reads + ECC, spread across the
    /// channels), recomputing `candidates` distances on the embedded core and
    /// quicksorting the survivors.
    pub fn rerank(&self, candidates: usize, int8_pages: usize, dim: usize) -> Nanos {
        if candidates == 0 {
            return Nanos::ZERO;
        }
        let geom = &self.config.ssd.geometry;
        let timing = &self.config.ssd.timing;
        let ecc = EccParams::ldpc();
        let cores = EmbeddedCores::new(self.config.ssd.cores);

        let page_bytes = geom.page_size_bytes;
        let per_page = timing.read_latency(ProgramScheme::Ispp(reis_nand::CellMode::Tlc))
            + timing.channel_transfer(page_bytes)
            + ecc.decode_latency_per_page;
        let serial_pages = int8_pages.div_ceil(geom.channels);
        per_page * serial_pages as u64 + cores.rerank(candidates, dim) + cores.quicksort(candidates)
    }

    /// Latency of fetching `documents` chunks of `doc_slot_bytes` each from
    /// the TLC document region (reads spread over the channels).
    pub fn document_fetch(&self, documents: usize, doc_slot_bytes: usize) -> Nanos {
        if documents == 0 {
            return Nanos::ZERO;
        }
        let geom = &self.config.ssd.geometry;
        let timing = &self.config.ssd.timing;
        let ecc = EccParams::ldpc();
        let per_doc = timing.read_latency(ProgramScheme::Ispp(reis_nand::CellMode::Tlc))
            + timing.channel_transfer(doc_slot_bytes)
            + ecc.decode_latency_per_page;
        per_doc * documents.div_ceil(geom.channels) as u64
    }

    /// Latency of returning `documents` chunks to the host over PCIe.
    pub fn host_transfer(&self, documents: usize, doc_slot_bytes: usize) -> Nanos {
        Nanos::from_secs_f64(
            (documents * doc_slot_bytes) as f64 / self.config.host_link_bandwidth_bps,
        )
    }

    /// Compose the full per-query latency from the activity counts.
    pub fn query_latency(&self, activity: &QueryActivity, k: usize) -> LatencyBreakdown {
        let input_broadcast = self.input_broadcast(activity.embedding_slot_bytes);
        let coarse_scan = self.scan(
            activity.coarse_pages,
            activity.coarse_entries,
            activity.embedding_slot_bytes,
        );
        let fine_scan = self.scan(
            activity.fine_pages,
            activity.fine_entries,
            activity.embedding_slot_bytes,
        );
        let candidates = self.config.rerank_factor * k;
        let select = self.select_with_maintenance(
            activity.coarse_entries + activity.fine_entries,
            candidates,
            self.window_maintenance(activity.fine_windows, activity.fine_entries, candidates),
            coarse_scan + fine_scan,
        );
        let rerank = self.rerank(
            activity.rerank_candidates,
            activity.int8_pages,
            activity.dim,
        );
        let document_fetch = self.document_fetch(activity.documents, activity.doc_slot_bytes);
        let host_transfer = self.host_transfer(activity.documents, activity.doc_slot_bytes);
        LatencyBreakdown {
            input_broadcast,
            coarse_scan,
            fine_scan,
            select,
            rerank,
            document_fetch,
            host_transfer,
        }
    }

    /// Controller-side cost of appending `entries` new index entries: the
    /// in-plane compute of the centroid-assignment scan (its page senses are
    /// priced by the mutation path itself), the nearest-centroid selection
    /// on the embedded core, and the DRAM bookkeeping of the segment-entry
    /// table and relocation map. Flat deployments skip the assignment scan
    /// (`centroid_pages == 0`) and pay only the DRAM bookkeeping.
    ///
    /// This is what makes the modelled insert/upsert latency more than
    /// flash-only: page programs + centroid senses come from the mutation
    /// path, controller cores and DRAM from here.
    pub fn append_overhead(
        &self,
        entries: usize,
        centroid_pages: usize,
        centroids: usize,
    ) -> Nanos {
        if entries == 0 {
            return Nanos::ZERO;
        }
        let timing = &self.config.ssd.timing;
        let cores = EmbeddedCores::new(self.config.ssd.cores);
        let mut per_entry = Nanos::ZERO;
        if centroid_pages > 0 {
            // XOR + fail-bit count per centroid page (no pass/fail check —
            // the assignment keeps every distance), then the min-selection
            // over all centroid distances on the embedded core.
            per_entry += timing.in_plane_distance(false) * centroid_pages as u64;
            per_entry += cores.quickselect(centroids.max(1), 1);
        }
        // DRAM bookkeeping: one segment-table entry plus one relocation-map
        // slot per appended entry.
        per_entry +=
            self.dram_write(reis_update::segment::SEGMENT_ENTRY_BYTES + RELOCATION_ENTRY_BYTES);
        per_entry * entries as u64
    }

    /// Controller-side cost of tombstoning one entry: the id-map lookup on
    /// the embedded core plus the DRAM write of the validity bit. Deletes
    /// touch no flash, so this is their entire modelled latency.
    pub fn tombstone_overhead(&self) -> Nanos {
        let cores = EmbeddedCores::new(self.config.ssd.cores);
        cores.ftl_lookups(1) + self.dram_write(1)
    }

    /// Latency of one bookkeeping write of `bytes` to the controller DRAM
    /// (one access plus the streaming transfer, the same model
    /// `InternalDram::write` applies).
    fn dram_write(&self, bytes: usize) -> Nanos {
        let dram = &self.config.ssd.dram;
        dram.access_latency + Nanos::from_secs_f64(bytes as f64 / dram.bandwidth_bps)
    }

    /// Time the embedded core is busy for one query (used for core energy).
    /// Includes the per-barrier TTL maintenance of windowed adaptive scans —
    /// hidden or not, the core performs that work.
    pub fn core_busy(&self, activity: &QueryActivity, k: usize) -> Nanos {
        let cores = EmbeddedCores::new(self.config.ssd.cores);
        let candidates = self.config.rerank_factor * k;
        cores.quickselect(activity.coarse_entries + activity.fine_entries, candidates)
            + self.window_maintenance(activity.fine_windows, activity.fine_entries, candidates)
            + cores.rerank(activity.rerank_candidates, activity.dim)
            + cores.quicksort(activity.rerank_candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;

    fn activity() -> QueryActivity {
        QueryActivity {
            coarse_pages: 16,
            coarse_entries: 64,
            fine_pages: 512,
            fine_entries: 2_000,
            fine_windows: 0,
            rerank_candidates: 100,
            int8_pages: 32,
            documents: 10,
            embedding_slot_bytes: 128,
            dim: 1024,
            doc_slot_bytes: 4096,
        }
    }

    #[test]
    fn all_phases_contribute_and_total_sums_them() {
        let model = PerfModel::new(ReisConfig::ssd1());
        let breakdown = model.query_latency(&activity(), 10);
        assert!(breakdown.input_broadcast > Nanos::ZERO);
        assert!(breakdown.coarse_scan > Nanos::ZERO);
        assert!(breakdown.fine_scan > breakdown.coarse_scan);
        assert!(breakdown.rerank > Nanos::ZERO);
        assert!(breakdown.document_fetch > Nanos::ZERO);
        assert!(breakdown.host_transfer > Nanos::ZERO);
        let manual = breakdown.input_broadcast
            + breakdown.coarse_scan
            + breakdown.fine_scan
            + breakdown.select
            + breakdown.rerank
            + breakdown.document_fetch
            + breakdown.host_transfer;
        assert_eq!(breakdown.total(), manual);
    }

    #[test]
    fn pipelining_reduces_scan_latency() {
        let with = PerfModel::new(ReisConfig::ssd1());
        let without = PerfModel::new(ReisConfig::ssd1().with_optimizations(Optimizations {
            pipelining: false,
            ..Optimizations::all()
        }));
        let a = activity();
        assert!(
            with.scan(a.fine_pages, a.fine_entries, 128)
                < without.scan(a.fine_pages, a.fine_entries, 128)
        );
    }

    #[test]
    fn mpibc_reduces_broadcast_latency() {
        let with = PerfModel::new(ReisConfig::ssd2());
        let without = PerfModel::new(ReisConfig::ssd2().with_optimizations(Optimizations {
            multi_plane_ibc: false,
            ..Optimizations::all()
        }));
        assert!(with.input_broadcast(128) < without.input_broadcast(128));
    }

    #[test]
    fn fewer_transferred_entries_speed_up_the_scan() {
        // This is the effect distance filtering has on the timing model: the
        // same pages are scanned but far fewer entries cross the channels.
        let model = PerfModel::new(ReisConfig::ssd1());
        let filtered = model.scan(4096, 5_000, 128);
        let unfiltered = model.scan(4096, 4096 * 128, 128);
        assert!(filtered < unfiltered);
    }

    #[test]
    fn ssd2_is_faster_than_ssd1_for_the_same_activity() {
        let a = activity();
        let t1 = PerfModel::new(ReisConfig::ssd1())
            .query_latency(&a, 10)
            .total();
        let t2 = PerfModel::new(ReisConfig::ssd2())
            .query_latency(&a, 10)
            .total();
        assert!(t2 < t1);
    }

    #[test]
    fn empty_activity_costs_only_the_broadcast() {
        let model = PerfModel::new(ReisConfig::ssd1());
        let empty = QueryActivity {
            embedding_slot_bytes: 128,
            dim: 1024,
            ..Default::default()
        };
        let b = model.query_latency(&empty, 10);
        assert_eq!(b.coarse_scan, Nanos::ZERO);
        assert_eq!(b.fine_scan, Nanos::ZERO);
        assert_eq!(b.rerank, Nanos::ZERO);
        assert_eq!(b.document_fetch, Nanos::ZERO);
        assert!(b.input_broadcast > Nanos::ZERO);
    }

    #[test]
    fn fused_scan_amortizes_the_sense_but_not_the_compute() {
        let model = PerfModel::new(ReisConfig::ssd1());
        let (pages, entries, slot) = (4096usize, 5_000usize, 128usize);
        let single = model.scan(pages, entries, slot);
        // batch == 1 is exactly the single-query scan.
        assert_eq!(model.fused_scan(pages, 1, entries, slot), single);
        for batch in [2usize, 4, 8] {
            let fused = model.fused_scan(pages, batch, entries * batch, slot);
            let independent = single * batch as u64;
            assert!(
                fused < independent,
                "fused batch {batch}: {fused} should beat {independent}"
            );
            // The per-query in-plane compute still runs, so fusing is not free.
            assert!(
                fused > single,
                "fused batch {batch} must cost more than one scan"
            );
        }
    }

    #[test]
    fn window_maintenance_prices_barrier_quickselects() {
        let model = PerfModel::new(ReisConfig::ssd1());
        // Static scans cost nothing.
        assert_eq!(model.window_maintenance(0, 5_000, 100), Nanos::ZERO);
        let few = model.window_maintenance(4, 5_000, 100);
        assert!(few > Nanos::ZERO);
        // More barriers over the same entries cost more core time (each
        // barrier pays the candidate-set floor again).
        let many = model.window_maintenance(64, 5_000, 100);
        assert!(many > few);
        // The maintenance flows into core busy time and — without
        // pipelining to hide it — into the modelled select latency.
        let static_activity = activity();
        let windowed = QueryActivity {
            fine_windows: 64,
            ..static_activity
        };
        assert!(model.core_busy(&windowed, 10) > model.core_busy(&static_activity, 10));
        let unpipelined = PerfModel::new(ReisConfig::ssd1().with_optimizations(Optimizations {
            pipelining: false,
            ..Optimizations::all()
        }));
        assert!(
            unpipelined.query_latency(&windowed, 10).select
                > unpipelined.query_latency(&static_activity, 10).select
        );
    }

    #[test]
    fn append_overhead_prices_cores_and_dram() {
        let model = PerfModel::new(ReisConfig::ssd1());
        assert_eq!(model.append_overhead(0, 4, 100), Nanos::ZERO);
        // Flat deployments still pay the DRAM bookkeeping.
        let flat = model.append_overhead(1, 0, 0);
        assert!(flat > Nanos::ZERO);
        // IVF appends add the assignment scan and the centroid selection.
        let ivf = model.append_overhead(1, 4, 100);
        assert!(ivf > flat);
        assert!(model.append_overhead(2, 4, 100) == ivf * 2);
        assert!(model.append_overhead(1, 8, 100) > ivf);
    }

    #[test]
    fn tombstone_overhead_is_positive_and_tiny() {
        let model = PerfModel::new(ReisConfig::ssd1());
        let t = model.tombstone_overhead();
        assert!(t > Nanos::ZERO);
        assert!(t < model.append_overhead(1, 0, 0) * 10);
    }

    #[test]
    fn core_busy_time_is_positive_and_scales() {
        let model = PerfModel::new(ReisConfig::ssd1());
        let small = model.core_busy(
            &QueryActivity {
                fine_entries: 100,
                rerank_candidates: 10,
                dim: 128,
                ..activity()
            },
            10,
        );
        let large = model.core_busy(&activity(), 10);
        assert!(large > small);
    }
}
