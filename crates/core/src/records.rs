//! Controller-DRAM resident records: R-IVF and the Temporal Top Lists.
//!
//! Besides the R-DB database records (which live in `reis-ssd`'s coarse FTL),
//! REIS keeps two further structures in the SSD's DRAM (Sec. 4.2.1, 4.3.1):
//! the **R-IVF** array describing every IVF cluster (centroid address, the
//! index range of its member embeddings, and an 8-bit tag) and the
//! **Temporal Top Lists** (TTL-C for centroids, TTL-E for embeddings) that
//! accumulate candidate entries streamed out of the flash dies before the
//! embedded core runs quickselect on them.

use serde::{Deserialize, Serialize};

use reis_ann::topk::{distance_index_key, quickselect_by_key};

/// DRAM bytes per R-IVF entry (the paper quotes 15 bytes: centroid address,
/// first/last member index, and the tag).
pub const RIVF_ENTRY_BYTES: usize = 15;

/// One R-IVF entry describing an IVF cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RIvfEntry {
    /// Page offset of the centroid inside the centroid sub-region.
    pub centroid_page: u32,
    /// Mini-page slot of the centroid within that page.
    pub centroid_slot: u32,
    /// Storage-order index of the first embedding belonging to the cluster.
    pub first_embedding: u32,
    /// Storage-order index of the last embedding belonging to the cluster
    /// (inclusive).
    pub last_embedding: u32,
    /// 8-bit tag identifying the cluster.
    pub tag: u8,
}

impl RIvfEntry {
    /// Number of embeddings in the cluster (0 when the cluster is empty,
    /// encoded as `first_embedding > last_embedding`).
    pub fn member_count(&self) -> usize {
        if self.last_embedding < self.first_embedding {
            0
        } else {
            (self.last_embedding - self.first_embedding) as usize + 1
        }
    }
}

/// The R-IVF array: one entry per IVF cluster, resident in controller DRAM.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RIvf {
    entries: Vec<RIvfEntry>,
}

impl RIvf {
    /// Create an R-IVF array from per-cluster entries.
    pub fn new(entries: Vec<RIvfEntry>) -> Self {
        RIvf { entries }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the array holds no clusters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry of cluster `tag_index` (clusters are numbered in storage
    /// order; the 8-bit tag equals `tag_index % 256`).
    pub fn entry(&self, index: usize) -> Option<&RIvfEntry> {
        self.entries.get(index)
    }

    /// All entries in cluster order.
    pub fn entries(&self) -> &[RIvfEntry] {
        &self.entries
    }

    /// DRAM footprint of the array in bytes (`clusters × 15 B`).
    pub fn footprint_bytes(&self) -> usize {
        self.entries.len() * RIVF_ENTRY_BYTES
    }
}

/// One Temporal-Top-List entry streamed from a flash die to the controller.
///
/// During the coarse search the `payload` field carries the cluster tag;
/// during the fine search it is unused and the rescoring/document addresses
/// matter instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TtlEntry {
    /// Hamming distance from the query (DIST).
    pub distance: u32,
    /// Storage-order index of the embedding (derived from its mini-page
    /// address EADR).
    pub storage_index: u32,
    /// Address of the INT8 copy used for reranking (RADR).
    pub radr: u32,
    /// Address of the associated document chunk (DADR); this also identifies
    /// the original database entry.
    pub dadr: u32,
    /// Cluster tag (TAG) — meaningful for TTL-C entries.
    pub tag: u8,
}

/// A Temporal Top List accumulating candidate entries in controller DRAM.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalTopList {
    entries: Vec<TtlEntry>,
}

impl TemporalTopList {
    /// Create an empty list.
    pub fn new() -> Self {
        TemporalTopList::default()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append entries streamed from a die.
    pub fn extend(&mut self, entries: impl IntoIterator<Item = TtlEntry>) {
        self.entries.extend(entries);
    }

    /// Append one entry streamed from a die.
    pub fn push(&mut self, entry: TtlEntry) {
        self.entries.push(entry);
    }

    /// Drop all entries but keep the allocation, so one list can be reused
    /// across the coarse and fine phases (and across queries) without
    /// re-allocating.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Move every entry of `other` into this list, leaving `other` empty
    /// (its allocation is kept for reuse). This is the shard-merge step of
    /// an intra-query sharded scan: each scan shard accumulates candidates
    /// in its own list, and the controller concatenates them before running
    /// quickselect. Because [`TemporalTopList::quickselect`] selects under a
    /// total order, the merge order does not affect the final top-k.
    pub fn absorb(&mut self, other: &mut TemporalTopList) {
        self.entries.append(&mut other.entries);
    }

    /// Sort the retained entries ascending by `(distance, storage_index)` in
    /// place (the final quicksort step, without copying the list).
    pub fn sort_ascending(&mut self) {
        self.entries
            .sort_unstable_by_key(|e| (e.distance, e.storage_index));
    }

    /// The first `k` entries as a borrowed slice (call
    /// [`TemporalTopList::sort_ascending`] first to make these the `k`
    /// nearest in rank order).
    pub fn top(&self, k: usize) -> &[TtlEntry] {
        &self.entries[..k.min(self.entries.len())]
    }

    /// Total entries received so far (before any truncation).
    pub fn entries(&self) -> &[TtlEntry] {
        &self.entries
    }

    /// Run the quickselect kernel: keep only the `k` smallest entries under
    /// the total order `(distance, storage_index)` (unordered), discarding
    /// the rest, and return how many entries were examined. This mirrors
    /// what the embedded core does after each batch of pages so the list
    /// never grows unboundedly.
    ///
    /// The `storage_index` tie-break makes the kept set independent of the
    /// order entries were streamed in, so a sharded scan that merges
    /// per-channel/per-die candidate lists selects bit-identically to a
    /// sequential scan of the same pages.
    pub fn quickselect(&mut self, k: usize) -> usize {
        let examined = self.entries.len();
        if self.entries.len() > k {
            quickselect_by_key(&mut self.entries, k, |e| {
                distance_index_key(e.distance, e.storage_index)
            });
            self.entries.truncate(k);
        }
        examined
    }

    /// Return the `k` smallest-distance entries in ascending order (the
    /// final quicksort step).
    pub fn sorted_top(&self, k: usize) -> Vec<TtlEntry> {
        let mut copy = self.entries.clone();
        copy.sort_by_key(|e| (e.distance, e.storage_index));
        copy.truncate(k);
        copy
    }

    /// DRAM footprint in bytes, given the on-wire entry size.
    pub fn footprint_bytes(&self, entry_bytes: usize) -> usize {
        self.entries.len() * entry_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(distance: u32, idx: u32) -> TtlEntry {
        TtlEntry {
            distance,
            storage_index: idx,
            radr: idx,
            dadr: idx * 2,
            tag: (idx % 256) as u8,
        }
    }

    #[test]
    fn rivf_tracks_clusters_and_footprint() {
        let rivf = RIvf::new(vec![
            RIvfEntry {
                centroid_page: 0,
                centroid_slot: 0,
                first_embedding: 0,
                last_embedding: 9,
                tag: 0,
            },
            RIvfEntry {
                centroid_page: 0,
                centroid_slot: 1,
                first_embedding: 10,
                last_embedding: 24,
                tag: 1,
            },
        ]);
        assert_eq!(rivf.len(), 2);
        assert_eq!(rivf.entry(0).unwrap().member_count(), 10);
        assert_eq!(rivf.entry(1).unwrap().member_count(), 15);
        assert_eq!(rivf.footprint_bytes(), 30);
        assert!(rivf.entry(2).is_none());
        assert!(!rivf.is_empty());
    }

    #[test]
    fn ttl_quickselect_keeps_the_k_nearest() {
        let mut ttl = TemporalTopList::new();
        ttl.extend((0..100).map(|i| entry(1000 - i, i)));
        assert_eq!(ttl.len(), 100);
        let examined = ttl.quickselect(10);
        assert_eq!(examined, 100);
        assert_eq!(ttl.len(), 10);
        // The kept entries are exactly the ten largest indices (smallest distances).
        let mut kept: Vec<u32> = ttl.entries().iter().map(|e| e.storage_index).collect();
        kept.sort_unstable();
        assert_eq!(kept, (90..100).collect::<Vec<u32>>());
        let sorted = ttl.sorted_top(3);
        assert_eq!(sorted[0].storage_index, 99);
        assert!(sorted.windows(2).all(|w| w[0].distance <= w[1].distance));
    }

    #[test]
    fn in_place_sort_and_top_match_sorted_top() {
        let mut ttl = TemporalTopList::new();
        ttl.extend((0..50).map(|i| entry((i * 37) % 23, i)));
        let copied = ttl.sorted_top(7);
        ttl.sort_ascending();
        assert_eq!(ttl.top(7), &copied[..]);
        ttl.clear();
        assert!(ttl.is_empty());
        assert!(ttl.top(3).is_empty());
    }

    #[test]
    fn quickselect_with_large_k_is_a_no_op() {
        let mut ttl = TemporalTopList::new();
        ttl.extend((0..5).map(|i| entry(i, i)));
        ttl.quickselect(100);
        assert_eq!(ttl.len(), 5);
        assert_eq!(ttl.footprint_bytes(141), 5 * 141);
        assert!(!ttl.is_empty());
    }
}
