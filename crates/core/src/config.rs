//! REIS system configuration.

use serde::{Deserialize, Serialize};

use reis_ssd::SsdConfig;

/// The three optimizations evaluated in the sensitivity study of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Optimizations {
    /// Distance Filtering (DF): discard embeddings whose Hamming distance
    /// from the query exceeds a threshold inside the flash die, before they
    /// are transferred to the controller (Sec. 4.3.3).
    pub distance_filtering: bool,
    /// Pipelining (PL): overlap page reads, in-plane computation, channel
    /// transfers and the controller's selection kernel (Sec. 4.3.4).
    pub pipelining: bool,
    /// Multi-Plane Input Broadcasting (MPIBC): broadcast the query to all
    /// planes of a die simultaneously (Sec. 4.3.4).
    pub multi_plane_ibc: bool,
}

impl Optimizations {
    /// All optimizations enabled (the full REIS design).
    pub fn all() -> Self {
        Optimizations {
            distance_filtering: true,
            pipelining: true,
            multi_plane_ibc: true,
        }
    }

    /// All optimizations disabled (the `No-OPT` baseline of Fig. 9).
    pub fn none() -> Self {
        Optimizations {
            distance_filtering: false,
            pipelining: false,
            multi_plane_ibc: false,
        }
    }

    /// `No-OPT` plus Distance Filtering only.
    pub fn df_only() -> Self {
        Optimizations {
            distance_filtering: true,
            ..Optimizations::none()
        }
    }

    /// Distance Filtering plus Pipelining.
    pub fn df_pl() -> Self {
        Optimizations {
            distance_filtering: true,
            pipelining: true,
            multi_plane_ibc: false,
        }
    }
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations::all()
    }
}

/// Complete configuration of a REIS system instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReisConfig {
    /// The underlying SSD configuration (geometry, timing, DRAM, cores).
    pub ssd: SsdConfig,
    /// Which of the REIS optimizations are enabled.
    pub optimizations: Optimizations,
    /// Reranking candidate multiplier: the engine reranks the top
    /// `rerank_factor × k` binary candidates in INT8 (the paper uses 10).
    pub rerank_factor: usize,
    /// Distance-filter threshold, expressed as a fraction of the embedding
    /// dimensionality; an embedding passes when its Hamming distance is at or
    /// below `threshold_fraction × dim`.
    pub filter_threshold_fraction: f64,
    /// PCIe bandwidth between the SSD and the host, bytes per second (used
    /// for returning document chunks).
    pub host_link_bandwidth_bps: f64,
    /// Bytes of one Temporal-Top-List entry on the flash channel, excluding
    /// the embedding itself (DIST + EADR + RADR + DADR + TAG).
    pub ttl_metadata_bytes: usize,
}

impl ReisConfig {
    /// REIS on the cost-oriented SSD1 with all optimizations.
    pub fn ssd1() -> Self {
        ReisConfig {
            ssd: SsdConfig::ssd1(),
            optimizations: Optimizations::all(),
            rerank_factor: 10,
            filter_threshold_fraction: 0.47,
            host_link_bandwidth_bps: 7.0e9,
            ttl_metadata_bytes: 13,
        }
    }

    /// REIS on the performance-oriented SSD2 with all optimizations.
    pub fn ssd2() -> Self {
        ReisConfig {
            ssd: SsdConfig::ssd2(),
            ..ReisConfig::ssd1()
        }
    }

    /// A miniature configuration for unit tests.
    pub fn tiny() -> Self {
        ReisConfig {
            ssd: SsdConfig::tiny(),
            ..ReisConfig::ssd1()
        }
    }

    /// Builder-style override of the optimization set.
    pub fn with_optimizations(mut self, optimizations: Optimizations) -> Self {
        self.optimizations = optimizations;
        self
    }

    /// Builder-style override of the distance-filter threshold fraction.
    pub fn with_filter_threshold(mut self, fraction: f64) -> Self {
        self.filter_threshold_fraction = fraction;
        self
    }

    /// The absolute Hamming-distance filter threshold for embeddings of
    /// `dim` dimensions (`u32::MAX`, i.e. no filtering, when DF is off).
    pub fn filter_threshold(&self, dim: usize) -> u32 {
        if !self.optimizations.distance_filtering {
            return u32::MAX;
        }
        (self.filter_threshold_fraction * dim as f64).round() as u32
    }
}

impl Default for ReisConfig {
    fn default() -> Self {
        ReisConfig::ssd1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimization_presets_cover_the_sensitivity_ladder() {
        assert!(!Optimizations::none().distance_filtering);
        assert!(Optimizations::df_only().distance_filtering);
        assert!(!Optimizations::df_only().pipelining);
        assert!(Optimizations::df_pl().pipelining);
        assert!(!Optimizations::df_pl().multi_plane_ibc);
        assert!(Optimizations::all().multi_plane_ibc);
    }

    #[test]
    fn filter_threshold_scales_with_dimensionality_and_respects_df() {
        let config = ReisConfig::ssd1();
        assert_eq!(config.filter_threshold(1024), 481);
        let no_df = config.with_optimizations(Optimizations::none());
        assert_eq!(no_df.filter_threshold(1024), u32::MAX);
        let tighter = config.with_filter_threshold(0.25);
        assert_eq!(tighter.filter_threshold(1024), 256);
    }

    #[test]
    fn presets_differ_only_in_the_ssd() {
        let a = ReisConfig::ssd1();
        let b = ReisConfig::ssd2();
        assert_eq!(a.rerank_factor, b.rerank_factor);
        assert_ne!(a.ssd.geometry.channels, b.ssd.geometry.channels);
        assert_eq!(a.ssd.name, "REIS-SSD1");
        assert_eq!(b.ssd.name, "REIS-SSD2");
    }
}
