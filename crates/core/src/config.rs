//! REIS system configuration.

use serde::{Deserialize, Serialize};

use reis_ssd::SsdConfig;
use reis_update::CompactionPolicy;

/// The three optimizations evaluated in the sensitivity study of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Optimizations {
    /// Distance Filtering (DF): discard embeddings whose Hamming distance
    /// from the query exceeds a threshold inside the flash die, before they
    /// are transferred to the controller (Sec. 4.3.3).
    pub distance_filtering: bool,
    /// Pipelining (PL): overlap page reads, in-plane computation, channel
    /// transfers and the controller's selection kernel (Sec. 4.3.4).
    pub pipelining: bool,
    /// Multi-Plane Input Broadcasting (MPIBC): broadcast the query to all
    /// planes of a die simultaneously (Sec. 4.3.4).
    pub multi_plane_ibc: bool,
}

impl Optimizations {
    /// All optimizations enabled (the full REIS design).
    pub fn all() -> Self {
        Optimizations {
            distance_filtering: true,
            pipelining: true,
            multi_plane_ibc: true,
        }
    }

    /// All optimizations disabled (the `No-OPT` baseline of Fig. 9).
    pub fn none() -> Self {
        Optimizations {
            distance_filtering: false,
            pipelining: false,
            multi_plane_ibc: false,
        }
    }

    /// `No-OPT` plus Distance Filtering only.
    pub fn df_only() -> Self {
        Optimizations {
            distance_filtering: true,
            ..Optimizations::none()
        }
    }

    /// Distance Filtering plus Pipelining.
    pub fn df_pl() -> Self {
        Optimizations {
            distance_filtering: true,
            pipelining: true,
            multi_plane_ibc: false,
        }
    }
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations::all()
    }
}

/// How far one query's fine scan is parallelized *inside* the device.
///
/// REIS partitions a single scan over the SSD's channel×die units so that
/// the flash-internal parallelism shortens the *latency* of one query, not
/// just the throughput of many (Sec. 4.3.4). The simulator mirrors that
/// with worker threads, one per scan shard, each owning its own latch
/// scratch and Temporal Top List; see `reis_nand::sharding` for the
/// geometry-aware plan and [`crate::engine`] for the execution and merge.
///
/// The default is sequential (one shard), which keeps single-threaded
/// behaviour — and determinism expectations of downstream tooling —
/// unchanged; benchmarks and latency-sensitive deployments opt in via
/// [`ReisConfig::with_scan_parallelism`]. Sharding composes with batched
/// search: each batch worker drives its own intra-query shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanParallelism {
    /// Maximum number of scan shards per query (1 = sequential scan). The
    /// effective count is additionally capped by the device's channel×die
    /// unit count and by the size of the scan.
    pub max_shards: usize,
    /// Minimum pages a shard must receive for sharding to be worthwhile;
    /// scans smaller than `2 × min_pages_per_shard` run sequentially so
    /// thread spawn overhead never dominates tiny scans.
    pub min_pages_per_shard: usize,
}

impl ScanParallelism {
    /// Sequential scanning (the constructor default): one shard, no worker
    /// threads.
    ///
    /// For *single-query* searches this exact value doubles as the "no
    /// preference" sentinel: `ReisSystem::search` upgrades it to
    /// `sharded(available_parallelism)` (results are bit-identical; only
    /// wall-clock changes — adaptive scans included, since their windowed
    /// threshold schedule is partition-invariant). Use
    /// [`ScanParallelism::pinned_sequential`] to force single-threaded
    /// scans even there.
    pub fn sequential() -> Self {
        ScanParallelism {
            max_shards: 1,
            min_pages_per_shard: 16,
        }
    }

    /// A setting that always scans sequentially, bypassing the
    /// auto-sharding that `ReisSystem::search` applies when it sees the
    /// plain [`ScanParallelism::sequential`] constructor default (the two
    /// differ only in the unreachable per-shard page minimum).
    pub fn pinned_sequential() -> Self {
        ScanParallelism {
            max_shards: 1,
            min_pages_per_shard: usize::MAX,
        }
    }

    /// Shard every large-enough scan across up to `max_shards` workers.
    ///
    /// `sharded(1)` is an *explicit* one-shard request and returns
    /// [`ScanParallelism::pinned_sequential`], so it is never mistaken for
    /// the [`ScanParallelism::sequential`] "no preference" default that
    /// single-query searches auto-upgrade.
    pub fn sharded(max_shards: usize) -> Self {
        if max_shards <= 1 {
            return ScanParallelism::pinned_sequential();
        }
        ScanParallelism {
            max_shards,
            ..ScanParallelism::sequential()
        }
    }

    /// Builder-style override of the minimum shard size.
    pub fn with_min_pages_per_shard(mut self, pages: usize) -> Self {
        self.min_pages_per_shard = pages.max(1);
        self
    }

    /// Whether this value is the "no preference" constructor default that
    /// single-query searches and fused batch scans upgrade to the host's
    /// available parallelism. The check is structural, so a hand-built
    /// value identical to [`ScanParallelism::sequential`] counts as the
    /// default too — use [`ScanParallelism::pinned_sequential`] (and leave
    /// its page minimum alone) to express an unforgeable "stay
    /// sequential".
    pub fn is_auto_default(&self) -> bool {
        *self == ScanParallelism::sequential()
    }

    /// The shard count to actually use for a scan of `pages` pages on a
    /// device with `scan_units` channel×die units (always at least 1).
    pub fn effective_shards(&self, scan_units: usize, pages: usize) -> usize {
        self.max_shards
            .min(scan_units)
            .min(pages / self.min_pages_per_shard.max(1))
            .max(1)
    }
}

impl Default for ScanParallelism {
    fn default() -> Self {
        ScanParallelism::sequential()
    }
}

/// Which scans tighten their distance-filter threshold adaptively as the
/// Temporal Top List fills (see [`ReisConfig::with_adaptive_filtering`]).
///
/// The adaptive schedule is *windowed*: the scan's deterministic page list
/// (merged base ranges followed by the probed clusters' segment runs, in
/// probe order) is split into fixed page-count windows
/// ([`ReisConfig::adaptive_window_pages`]), and the threshold only tightens
/// at window barriers, computed from the Temporal-Top-List state
/// accumulated over all *completed* windows. The threshold any page is
/// scanned under is therefore a pure function of the page's position in
/// that list — never of which worker scanned it when — so adaptive scans
/// are **partition-invariant**: results, documents and transferred-entry
/// counts are bit-identical across every [`ScanParallelism`] setting and
/// inside the fused batch executor, on every machine. (Earlier revisions pinned
/// adapting scans sequential because the schedule tightened per page; the
/// windowed schedule removed that restriction.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdaptiveFiltering {
    /// Never adapt; the static paper threshold holds for the whole scan.
    Off,
    /// Adapt only brute-force fine scans (the default): those scans walk the
    /// whole embedding region, so tightening pays the most, and their page
    /// order is the plain storage order on every machine.
    BruteForce,
    /// Adapt every fine scan, IVF included.
    All,
}

/// How a batched search executes on the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchFusion {
    /// Page-major fused execution on the *shared* device (the default):
    /// the batch's probed pages are sensed once each and scored against
    /// every in-flight query by the fused multi-query kernel. Per-query
    /// results, activity and modelled latency are bit-identical to running
    /// the queries sequentially; only the physical sense count (and the
    /// wall clock) shrinks.
    Fused,
    /// Per-worker device replicas (the pre-fusion path): every worker clones
    /// the controller copy-on-write and executes its chunk of queries
    /// independently, so every query re-senses every page it scans.
    Replicas,
}

/// How shard/replica workers are executed on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanExecutor {
    /// The persistent work-stealing worker pool (`reis-sched`), created
    /// once at system construction (the default). No query or mutation
    /// path creates threads afterwards; scan windows, fused page chunks
    /// and replica batches are queued onto the long-lived workers, which
    /// keep per-worker scratch warm between requests.
    Pooled,
    /// A scoped `std::thread` spawn per window/chunk/batch — the pre-pool
    /// executor. Kept selectable so the identity property suite can prove
    /// pooled execution bit-identical to it, and so `fig_scheduler` can
    /// measure the per-window spawn overhead the pool removes.
    SpawnScoped,
}

/// Complete configuration of a REIS system instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReisConfig {
    /// The underlying SSD configuration (geometry, timing, DRAM, cores).
    pub ssd: SsdConfig,
    /// Which of the REIS optimizations are enabled.
    pub optimizations: Optimizations,
    /// Reranking candidate multiplier: the engine reranks the top
    /// `rerank_factor × k` binary candidates in INT8 (the paper uses 10).
    pub rerank_factor: usize,
    /// Distance-filter threshold, expressed as a fraction of the embedding
    /// dimensionality; an embedding passes when its Hamming distance is at or
    /// below `threshold_fraction × dim`.
    pub filter_threshold_fraction: f64,
    /// PCIe bandwidth between the SSD and the host, bytes per second (used
    /// for returning document chunks).
    pub host_link_bandwidth_bps: f64,
    /// Bytes of one Temporal-Top-List entry on the flash channel, excluding
    /// the embedding itself (DIST + EADR + RADR + DADR + TAG).
    pub ttl_metadata_bytes: usize,
    /// Intra-query scan sharding across the device's channel/die units.
    pub scan_parallelism: ScanParallelism,
    /// Which scans tighten the distance-filter threshold adaptively (see
    /// [`ReisConfig::with_adaptive_filtering`]). Defaults to
    /// [`AdaptiveFiltering::BruteForce`]: brute-force fine scans adapt, IVF
    /// scans keep the static paper threshold.
    pub adaptive_filtering: AdaptiveFiltering,
    /// Page-count window of the adaptive threshold schedule: an adapting
    /// scan's threshold tightens only at barriers every
    /// `adaptive_window_pages` pages of its deterministic page list (see
    /// [`AdaptiveFiltering`]). Values are clamped to at least 1; a window
    /// of 1 reproduces the historical tighten-after-every-page schedule,
    /// and a window larger than the scan is the static threshold.
    ///
    /// The window is also the **unit of intra-scan parallelism**: between
    /// two barriers the threshold is constant, so each window's pages feed
    /// the same [`ScanParallelism::effective_shards`] rule a static scan
    /// uses. Smaller windows tighten sooner — fewer transferred entries,
    /// more barrier quickselects, and *less shardable work per window*:
    /// under the default 16-page [`ScanParallelism::min_pages_per_shard`]
    /// only windows of ≥ 32 pages actually split across channel/die
    /// workers, so the 4-page default (tuned for transfer cuts) runs its
    /// windows sequentially. Deployments that want adaptive scans to
    /// parallelize choose a larger window (the `fig_adaptive_window` bench
    /// sweeps the trade) or a lower per-shard minimum; the *results and
    /// entry counts* are identical either way — that is the windowed
    /// schedule's partition invariance.
    pub adaptive_window_pages: usize,
    /// How batched searches execute (see [`BatchFusion`]); defaults to the
    /// page-major fused path on the shared device.
    pub batch_fusion: BatchFusion,
    /// How shard/replica workers run on the host (see [`ScanExecutor`]);
    /// defaults to the persistent worker pool. Scheduling never changes
    /// results or logical accounting — only wall-clock cost.
    pub scan_executor: ScanExecutor,
    /// When the update path compacts automatically (append segments folded
    /// back into dense regions). [`CompactionPolicy::manual`] disables
    /// auto-compaction entirely.
    pub compaction: CompactionPolicy,
}

impl ReisConfig {
    /// REIS on the cost-oriented SSD1 with all optimizations.
    pub fn ssd1() -> Self {
        ReisConfig {
            ssd: SsdConfig::ssd1(),
            optimizations: Optimizations::all(),
            rerank_factor: 10,
            filter_threshold_fraction: 0.47,
            host_link_bandwidth_bps: 7.0e9,
            ttl_metadata_bytes: 13,
            scan_parallelism: ScanParallelism::sequential(),
            adaptive_filtering: AdaptiveFiltering::BruteForce,
            adaptive_window_pages: 4,
            batch_fusion: BatchFusion::Fused,
            scan_executor: ScanExecutor::Pooled,
            compaction: CompactionPolicy::auto(),
        }
    }

    /// REIS on the performance-oriented SSD2 with all optimizations.
    pub fn ssd2() -> Self {
        ReisConfig {
            ssd: SsdConfig::ssd2(),
            ..ReisConfig::ssd1()
        }
    }

    /// A miniature configuration for unit tests.
    pub fn tiny() -> Self {
        ReisConfig {
            ssd: SsdConfig::tiny(),
            ..ReisConfig::ssd1()
        }
    }

    /// Builder-style override of the optimization set.
    pub fn with_optimizations(mut self, optimizations: Optimizations) -> Self {
        self.optimizations = optimizations;
        self
    }

    /// Builder-style override of the distance-filter threshold fraction.
    pub fn with_filter_threshold(mut self, fraction: f64) -> Self {
        self.filter_threshold_fraction = fraction;
        self
    }

    /// Builder-style override of the intra-query scan sharding policy.
    pub fn with_scan_parallelism(mut self, scan_parallelism: ScanParallelism) -> Self {
        self.scan_parallelism = scan_parallelism;
        self
    }

    /// Builder-style toggle of adaptive distance filtering: `true` adapts
    /// every fine scan ([`AdaptiveFiltering::All`]), `false` disables
    /// adaptation entirely ([`AdaptiveFiltering::Off`]). The constructor
    /// default sits between the two ([`AdaptiveFiltering::BruteForce`]).
    ///
    /// With adaptive filtering on, a scan tightens its pass/fail threshold
    /// once its Temporal Top List holds a full candidate set: an embedding
    /// whose distance exceeds the current k-th best can never enter the
    /// final candidate list, so transferring it is pure waste. The top-k
    /// result is provably identical to the static threshold; only the
    /// number of transferred entries — and with it the modelled channel
    /// transfer and quickselect latency, which [`crate::perf::PerfModel`]
    /// prices from the actual entry count — shrinks. The threshold tightens
    /// at fixed page-window barriers, which makes the schedule — and the
    /// transferred-entry counts — identical under every parallelism setting
    /// (see [`AdaptiveFiltering`] and
    /// [`ReisConfig::adaptive_window_pages`]).
    pub fn with_adaptive_filtering(mut self, adaptive: bool) -> Self {
        self.adaptive_filtering = if adaptive {
            AdaptiveFiltering::All
        } else {
            AdaptiveFiltering::Off
        };
        self
    }

    /// Builder-style override of the adaptive-filtering scope.
    pub fn with_adaptive_scope(mut self, scope: AdaptiveFiltering) -> Self {
        self.adaptive_filtering = scope;
        self
    }

    /// Builder-style override of the adaptive threshold-window size in
    /// pages (clamped to at least 1; see
    /// [`ReisConfig::adaptive_window_pages`]).
    pub fn with_adaptive_window(mut self, pages: usize) -> Self {
        self.adaptive_window_pages = pages.max(1);
        self
    }

    /// Builder-style override of the batched-search execution mode.
    pub fn with_batch_fusion(mut self, fusion: BatchFusion) -> Self {
        self.batch_fusion = fusion;
        self
    }

    /// Builder-style override of the host-side executor (see
    /// [`ScanExecutor`]).
    pub fn with_scan_executor(mut self, executor: ScanExecutor) -> Self {
        self.scan_executor = executor;
        self
    }

    /// Builder-style override of the automatic compaction policy.
    pub fn with_compaction(mut self, compaction: CompactionPolicy) -> Self {
        self.compaction = compaction;
        self
    }

    /// Whether a fine scan adapts its distance-filter threshold, given
    /// whether the scan is brute-force (no cluster selection). Adapting
    /// requires distance filtering to be enabled in the first place.
    pub fn adapts(&self, brute_force: bool) -> bool {
        self.optimizations.distance_filtering
            && match self.adaptive_filtering {
                AdaptiveFiltering::Off => false,
                AdaptiveFiltering::BruteForce => brute_force,
                AdaptiveFiltering::All => true,
            }
    }

    /// The absolute Hamming-distance filter threshold for embeddings of
    /// `dim` dimensions (`u32::MAX`, i.e. no filtering, when DF is off).
    pub fn filter_threshold(&self, dim: usize) -> u32 {
        if !self.optimizations.distance_filtering {
            return u32::MAX;
        }
        (self.filter_threshold_fraction * dim as f64).round() as u32
    }
}

impl Default for ReisConfig {
    fn default() -> Self {
        ReisConfig::ssd1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimization_presets_cover_the_sensitivity_ladder() {
        assert!(!Optimizations::none().distance_filtering);
        assert!(Optimizations::df_only().distance_filtering);
        assert!(!Optimizations::df_only().pipelining);
        assert!(Optimizations::df_pl().pipelining);
        assert!(!Optimizations::df_pl().multi_plane_ibc);
        assert!(Optimizations::all().multi_plane_ibc);
    }

    #[test]
    fn filter_threshold_scales_with_dimensionality_and_respects_df() {
        let config = ReisConfig::ssd1();
        assert_eq!(config.filter_threshold(1024), 481);
        let no_df = config.with_optimizations(Optimizations::none());
        assert_eq!(no_df.filter_threshold(1024), u32::MAX);
        let tighter = config.with_filter_threshold(0.25);
        assert_eq!(tighter.filter_threshold(1024), 256);
    }

    #[test]
    fn effective_shards_respects_units_pages_and_floor() {
        let seq = ScanParallelism::sequential();
        assert_eq!(seq.effective_shards(128, 10_000), 1);
        let sharded = ScanParallelism::sharded(8);
        // Capped by the requested maximum.
        assert_eq!(sharded.effective_shards(128, 10_000), 8);
        // Capped by the device's scan units.
        assert_eq!(sharded.effective_shards(4, 10_000), 4);
        // Capped by the scan size: 40 pages / 16 per shard = 2 shards.
        assert_eq!(sharded.effective_shards(128, 40), 2);
        // Tiny scans stay sequential.
        assert_eq!(sharded.effective_shards(128, 8), 1);
        let fine = sharded.with_min_pages_per_shard(1);
        assert_eq!(fine.effective_shards(128, 8), 8);
        assert_eq!(fine.effective_shards(128, 0), 1);
    }

    #[test]
    fn adaptive_window_builder_clamps_and_defaults() {
        let config = ReisConfig::ssd1();
        assert_eq!(config.adaptive_window_pages, 4);
        assert_eq!(config.with_adaptive_window(32).adaptive_window_pages, 32);
        // A zero window would never reach a barrier; it clamps to 1 (the
        // historical per-page schedule).
        assert_eq!(config.with_adaptive_window(0).adaptive_window_pages, 1);
    }

    #[test]
    fn adaptive_scope_and_fusion_defaults() {
        let config = ReisConfig::ssd1();
        assert_eq!(config.adaptive_filtering, AdaptiveFiltering::BruteForce);
        assert_eq!(config.batch_fusion, BatchFusion::Fused);
        assert!(config.adapts(true));
        assert!(!config.adapts(false));
        assert!(config.with_adaptive_filtering(true).adapts(false));
        assert!(!config.with_adaptive_filtering(false).adapts(true));
        // Without distance filtering there is no threshold to tighten.
        assert!(!config
            .with_optimizations(Optimizations::none())
            .adapts(true));
        assert_eq!(
            config.with_batch_fusion(BatchFusion::Replicas).batch_fusion,
            BatchFusion::Replicas
        );
        assert_eq!(
            config
                .with_adaptive_scope(AdaptiveFiltering::Off)
                .adaptive_filtering,
            AdaptiveFiltering::Off
        );
    }

    #[test]
    fn presets_differ_only_in_the_ssd() {
        let a = ReisConfig::ssd1();
        let b = ReisConfig::ssd2();
        assert_eq!(a.rerank_factor, b.rerank_factor);
        assert_ne!(a.ssd.geometry.channels, b.ssd.geometry.channels);
        assert_eq!(a.ssd.name, "REIS-SSD1");
        assert_eq!(b.ssd.name, "REIS-SSD2");
    }
}
