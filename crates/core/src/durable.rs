//! Durability: snapshots, the mutation WAL and crash recovery.
//!
//! A durably opened system ([`ReisSystem::open`]) pairs the in-memory
//! simulator with a [`DurableStore`]. State is carried by two mechanisms:
//!
//! * **Snapshots** persist the full logical state: for every deployed
//!   database, the surviving corpus *in scan order* (read from flash
//!   through the same path compaction uses —
//!   `crate::mutate::collect_survivors`), the frozen quantizer
//!   parameters, the IVF centroids and the mutation counters that must
//!   outlive a crash (`next_id`, the compaction generation). Deployments
//!   checkpoint immediately, so every database lives in some snapshot.
//! * **The WAL** logs every mutation (insert batches, deletes, upserts,
//!   explicit compactions) applied since the newest snapshot.
//!
//! Recovery ([`ReisSystem::recover`]) finds the newest snapshot that
//! passes validation (falling back to older epochs past corrupt ones),
//! redeploys each database with its original stable ids, then replays the
//! WAL chain through the ordinary mutation paths, stopping at the first
//! torn or corrupt frame — a crash mid-write loses at most the torn
//! suffix, never the prefix, and never panics. The recovered system then
//! checkpoints a fresh epoch, so the quarantined tail is left behind for
//! forensics and normal operation resumes on intact files.
//!
//! What makes replay exact: a snapshot stores the corpus in scan order, so
//! the recovered deployment's storage order — and with it every
//! deterministic distance tie-break — matches what a fresh deployment of
//! the same survivors would produce, and `InsertBatch` records carry the
//! ids the original run assigned, which replay re-derives and
//! cross-checks. Policy-driven auto-compaction is deliberately *not*
//! logged: it is derived state, re-derived during replay, and compaction
//! never changes search results.

use std::collections::HashMap;
use std::time::Instant;

use reis_ann::quantize::{BinaryQuantizer, Int8Quantizer};
use reis_ann::vector::{BinaryVector, Int8Vector};
use reis_persist::{
    ByteReader, ByteWriter, DurableStore, PersistError, ScrubReport, SnapshotBuilder,
    SnapshotReader, WalRecord, WalTail,
};
use reis_ssd::{RegionKind, SsdController};
use reis_telemetry::{CounterId, HistogramId};

use crate::config::ReisConfig;
use crate::database::{ClusterInfo, VectorDatabase};
use crate::deploy::{self, DeployedDatabase};
use crate::error::{ReisError, Result};
use crate::mutate;
use crate::system::ReisSystem;

/// The system-wide metadata section (`next_db_id` + the deployed ids).
const SECTION_META: u32 = 1;
/// Per-database section kinds, combined with the database id as
/// `(db_id << 8) | kind`. Database ids start at 1, so the combined ids
/// never collide with [`SECTION_META`].
const KIND_DBMETA: u32 = 1;
const KIND_QUANT: u32 = 2;
const KIND_CENTROIDS: u32 = 3;
const KIND_ENTRIES: u32 = 4;

fn db_section(db_id: u32, kind: u32) -> u32 {
    (db_id << 8) | kind
}

/// The attached durable store plus the open WAL epoch (see
/// [`crate::system::ReisSystem`]'s `durability` field).
#[derive(Debug)]
pub(crate) struct Durability {
    store: DurableStore,
    /// Current epoch: `wal-{seq}` is the open WAL, `snapshot-{seq}` the
    /// newest complete snapshot.
    seq: u64,
}

impl Durability {
    pub(crate) fn append(&mut self, record: &WalRecord) -> std::result::Result<(), PersistError> {
        self.store.append_wal(self.seq, &record.encode_framed())
    }
}

/// Where a WAL chain was cut off during recovery: the file, the byte
/// offset of the first invalid frame and what was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalQuarantine {
    /// The WAL file holding the invalid frame.
    pub file: String,
    /// Byte offset of the first invalid frame within that file.
    pub offset: u64,
    /// Why the frame was rejected (torn, checksum mismatch, undecodable).
    pub detail: String,
}

/// What [`ReisSystem::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot recovery restarted from.
    pub snapshot_seq: u64,
    /// Newer snapshots that failed validation and were bypassed.
    pub snapshots_skipped: u32,
    /// WAL records successfully replayed on top of the snapshot.
    pub wal_records_applied: u64,
    /// WAL records skipped because they referenced a database absent from
    /// the snapshot (possible only if its deployment checkpoint was lost).
    pub records_skipped_unknown_db: u64,
    /// The torn/corrupt WAL tail the replay stopped at, if any.
    pub quarantined: Option<WalQuarantine>,
    /// Sequence number of the fresh checkpoint written after replay.
    pub checkpoint_seq: u64,
}

impl RecoveryReport {
    /// Number of quarantined WAL tails this recovery left behind (0 or 1:
    /// replay stops at the first invalid frame). Exposed as a count so
    /// per-leaf reports aggregate uniformly — see
    /// `ClusterRecovery::quarantine_counts` in `reis-cluster`.
    pub fn quarantine_count(&self) -> usize {
        usize::from(self.quarantined.is_some())
    }
}

impl ReisSystem {
    /// Open a durably backed system on `store`.
    ///
    /// A store with no snapshot yet is initialised: an empty epoch-0
    /// snapshot and WAL are written and the report is `None`. Otherwise
    /// this is [`ReisSystem::recover`] and the report says what happened.
    ///
    /// # Errors
    ///
    /// Storage I/O errors, and any [`ReisSystem::recover`] error on a
    /// non-fresh store.
    ///
    /// # Examples
    ///
    /// ```
    /// use reis_core::{DurableStore, MemVfs, ReisConfig, ReisSystem};
    ///
    /// # fn main() -> Result<(), reis_core::ReisError> {
    /// let vfs = MemVfs::new();
    /// let store = DurableStore::new(Box::new(vfs.clone()));
    /// let (mut reis, report) = ReisSystem::open(ReisConfig::tiny(), store)?;
    /// assert!(report.is_none(), "fresh store, nothing to recover");
    /// # let _ = &mut reis;
    /// # Ok(())
    /// # }
    /// ```
    pub fn open(config: ReisConfig, store: DurableStore) -> Result<(Self, Option<RecoveryReport>)> {
        if store.snapshot_seqs_desc()?.is_empty() {
            let mut system = ReisSystem::new(config);
            let mut store = store;
            store.set_telemetry(system.telemetry.clone());
            let bytes =
                build_snapshot(&mut system.controller, &system.databases, system.next_db_id)?;
            store.write_snapshot(0, &bytes)?;
            store.create_wal(0)?;
            system.durability = Some(Durability { store, seq: 0 });
            Ok((system, None))
        } else {
            let (system, report) = ReisSystem::recover(config, store)?;
            Ok((system, Some(report)))
        }
    }

    /// Checkpoint: write the next epoch's snapshot (the full current state,
    /// with every database's surviving corpus read back from flash in scan
    /// order), open its empty WAL, and garbage-collect all epochs older
    /// than the previous one — one complete fallback epoch is always kept.
    /// Returns the new epoch's sequence number.
    ///
    /// The snapshot is written *completely before* the new WAL is created,
    /// so a crash at any byte of the save leaves the previous epoch intact
    /// and recoverable.
    ///
    /// # Errors
    ///
    /// [`ReisError::Persist`] if no durable store is attached (the system
    /// was built with [`ReisSystem::new`] instead of [`ReisSystem::open`]),
    /// or on storage I/O failure.
    pub fn save(&mut self) -> Result<u64> {
        if self.durability.is_none() {
            return Err(ReisError::Persist(PersistError::Malformed(
                "save() requires a durably opened system (see ReisSystem::open)".into(),
            )));
        }
        let started = self.telemetry.is_enabled().then(Instant::now);
        let bytes = build_snapshot(&mut self.controller, &self.databases, self.next_db_id)?;
        let durability = self.durability.as_mut().expect("checked above");
        let seq = durability.seq + 1;
        durability.store.write_snapshot(seq, &bytes)?;
        durability.store.create_wal(seq)?;
        durability.seq = seq;
        durability.store.prune_before(seq.saturating_sub(1))?;
        if let Some(t0) = started {
            self.telemetry
                .observe(HistogramId::SnapshotWallNs, t0.elapsed().as_nanos() as u64);
        }
        Ok(seq)
    }

    /// The current durable epoch, or `None` for an in-memory system.
    pub fn durable_seq(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.seq)
    }

    /// A CRC32C fingerprint of the complete logical state: the checksum of
    /// the snapshot image [`ReisSystem::save`] would write right now. The
    /// snapshot writer is canonical (sorted sections, scan-order corpora),
    /// so two systems hold bit-identical state **iff** their fingerprints
    /// agree — the cluster layer uses this to assert that shard replicas
    /// stay in lockstep. Works on in-memory and durable systems alike.
    ///
    /// # Errors
    ///
    /// Propagates flash read-back errors from the snapshot builder.
    pub fn state_crc(&mut self) -> Result<u32> {
        let bytes = build_snapshot(&mut self.controller, &self.databases, self.next_db_id)?;
        Ok(reis_persist::crc32c(&bytes))
    }

    /// Scrub the attached durable store: verify every snapshot/WAL epoch's
    /// checksums without loading anything (see [`DurableStore::scrub`]).
    ///
    /// # Errors
    ///
    /// [`ReisError::Persist`] if the system is not durably opened, or on
    /// storage I/O failure. Corruption found is reported, not an error.
    pub fn scrub(&self) -> Result<ScrubReport> {
        match &self.durability {
            Some(durability) => Ok(durability.store.scrub()?),
            None => Err(ReisError::Persist(PersistError::Malformed(
                "scrub() requires a durably opened system (see ReisSystem::open)".into(),
            ))),
        }
    }

    /// Recover a system from `store`: newest valid snapshot, then WAL
    /// replay, then a fresh checkpoint.
    ///
    /// Recovery is *prefix-consistent*: the recovered state equals the
    /// durable prefix of the pre-crash history — every mutation whose WAL
    /// frame (or covering snapshot) reached storage intact, none after the
    /// first that did not. Corrupt snapshots fall back to older epochs;
    /// torn or corrupt WAL tails are quarantined and reported, never
    /// fatal and never a panic.
    ///
    /// # Errors
    ///
    /// * [`ReisError::Persist`] wrapping [`PersistError::NoSnapshot`] if
    ///   the store holds no snapshot at all.
    /// * [`ReisError::CorruptSnapshot`] if every snapshot present fails
    ///   validation.
    /// * Replay errors if an intact WAL record does not re-apply (id
    ///   divergence — a bug or foul play, not a crash artifact).
    pub fn recover(config: ReisConfig, store: DurableStore) -> Result<(Self, RecoveryReport)> {
        let started = Instant::now();
        let snapshot_seqs = store.snapshot_seqs_desc()?;
        if snapshot_seqs.is_empty() {
            return Err(PersistError::NoSnapshot.into());
        }

        // Newest snapshot that parses, validates and redeploys.
        let mut snapshots_skipped = 0u32;
        let mut chosen = None;
        let mut last_err: Option<ReisError> = None;
        for &seq in &snapshot_seqs {
            let file = DurableStore::snapshot_name(seq);
            let attempt = store
                .read_snapshot(seq)
                .map_err(ReisError::from)
                .and_then(|bytes| restore_from_snapshot(&config, &bytes, &file));
            match attempt {
                Ok(system) => {
                    chosen = Some((seq, system));
                    break;
                }
                Err(err) => {
                    snapshots_skipped += 1;
                    last_err = Some(err);
                }
            }
        }
        let Some((snapshot_seq, mut system)) = chosen else {
            return Err(last_err.unwrap_or_else(|| PersistError::NoSnapshot.into()));
        };

        // Replay the WAL chain `snapshot_seq, snapshot_seq + 1, …` in
        // order. Snapshot `s+1` is by construction snapshot `s` plus all
        // of `wal-s`, so later epochs' WALs continue seamlessly from
        // earlier ones. Stop at the first quarantined frame: everything
        // after it is past the durable prefix.
        let mut wal_records_applied = 0u64;
        let mut records_skipped_unknown_db = 0u64;
        let mut quarantined = None;
        let mut tip = snapshot_seq;
        let last_wal = store
            .wal_seqs_asc()?
            .last()
            .copied()
            .unwrap_or(snapshot_seq)
            .max(snapshot_seq);
        for epoch in snapshot_seq..=last_wal {
            tip = epoch;
            let bytes = store.read_wal(epoch)?;
            let (records, tail) = reis_persist::wal::read_records(&bytes);
            for record in records {
                if apply_record(&mut system, record)? {
                    wal_records_applied += 1;
                } else {
                    records_skipped_unknown_db += 1;
                }
            }
            if let WalTail::Quarantined { offset, detail } = tail {
                quarantined = Some(WalQuarantine {
                    file: DurableStore::wal_name(epoch),
                    offset,
                    detail,
                });
                break;
            }
        }

        // Checkpoint the recovered state as a fresh epoch; the quarantined
        // tail (if any) stays behind on storage, off the recovery path.
        let mut store = store;
        store.set_telemetry(system.telemetry.clone());
        system.durability = Some(Durability { store, seq: tip });
        let checkpoint_seq = system.save()?;

        if system.telemetry.is_enabled() {
            system.telemetry.count(CounterId::Recoveries, 1);
            system
                .telemetry
                .count(CounterId::WalRecordsReplayed, wal_records_applied);
            if quarantined.is_some() {
                system.telemetry.count(CounterId::WalQuarantines, 1);
            }
            system.telemetry.observe(
                HistogramId::RecoveryWallNs,
                started.elapsed().as_nanos() as u64,
            );
        }

        Ok((
            system,
            RecoveryReport {
                snapshot_seq,
                snapshots_skipped,
                wal_records_applied,
                records_skipped_unknown_db,
                quarantined,
                checkpoint_seq,
            },
        ))
    }
}

/// Re-apply one WAL record through the ordinary (non-logging) mutation
/// paths. Returns `false` if the record targets a database the snapshot
/// does not know (skipped, counted by the caller).
fn apply_record(system: &mut ReisSystem, record: WalRecord) -> Result<bool> {
    if !system.databases.contains_key(&record.db_id()) {
        return Ok(false);
    }
    match record {
        WalRecord::InsertBatch {
            db_id,
            vectors,
            documents,
            ids,
        } => {
            let outcome = system.insert_batch_inner(db_id, &vectors, documents)?;
            if outcome.ids != ids {
                return Err(PersistError::Malformed(format!(
                    "replay id divergence on database {db_id}: the WAL recorded ids {ids:?}, \
                     replay assigned {:?}",
                    outcome.ids
                ))
                .into());
            }
        }
        WalRecord::Delete { db_id, id } => {
            system.delete_inner(db_id, id)?;
        }
        WalRecord::Upsert {
            db_id,
            id,
            vector,
            document,
        } => {
            system.upsert_inner(db_id, id, &vector, &document)?;
        }
        WalRecord::Compact { db_id } => {
            system.compact_inner(db_id)?;
        }
        WalRecord::InsertBatchAt {
            db_id,
            vectors,
            documents,
            ids,
        } => {
            // The recorded ids are authoritative (the aggregator chose
            // them); replay re-applies the assignment verbatim, and the
            // routed-insert path re-validates freshness and uniqueness.
            system.insert_batch_at_inner(db_id, &ids, &vectors, documents)?;
        }
    }
    Ok(true)
}

/// Serialize the full system state as one snapshot container.
fn build_snapshot(
    controller: &mut SsdController,
    databases: &HashMap<u32, DeployedDatabase>,
    next_db_id: u32,
) -> Result<Vec<u8>> {
    let mut builder = SnapshotBuilder::new();
    // Databases in sorted-id order: snapshot bytes are a pure function of
    // the logical state, never of hash-map iteration order (the golden
    // fixture test depends on this).
    let mut ids: Vec<u32> = databases.keys().copied().collect();
    ids.sort_unstable();

    let mut meta = ByteWriter::new();
    meta.put_u32(next_db_id);
    meta.put_u32_slice(&ids);
    builder.add_section(SECTION_META, meta.into_bytes());

    for &db_id in &ids {
        if db_id >= 1 << 24 {
            return Err(ReisError::Persist(PersistError::Malformed(format!(
                "database id {db_id} exceeds the snapshot section namespace"
            ))));
        }
        let db = &databases[&db_id];
        let sweep = mutate::collect_survivors(controller, db)?;
        let (survivors, bounds) = (sweep.survivors, sweep.cluster_bounds);

        let mut w = ByteWriter::new();
        w.put_u32(db.binary_quantizer.dim() as u32);
        w.put_u32(db.updates.next_id);
        w.put_u64(db.updates.generation);
        w.put_u32(db.layout.doc_slot_bytes as u32);
        w.put_u8(u8::from(db.is_ivf()));
        w.put_u32(bounds.len() as u32);
        for &(begin, end) in &bounds {
            w.put_u32(begin as u32);
            w.put_u32(end as u32);
        }
        builder.add_section(db_section(db_id, KIND_DBMETA), w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_f32_slice(db.binary_quantizer.thresholds());
        w.put_f32_slice(db.int8_quantizer.offsets());
        w.put_f32_slice(db.int8_quantizer.scales());
        builder.add_section(db_section(db_id, KIND_QUANT), w.into_bytes());

        if db.is_ivf() {
            let centroids = read_centroids(controller, db)?;
            let mut w = ByteWriter::new();
            w.put_u32(centroids.len() as u32);
            for packed in &centroids {
                w.put_bytes(packed);
            }
            builder.add_section(db_section(db_id, KIND_CENTROIDS), w.into_bytes());
        }

        let mut w = ByteWriter::new();
        w.put_u32(survivors.len() as u32);
        for s in &survivors {
            w.put_u32(s.id);
            w.put_bytes(&s.binary);
            w.put_bytes(&s.int8);
            w.put_bytes(&s.doc);
        }
        builder.add_section(db_section(db_id, KIND_ENTRIES), w.into_bytes());
    }
    Ok(builder.finish())
}

/// Read every IVF centroid's packed bits back from the deployment's
/// centroid pages.
fn read_centroids(controller: &mut SsdController, db: &DeployedDatabase) -> Result<Vec<Vec<u8>>> {
    let layout = db.layout;
    let mut out = Vec::with_capacity(layout.centroids);
    let mut buf = Vec::new();
    let mut oob = Vec::new();
    let mut cached_page = usize::MAX;
    for cluster in 0..layout.centroids {
        let (page, slot) = layout.centroid_location(cluster);
        if page != cached_page {
            controller.read_region_page_into(
                &db.record.embedding_region,
                page,
                RegionKind::BinaryEmbeddings,
                &mut buf,
                &mut oob,
            )?;
            cached_page = page;
        }
        let start = slot * layout.embedding_slot_bytes;
        out.push(buf[start..start + layout.embedding_bytes].to_vec());
    }
    Ok(out)
}

/// One database's decoded snapshot sections.
struct DbSnapshot {
    db_id: u32,
    dim: usize,
    next_id: u32,
    generation: u64,
    doc_slot_bytes: usize,
    is_ivf: bool,
    bounds: Vec<(usize, usize)>,
    thresholds: Vec<f32>,
    offsets: Vec<f32>,
    scales: Vec<f32>,
    centroids: Vec<Vec<u8>>,
    ids: Vec<u32>,
    binary: Vec<Vec<u8>>,
    int8: Vec<Vec<u8>>,
    docs: Vec<Vec<u8>>,
}

fn corrupt(file: &str, detail: impl Into<String>) -> ReisError {
    PersistError::CorruptSnapshot {
        file: file.to_string(),
        detail: detail.into(),
    }
    .into()
}

/// Parse a snapshot and rebuild a full system from it (no WAL, no attached
/// durability — the caller layers those on).
fn restore_from_snapshot(config: &ReisConfig, bytes: &[u8], file: &str) -> Result<ReisSystem> {
    let reader = SnapshotReader::parse(bytes, file)?;
    let meta = reader
        .section(SECTION_META)
        .ok_or_else(|| corrupt(file, "missing system metadata section"))?;
    let mut r = ByteReader::new(meta);
    let next_db_id = r.get_u32()?;
    let ids = r.get_u32_vec()?;
    r.expect_end()?;

    let mut system = ReisSystem::new(*config);
    for &db_id in &ids {
        let snap = decode_db(&reader, db_id, file)?;
        install_db(&mut system, snap)?;
    }
    system.next_db_id = next_db_id.max(system.next_db_id);
    Ok(system)
}

/// Decode one database's sections into host-side vectors, validating every
/// cross-section invariant (the section CRCs guarantee the bytes are as
/// written; this guards against format drift and hand-crafted files).
fn decode_db(reader: &SnapshotReader<'_>, db_id: u32, file: &str) -> Result<DbSnapshot> {
    let section = |kind: u32, name: &str| {
        reader.section(db_section(db_id, kind)).ok_or_else(|| {
            corrupt(
                file,
                format!("database {db_id} is missing its {name} section"),
            )
        })
    };

    let mut r = ByteReader::new(section(KIND_DBMETA, "metadata")?);
    let dim = r.get_u32()? as usize;
    let next_id = r.get_u32()?;
    let generation = r.get_u64()?;
    let doc_slot_bytes = r.get_u32()? as usize;
    let is_ivf = r.get_u8()? != 0;
    let ncluster_bounds = r.get_u32()? as usize;
    if ncluster_bounds > r.remaining() / 8 {
        return Err(corrupt(
            file,
            format!("database {db_id} declares {ncluster_bounds} cluster bounds"),
        ));
    }
    let mut bounds = Vec::with_capacity(ncluster_bounds);
    for _ in 0..ncluster_bounds {
        let begin = r.get_u32()? as usize;
        let end = r.get_u32()? as usize;
        bounds.push((begin, end));
    }
    r.expect_end()?;

    let mut r = ByteReader::new(section(KIND_QUANT, "quantizer")?);
    let thresholds = r.get_f32_vec()?;
    let offsets = r.get_f32_vec()?;
    let scales = r.get_f32_vec()?;
    r.expect_end()?;
    if thresholds.len() != dim || offsets.len() != dim || scales.len() != dim {
        return Err(corrupt(
            file,
            format!("database {db_id} quantizer parameters do not cover dimension {dim}"),
        ));
    }

    let centroids = if is_ivf {
        let mut r = ByteReader::new(section(KIND_CENTROIDS, "centroid")?);
        let count = r.get_u32()? as usize;
        if count > r.remaining() {
            return Err(corrupt(
                file,
                format!("database {db_id} declares {count} centroids"),
            ));
        }
        let mut centroids = Vec::with_capacity(count);
        for _ in 0..count {
            centroids.push(r.get_bytes()?.to_vec());
        }
        r.expect_end()?;
        centroids
    } else {
        Vec::new()
    };

    let mut r = ByteReader::new(section(KIND_ENTRIES, "entry")?);
    let count = r.get_u32()? as usize;
    if count > r.remaining() {
        return Err(corrupt(
            file,
            format!("database {db_id} declares {count} entries"),
        ));
    }
    let mut ids = Vec::with_capacity(count);
    let mut binary = Vec::with_capacity(count);
    let mut int8 = Vec::with_capacity(count);
    let mut docs = Vec::with_capacity(count);
    for _ in 0..count {
        ids.push(r.get_u32()?);
        binary.push(r.get_bytes()?.to_vec());
        int8.push(r.get_bytes()?.to_vec());
        docs.push(r.get_bytes()?.to_vec());
    }
    r.expect_end()?;

    // Cross-section invariants, checked up front so rebuilding below can
    // never panic on a malformed (but checksum-valid) file.
    let packed = dim.div_ceil(8);
    if binary.iter().any(|b| b.len() != packed) || int8.iter().any(|v| v.len() != dim) {
        return Err(corrupt(
            file,
            format!("database {db_id} has embedding codes of the wrong width"),
        ));
    }
    if is_ivf && centroids.iter().any(|c| c.len() != packed) {
        return Err(corrupt(
            file,
            format!("database {db_id} has centroid codes of the wrong width"),
        ));
    }
    if is_ivf && centroids.len() != bounds.len() {
        return Err(corrupt(
            file,
            format!(
                "database {db_id} has {} centroids but {} cluster bounds",
                centroids.len(),
                bounds.len()
            ),
        ));
    }
    let mut cursor = 0usize;
    for &(begin, end) in &bounds {
        if begin != cursor || end < begin {
            return Err(corrupt(
                file,
                format!("database {db_id} cluster bounds are not a partition"),
            ));
        }
        cursor = end;
    }
    if cursor != count {
        return Err(corrupt(
            file,
            format!("database {db_id} cluster bounds cover {cursor} of {count} entries"),
        ));
    }
    if ids.iter().any(|&id| id >= next_id) {
        return Err(corrupt(
            file,
            format!("database {db_id} has an entry id at or above next_id {next_id}"),
        ));
    }

    Ok(DbSnapshot {
        db_id,
        dim,
        next_id,
        generation,
        doc_slot_bytes,
        is_ivf,
        bounds,
        thresholds,
        offsets,
        scales,
        centroids,
        ids,
        binary,
        int8,
        docs,
    })
}

/// Redeploy one decoded database into a recovering system, restoring its
/// stable ids and mutation counters.
fn install_db(system: &mut ReisSystem, snap: DbSnapshot) -> Result<()> {
    let binary_quantizer = BinaryQuantizer::from_thresholds(snap.thresholds);
    let int8_quantizer = Int8Quantizer::from_parts(snap.offsets, snap.scales);
    let dim = snap.dim;
    let packed = dim.div_ceil(8);

    // A database can be live with zero surviving entries (everything
    // deleted, then compacted or snapshotted). The deployment machinery
    // requires at least one entry, so recovery plants a zeroed dummy under
    // id 0 — provably dead, since no live ids exist — and tombstones it
    // right after, restoring the "deployed but empty" state.
    let empty = snap.ids.is_empty();
    let (ids, binary, int8, docs) = if empty {
        (
            vec![0u32],
            vec![vec![0u8; packed]],
            vec![vec![0u8; dim]],
            vec![Vec::new()],
        )
    } else {
        (snap.ids, snap.binary, snap.int8, snap.docs)
    };

    let clusters = if snap.is_ivf {
        let centroids: Vec<BinaryVector> = snap
            .centroids
            .iter()
            .map(|packed_bits| BinaryVector::from_packed(dim, packed_bits.clone()))
            .collect();
        let mut lists: Vec<Vec<usize>> = if empty {
            let mut lists = vec![Vec::new(); snap.bounds.len().max(1)];
            lists[0] = vec![0];
            lists
        } else {
            snap.bounds
                .iter()
                .map(|&(begin, end)| (begin..end).collect())
                .collect()
        };
        lists.resize(centroids.len().max(lists.len()), Vec::new());
        Some(ClusterInfo { centroids, lists })
    } else {
        None
    };

    let binary_vectors: Vec<BinaryVector> = binary
        .into_iter()
        .map(|bytes| BinaryVector::from_packed(dim, bytes))
        .collect();
    let int8_vectors: Vec<Int8Vector> = int8
        .into_iter()
        .map(|bytes| Int8Vector::new(bytes.into_iter().map(|b| b as i8).collect()))
        .collect();

    let database = VectorDatabase::from_quantized_parts(
        dim,
        binary_vectors,
        int8_vectors,
        docs,
        binary_quantizer,
        int8_quantizer,
        clusters,
    )?;
    let deployed = deploy::deploy_with_ids(
        &mut system.controller,
        &database,
        snap.db_id,
        &ids,
        snap.doc_slot_bytes,
    )?;
    system.databases.insert(snap.db_id, deployed);
    let db = system
        .databases
        .get_mut(&snap.db_id)
        .expect("just inserted");

    // Restore the mutation counters the snapshot carried: ids keep
    // advancing from where the pre-crash system left off, document chunks
    // of recovered entries resolve through the re-packed slot positions,
    // and future compactions keep minting fresh region generation names.
    db.updates.next_id = snap.next_id;
    db.updates.doc_slots = Some(
        ids.iter()
            .enumerate()
            .map(|(slot, &id)| (id, slot as u32))
            .collect(),
    );
    db.updates.generation = snap.generation;

    if empty {
        mutate::delete_entry(&mut system.controller, db, 0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use reis_persist::MemVfs;

    fn vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| (((i * 7 + d * 3) % 17) as f32 - 8.0) / 4.0)
                    .collect()
            })
            .collect()
    }

    fn documents(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("doc {i}").into_bytes()).collect()
    }

    fn store_over(vfs: &MemVfs) -> DurableStore {
        DurableStore::new(Box::new(vfs.clone()))
    }

    #[test]
    fn save_then_recover_round_trips_searches_and_counters() {
        let vfs = MemVfs::new();
        let (mut system, report) = ReisSystem::open(ReisConfig::tiny(), store_over(&vfs)).unwrap();
        assert!(report.is_none());

        let vecs = vectors(96, 32);
        let db = VectorDatabase::ivf(&vecs, documents(96), 4).unwrap();
        let db_id = system.deploy(&db).unwrap();
        // Mutate past the deploy checkpoint so recovery exercises replay.
        let fresh: Vec<f32> = (0..32).map(|d| (d % 5) as f32).collect();
        let inserted = system.insert(db_id, &fresh, b"fresh".to_vec()).unwrap();
        system.delete(db_id, 3).unwrap();
        system.upsert(db_id, 7, &fresh, b"updated 7").unwrap();

        let expected: Vec<_> = (0..4)
            .map(|q| system.search(db_id, &vecs[q * 11], 5).unwrap())
            .collect();
        let expected_seq = system.durable_seq().unwrap();
        drop(system);

        let (mut recovered, report) =
            ReisSystem::recover(ReisConfig::tiny(), store_over(&vfs)).unwrap();
        assert_eq!(report.snapshot_seq, expected_seq);
        assert_eq!(report.wal_records_applied, 3, "insert + delete + upsert");
        assert_eq!(report.records_skipped_unknown_db, 0);
        assert!(report.quarantined.is_none());
        assert_eq!(report.checkpoint_seq, expected_seq + 1);

        for (q, want) in expected.iter().enumerate() {
            let got = recovered.search(db_id, &vecs[q * 11], 5).unwrap();
            assert_eq!(got.results, want.results, "query {q}");
            assert_eq!(got.documents, want.documents, "query {q}");
        }
        // Counters survived: a new insert continues the id sequence.
        let next = recovered.insert(db_id, &fresh, b"post".to_vec()).unwrap();
        assert_eq!(next.ids[0], inserted.ids[0] + 1);
    }

    #[test]
    fn open_on_populated_store_recovers_and_new_requires_open_for_save() {
        let vfs = MemVfs::new();
        let (mut system, _) = ReisSystem::open(ReisConfig::tiny(), store_over(&vfs)).unwrap();
        let vecs = vectors(64, 32);
        let db = VectorDatabase::flat(&vecs, documents(64)).unwrap();
        let db_id = system.deploy(&db).unwrap();
        drop(system);

        let (mut reopened, report) =
            ReisSystem::open(ReisConfig::tiny(), store_over(&vfs)).unwrap();
        let report = report.expect("populated store recovers");
        assert!(report.quarantined.is_none());
        let hit = reopened.search(db_id, &vecs[9], 1).unwrap();
        assert_eq!(hit.results[0].id, 9);

        let mut in_memory = ReisSystem::new(ReisConfig::tiny());
        assert!(matches!(
            in_memory.save(),
            Err(ReisError::Persist(PersistError::Malformed(_)))
        ));
    }

    #[test]
    fn recovering_an_emptied_database_keeps_it_deployed_and_usable() {
        let vfs = MemVfs::new();
        let (mut system, _) = ReisSystem::open(ReisConfig::tiny(), store_over(&vfs)).unwrap();
        let vecs = vectors(24, 32);
        let db = VectorDatabase::flat(&vecs, documents(24)).unwrap();
        let db_id = system.deploy(&db).unwrap();
        for id in 0..24 {
            system.delete(db_id, id).unwrap();
        }
        system.save().unwrap();
        drop(system);

        let (mut recovered, report) =
            ReisSystem::recover(ReisConfig::tiny(), store_over(&vfs)).unwrap();
        assert!(report.quarantined.is_none());
        // The database is still deployed, empty, and accepts new entries
        // with ids continuing past the deleted ones.
        let fresh: Vec<f32> = (0..32).map(|d| (d % 3) as f32).collect();
        let outcome = recovered.insert(db_id, &fresh, b"revive".to_vec()).unwrap();
        assert_eq!(outcome.ids[0], 24);
        let hit = recovered.search(db_id, &fresh, 1).unwrap();
        assert_eq!(hit.results[0].id, 24);
        assert_eq!(hit.documents[0], b"revive");
    }
}
