//! The SSD-internal DRAM.
//!
//! Modern SSDs carry roughly 1 GB of DRAM per TB of flash (0.1 % of the
//! capacity). The controller keeps the L2P mapping table and frequently
//! accessed pages there; REIS additionally places the R-DB and R-IVF records
//! and the Temporal Top Lists in it (Sec. 4.1.4, 4.2.1). This module tracks
//! named allocations against the DRAM capacity and models access latency and
//! energy.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use reis_nand::Nanos;

use crate::error::{Result, SsdError};

/// Capacity, latency and energy parameters of the internal DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramParams {
    /// Usable capacity in bytes.
    pub capacity_bytes: usize,
    /// Latency of one random access (row activation + column access).
    pub access_latency: Nanos,
    /// Sustained bandwidth for streaming transfers, bytes per second.
    pub bandwidth_bps: f64,
    /// Energy per byte transferred, in picojoules (CACTI-style estimate for
    /// an LPDDR4-class device).
    pub energy_pj_per_byte: f64,
}

impl DramParams {
    /// Parameters for a 1 GB internal DRAM (REIS-SSD1-class device).
    pub fn one_gigabyte() -> Self {
        DramParams {
            capacity_bytes: 1 << 30,
            access_latency: Nanos::from_nanos(50),
            bandwidth_bps: 8.0e9,
            energy_pj_per_byte: 20.0,
        }
    }

    /// Parameters for a 2 GB internal DRAM (REIS-SSD2-class device).
    pub fn two_gigabytes() -> Self {
        DramParams {
            capacity_bytes: 2 << 30,
            ..DramParams::one_gigabyte()
        }
    }
}

impl Default for DramParams {
    fn default() -> Self {
        DramParams::one_gigabyte()
    }
}

/// The internal DRAM: capacity tracking plus an access cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InternalDram {
    params: DramParams,
    allocations: BTreeMap<String, usize>,
    bytes_read: u64,
    bytes_written: u64,
}

impl InternalDram {
    /// Create a DRAM with the given parameters and no allocations.
    pub fn new(params: DramParams) -> Self {
        InternalDram {
            params,
            allocations: BTreeMap::new(),
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &DramParams {
        &self.params
    }

    /// Total bytes currently allocated.
    pub fn used_bytes(&self) -> usize {
        self.allocations.values().sum()
    }

    /// Bytes still available for allocation.
    pub fn free_bytes(&self) -> usize {
        self.params.capacity_bytes.saturating_sub(self.used_bytes())
    }

    /// Size of a named allocation, if present.
    pub fn allocation(&self, name: &str) -> Option<usize> {
        self.allocations.get(name).copied()
    }

    /// Reserve `bytes` under `name`, replacing any previous allocation with
    /// the same name.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::DramExhausted`] if the allocation does not fit.
    pub fn allocate(&mut self, name: &str, bytes: usize) -> Result<()> {
        let existing = self.allocations.get(name).copied().unwrap_or(0);
        let free_without_existing = self.free_bytes() + existing;
        if bytes > free_without_existing {
            return Err(SsdError::DramExhausted {
                requested_bytes: bytes,
                available_bytes: free_without_existing,
            });
        }
        self.allocations.insert(name.to_string(), bytes);
        Ok(())
    }

    /// Release a named allocation. Releasing an unknown name is a no-op.
    pub fn release(&mut self, name: &str) {
        self.allocations.remove(name);
    }

    /// Latency of reading `bytes` from DRAM (one access latency plus the
    /// streaming transfer time) and account the traffic.
    pub fn read(&mut self, bytes: usize) -> Nanos {
        self.bytes_read += bytes as u64;
        self.params.access_latency + Nanos::from_secs_f64(bytes as f64 / self.params.bandwidth_bps)
    }

    /// Latency of writing `bytes` to DRAM and account the traffic.
    pub fn write(&mut self, bytes: usize) -> Nanos {
        self.bytes_written += bytes as u64;
        self.params.access_latency + Nanos::from_secs_f64(bytes as f64 / self.params.bandwidth_bps)
    }

    /// Merge externally measured traffic into this DRAM's counters (used to
    /// fold batch-search worker replicas' activity back into the primary).
    pub fn absorb_traffic(&mut self, bytes_read: u64, bytes_written: u64) {
        self.bytes_read += bytes_read;
        self.bytes_written += bytes_written;
    }

    /// Total bytes read since construction.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written since construction.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Energy consumed by all DRAM traffic so far, in joules.
    pub fn energy_joules(&self) -> f64 {
        (self.bytes_read + self.bytes_written) as f64 * self.params.energy_pj_per_byte * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_respect_capacity() {
        let mut dram = InternalDram::new(DramParams {
            capacity_bytes: 1000,
            ..DramParams::one_gigabyte()
        });
        dram.allocate("ftl", 600).unwrap();
        assert_eq!(dram.used_bytes(), 600);
        assert_eq!(dram.free_bytes(), 400);
        assert!(matches!(
            dram.allocate("ttl", 500),
            Err(SsdError::DramExhausted {
                requested_bytes: 500,
                available_bytes: 400
            })
        ));
        dram.allocate("ttl", 400).unwrap();
        assert_eq!(dram.free_bytes(), 0);
        dram.release("ftl");
        assert_eq!(dram.free_bytes(), 600);
        assert_eq!(dram.allocation("ttl"), Some(400));
        assert_eq!(dram.allocation("ftl"), None);
    }

    #[test]
    fn reallocating_a_name_replaces_it() {
        let mut dram = InternalDram::new(DramParams {
            capacity_bytes: 1000,
            ..DramParams::one_gigabyte()
        });
        dram.allocate("r-ivf", 800).unwrap();
        // Shrinking an existing allocation must succeed even though 900 fresh
        // bytes would not fit next to the old 800.
        dram.allocate("r-ivf", 900).unwrap();
        assert_eq!(dram.used_bytes(), 900);
    }

    #[test]
    fn access_latency_scales_with_size() {
        let mut dram = InternalDram::new(DramParams::one_gigabyte());
        let small = dram.read(64);
        let large = dram.read(1 << 20);
        assert!(large > small);
        assert_eq!(dram.bytes_read(), 64 + (1 << 20));
        let w = dram.write(4096);
        assert!(w >= dram.params().access_latency);
        assert!(dram.energy_joules() > 0.0);
    }

    #[test]
    fn reference_capacities_differ() {
        assert!(
            DramParams::two_gigabytes().capacity_bytes > DramParams::one_gigabyte().capacity_bytes
        );
    }
}
