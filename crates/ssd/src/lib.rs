//! # reis-ssd — SSD controller simulator
//!
//! The controller-side substrate of the REIS reproduction, built on the
//! [`reis_nand`] flash device model:
//!
//! * [`controller`] — the [`controller::SsdController`]: conventional
//!   read/write path plus the resources the in-storage engine borrows.
//! * [`ftl`] — page-level FTL and REIS's coarse-grained R-DB records.
//! * [`allocator`] — Parallelism-First, contiguity-preserving page
//!   allocation (plane-striped regions).
//! * [`dram`] — the SSD-internal DRAM (capacity, latency, energy).
//! * [`cores`] — the embedded Cortex-R8-class cores and the cost model of
//!   the quickselect / rerank / quicksort kernels REIS runs on them.
//! * [`hybrid`] — the SLC(ESP)/TLC partitioning policy.
//! * [`ecc`] — controller-side error correction.
//! * [`maintenance`] — garbage collection, wear statistics, RAG/normal mode
//!   switching.
//! * [`host`] — the NVM command-set extension of Table 1.
//!
//! # Example
//!
//! ```
//! use reis_ssd::config::SsdConfig;
//! use reis_ssd::controller::SsdController;
//!
//! # fn main() -> Result<(), reis_ssd::error::SsdError> {
//! let mut ssd = SsdController::new(SsdConfig::tiny());
//! ssd.host_write(42, &[7u8; 4096])?;
//! let read = ssd.host_read(42)?;
//! assert_eq!(read.data[0], 7);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocator;
pub mod config;
pub mod controller;
pub mod cores;
pub mod dram;
pub mod ecc;
pub mod error;
pub mod ftl;
pub mod host;
pub mod hybrid;
pub mod maintenance;

pub use allocator::{PageAllocator, StripedRegion};
pub use config::SsdConfig;
pub use controller::{ControllerActivity, HostReadOutcome, SsdController};
pub use cores::{CoreParams, EmbeddedCores};
pub use dram::{DramParams, InternalDram};
pub use ecc::{EccEngine, EccParams};
pub use error::{Result, SsdError};
pub use ftl::{CoarseFtl, DatabaseRecord, PageLevelFtl};
pub use host::HostCommand;
pub use hybrid::{HybridPolicy, RegionKind};
pub use maintenance::{MaintenanceManager, SsdMode, WearStats};
