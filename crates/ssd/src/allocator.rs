//! Physical page allocation.
//!
//! REIS needs two things from the allocator (Sec. 4.1): *Parallelism-First
//! Page Allocation*, which spreads consecutive data across all planes of the
//! device so one logical scan keeps every plane busy, and *contiguity*, so
//! the coarse-grained FTL can compute the next physical address by simply
//! incrementing the current one. Both are satisfied by allocating regions as
//! contiguous ranges of a *stripe index* whose successive values rotate
//! through the planes.

use serde::{Deserialize, Serialize};

use reis_nand::{Geometry, PageAddr};

use crate::error::{Result, SsdError};

/// A contiguous range of stripe indices reserved for one purpose (one region
/// of one database). The default value is the empty region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StripedRegion {
    /// First stripe index of the region.
    pub start: usize,
    /// Number of pages in the region.
    pub len: usize,
}

impl StripedRegion {
    /// An empty region.
    pub const EMPTY: StripedRegion = StripedRegion { start: 0, len: 0 };

    /// Whether the region holds no pages.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stripe index of the `offset`-th page of the region.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::RegionOutOfBounds`] if `offset >= self.len`.
    pub fn stripe_at(&self, offset: usize) -> Result<usize> {
        if offset >= self.len {
            return Err(SsdError::RegionOutOfBounds {
                region: "striped",
                offset,
                limit: self.len,
            });
        }
        Ok(self.start + offset)
    }

    /// The physical page address of the `offset`-th page of the region under
    /// parallelism-first striping.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::RegionOutOfBounds`] if `offset >= self.len`.
    pub fn page_at(&self, geometry: &Geometry, offset: usize) -> Result<PageAddr> {
        Ok(stripe_to_page(geometry, self.stripe_at(offset)?))
    }

    /// Iterate over the physical page addresses of the region in order.
    pub fn pages<'a>(&self, geometry: &'a Geometry) -> impl Iterator<Item = PageAddr> + 'a {
        let start = self.start;
        let len = self.len;
        (0..len).map(move |i| stripe_to_page(geometry, start + i))
    }
}

/// Convert a stripe index to a physical page address.
///
/// Consecutive stripe indices rotate through the channels first, then the
/// dies of a channel, then the planes of a die, so a sequential scan of
/// stripe indices keeps every channel, die and plane of the device busy in
/// round-robin order (Parallelism-First Page Allocation).
///
/// # Panics
///
/// Panics if the stripe index exceeds the device capacity.
pub fn stripe_to_page(geometry: &Geometry, stripe: usize) -> PageAddr {
    assert!(
        stripe < geometry.total_pages(),
        "stripe {stripe} beyond device capacity"
    );
    let channel = stripe % geometry.channels;
    let rest = stripe / geometry.channels;
    let die = rest % geometry.dies_per_channel;
    let rest = rest / geometry.dies_per_channel;
    let plane = rest % geometry.planes_per_die;
    let within_plane = rest / geometry.planes_per_die;
    PageAddr {
        channel,
        die,
        plane,
        block: within_plane / geometry.pages_per_block,
        page: within_plane % geometry.pages_per_block,
    }
}

/// Convert a physical page address back to its stripe index (inverse of
/// [`stripe_to_page`]).
pub fn page_to_stripe(geometry: &Geometry, addr: PageAddr) -> usize {
    let within_plane = addr.block * geometry.pages_per_block + addr.page;
    ((within_plane * geometry.planes_per_die + addr.plane) * geometry.dies_per_channel + addr.die)
        * geometry.channels
        + addr.channel
}

/// Bump allocator over the stripe index space, with a recycling free list.
///
/// Base database regions are deployed once and read many times, so a simple
/// high-watermark allocator (with whole-region reservation to guarantee
/// physical contiguity) models the defragmented layout REIS creates during
/// `DB_Deploy` (Sec. 4.1.4). The online update path additionally needs to
/// give pages back: released regions enter a coalesced free-range list, and
/// subsequent reservations may recycle a released range — but only once the
/// caller can prove its pages were erased, which is why
/// [`PageAllocator::reserve_recycled`] takes a per-stripe usability
/// predicate (the controller passes "not currently programmed").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageAllocator {
    total_pages: usize,
    next_free: usize,
    /// Released `(start, len)` stripe ranges, sorted by start and coalesced.
    recycled: Vec<(usize, usize)>,
}

impl PageAllocator {
    /// Create an allocator covering the whole device.
    pub fn new(geometry: &Geometry) -> Self {
        PageAllocator {
            total_pages: geometry.total_pages(),
            next_free: 0,
            recycled: Vec::new(),
        }
    }

    /// Pages not currently reserved (never-touched pages above the bump
    /// watermark plus released ranges awaiting recycling).
    pub fn free_pages(&self) -> usize {
        self.total_pages - self.next_free + self.recycled_pages()
    }

    /// Pages currently reserved.
    pub fn used_pages(&self) -> usize {
        self.next_free - self.recycled_pages()
    }

    /// Pages sitting in released ranges, available for recycling.
    pub fn recycled_pages(&self) -> usize {
        self.recycled.iter().map(|&(_, len)| len).sum()
    }

    /// Reserve a contiguous striped region of `pages` pages from the bump
    /// watermark (never from released ranges; see
    /// [`PageAllocator::reserve_recycled`]).
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::OutOfSpace`] if the watermark cannot fit the
    /// region, even if enough released pages exist.
    pub fn reserve(&mut self, pages: usize) -> Result<StripedRegion> {
        if self.next_free + pages > self.total_pages {
            return Err(SsdError::OutOfSpace {
                requested_pages: pages,
                available_pages: self.free_pages(),
            });
        }
        let region = StripedRegion {
            start: self.next_free,
            len: pages,
        };
        self.next_free += pages;
        Ok(region)
    }

    /// Try to reserve `pages` contiguous stripes from the released ranges.
    ///
    /// `usable` is consulted for every stripe of a candidate window; a
    /// window is only handed out if all of its stripes qualify (the
    /// controller passes "page not programmed", so recycled regions are
    /// immediately programmable). Returns `None` — without side effects —
    /// when no released window qualifies; callers then fall back to
    /// [`PageAllocator::reserve`].
    pub fn reserve_recycled(
        &mut self,
        pages: usize,
        usable: impl Fn(usize) -> bool,
    ) -> Option<StripedRegion> {
        if pages == 0 {
            return None;
        }
        for i in 0..self.recycled.len() {
            let (start, len) = self.recycled[i];
            if len < pages {
                continue;
            }
            // First window of the range whose stripes are all usable.
            let mut window = start;
            while window + pages <= start + len {
                if let Some(bad) = (window..window + pages).find(|&stripe| !usable(stripe)) {
                    // Skip past the offending stripe.
                    window = bad + 1;
                    continue;
                }
                // Found: carve [window, window+pages) out of the range.
                let region = StripedRegion {
                    start: window,
                    len: pages,
                };
                let head = window - start;
                let tail = (start + len) - (window + pages);
                match (head > 0, tail > 0) {
                    (false, false) => {
                        self.recycled.remove(i);
                    }
                    (true, false) => self.recycled[i] = (start, head),
                    (false, true) => self.recycled[i] = (window + pages, tail),
                    (true, true) => {
                        self.recycled[i] = (start, head);
                        self.recycled.insert(i + 1, (window + pages, tail));
                    }
                }
                return Some(region);
            }
        }
        None
    }

    /// Return a region's stripes to the free list (coalescing with adjacent
    /// released ranges). The pages may still be programmed; recycling them
    /// is gated by the predicate of [`PageAllocator::reserve_recycled`].
    pub fn release(&mut self, region: &StripedRegion) {
        if region.is_empty() {
            return;
        }
        let (start, len) = (region.start, region.len);
        let at = self.recycled.partition_point(|&(other, _)| other < start);
        self.recycled.insert(at, (start, len));
        // Coalesce around the insertion point.
        let mut i = at.saturating_sub(1);
        while i + 1 < self.recycled.len() {
            let (a_start, a_len) = self.recycled[i];
            let (b_start, b_len) = self.recycled[i + 1];
            if a_start + a_len >= b_start {
                let end = (a_start + a_len).max(b_start + b_len);
                self.recycled[i] = (a_start, end - a_start);
                self.recycled.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    /// Release every reservation (used when a database is torn down in
    /// tests; real deployments erase and redeploy).
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.recycled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stripe_mapping_round_trips_and_rotates_planes() {
        let geom = Geometry::tiny();
        let planes = geom.total_planes();
        let mut seen = HashSet::new();
        for stripe in 0..geom.total_pages() {
            let addr = stripe_to_page(&geom, stripe);
            geom.check_page(addr).unwrap();
            assert_eq!(page_to_stripe(&geom, addr), stripe);
            assert!(seen.insert(addr), "stripe mapping must be injective");
        }
        // Consecutive stripes hit distinct planes until every plane was used.
        let first_planes: Vec<usize> = (0..planes)
            .map(|s| geom.plane_index(stripe_to_page(&geom, s).plane_addr()))
            .collect();
        let unique: HashSet<_> = first_planes.iter().collect();
        assert_eq!(
            unique.len(),
            planes,
            "first {planes} stripes must cover all planes"
        );
    }

    #[test]
    fn regions_are_disjoint_and_in_bounds() {
        let geom = Geometry::tiny();
        let mut alloc = PageAllocator::new(&geom);
        let a = alloc.reserve(10).unwrap();
        let b = alloc.reserve(20).unwrap();
        assert_eq!(a.len, 10);
        assert_eq!(b.start, 10);
        assert_eq!(alloc.used_pages(), 30);
        let pages_a: HashSet<_> = a.pages(&geom).collect();
        let pages_b: HashSet<_> = b.pages(&geom).collect();
        assert!(pages_a.is_disjoint(&pages_b));
        assert_eq!(pages_a.len(), 10);
    }

    #[test]
    fn reserve_rejects_oversized_requests() {
        let geom = Geometry::tiny();
        let mut alloc = PageAllocator::new(&geom);
        let total = geom.total_pages();
        assert!(alloc.reserve(total + 1).is_err());
        alloc.reserve(total).unwrap();
        assert!(matches!(alloc.reserve(1), Err(SsdError::OutOfSpace { .. })));
        alloc.reset();
        assert_eq!(alloc.free_pages(), total);
    }

    #[test]
    fn region_page_at_checks_bounds() {
        let geom = Geometry::tiny();
        let region = StripedRegion { start: 5, len: 3 };
        assert_eq!(region.stripe_at(0).unwrap(), 5);
        assert!(region.page_at(&geom, 2).is_ok());
        assert!(matches!(
            region.page_at(&geom, 3),
            Err(SsdError::RegionOutOfBounds {
                offset: 3,
                limit: 3,
                ..
            })
        ));
        assert!(StripedRegion::EMPTY.is_empty());
    }

    #[test]
    fn released_ranges_coalesce_and_recycle_under_a_predicate() {
        let geom = Geometry::tiny();
        let mut alloc = PageAllocator::new(&geom);
        let a = alloc.reserve(8).unwrap();
        let b = alloc.reserve(8).unwrap();
        let c = alloc.reserve(8).unwrap();
        let used = alloc.used_pages();
        alloc.release(&a);
        alloc.release(&c);
        assert_eq!(alloc.recycled_pages(), 16);
        assert_eq!(alloc.used_pages(), used - 16);
        // Releasing b bridges a and c into one 24-stripe range.
        alloc.release(&b);
        assert_eq!(alloc.recycled_pages(), 24);

        // A predicate rejecting stripe 3 forces the window past it.
        let r = alloc.reserve_recycled(8, |stripe| stripe != 3).unwrap();
        assert_eq!(r.start, 4);
        assert_eq!(r.len, 8);
        assert_eq!(alloc.recycled_pages(), 16);
        // Nothing qualifies when the predicate rejects everything; the free
        // list is untouched.
        assert!(alloc.reserve_recycled(4, |_| false).is_none());
        assert_eq!(alloc.recycled_pages(), 16);
        // The remaining head [0,4) and tail [12,24) are still usable.
        let head = alloc.reserve_recycled(4, |_| true).unwrap();
        assert_eq!((head.start, head.len), (0, 4));
        let tail = alloc.reserve_recycled(12, |_| true).unwrap();
        assert_eq!((tail.start, tail.len), (12, 12));
        assert_eq!(alloc.recycled_pages(), 0);
    }

    #[test]
    fn recycled_pages_count_as_free() {
        let geom = Geometry::tiny();
        let mut alloc = PageAllocator::new(&geom);
        let total = geom.total_pages();
        let a = alloc.reserve(total).unwrap();
        assert_eq!(alloc.free_pages(), 0);
        alloc.release(&a);
        assert_eq!(alloc.free_pages(), total);
        // The bump watermark is exhausted, so plain reserve still fails …
        assert!(alloc.reserve(1).is_err());
        // … but recycling succeeds.
        assert!(alloc.reserve_recycled(total, |_| true).is_some());
    }

    #[test]
    fn consecutive_region_pages_spread_over_channels() {
        let geom = Geometry::reis_ssd1();
        let region = StripedRegion {
            start: 0,
            len: geom.channels * 4,
        };
        let channels: HashSet<usize> = region.pages(&geom).map(|p| p.channel).collect();
        assert_eq!(
            channels.len(),
            geom.channels,
            "a short scan must already touch every channel"
        );
    }
}
