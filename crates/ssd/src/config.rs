//! SSD configuration presets.

use serde::{Deserialize, Serialize};

use reis_nand::{Geometry, TimingParams};

use crate::cores::CoreParams;
use crate::dram::DramParams;
use crate::ecc::EccParams;
use crate::hybrid::HybridPolicy;

/// Complete configuration of a simulated SSD.
///
/// The two presets mirror Table 3 of the paper: [`SsdConfig::ssd1`] is the
/// cost-oriented PM9A3-class device, [`SsdConfig::ssd2`] the
/// performance-oriented Micron-9400-class device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Human-readable name of the configuration.
    pub name: &'static str,
    /// Flash array geometry.
    pub geometry: Geometry,
    /// Flash timing/bandwidth parameters.
    pub timing: TimingParams,
    /// Internal DRAM parameters.
    pub dram: DramParams,
    /// Embedded core parameters.
    pub cores: CoreParams,
    /// ECC engine parameters.
    pub ecc: EccParams,
    /// SLC/TLC partitioning policy.
    pub hybrid: HybridPolicy,
}

impl SsdConfig {
    /// The cost-oriented **REIS-SSD1** configuration (8 channels, 2 planes
    /// per die, 1.2 GB/s channels, 1 GB DRAM).
    pub fn ssd1() -> Self {
        SsdConfig {
            name: "REIS-SSD1",
            geometry: Geometry::reis_ssd1(),
            timing: TimingParams::reis_ssd1(),
            dram: DramParams::one_gigabyte(),
            cores: CoreParams::cortex_r8(),
            ecc: EccParams::ldpc(),
            hybrid: HybridPolicy::reis(),
        }
    }

    /// The performance-oriented **REIS-SSD2** configuration (16 channels,
    /// 4 planes per die, 2.0 GB/s channels, 2 GB DRAM).
    pub fn ssd2() -> Self {
        SsdConfig {
            name: "REIS-SSD2",
            geometry: Geometry::reis_ssd2(),
            timing: TimingParams::reis_ssd2(),
            dram: DramParams::two_gigabytes(),
            cores: CoreParams::cortex_r8(),
            ecc: EccParams::ldpc(),
            hybrid: HybridPolicy::reis(),
        }
    }

    /// A miniature configuration for unit tests (tiny geometry, tiny DRAM).
    pub fn tiny() -> Self {
        SsdConfig {
            name: "tiny",
            geometry: Geometry::tiny(),
            timing: TimingParams::reis_ssd1(),
            dram: DramParams {
                capacity_bytes: 4 << 20,
                ..DramParams::one_gigabyte()
            },
            cores: CoreParams::cortex_r8(),
            ecc: EccParams::ldpc(),
            hybrid: HybridPolicy::reis(),
        }
    }

    /// Aggregate internal flash bandwidth of the device in bytes per second
    /// (channel count × per-channel bandwidth).
    pub fn internal_bandwidth_bps(&self) -> f64 {
        self.geometry.channels as f64 * self.timing.channel_bandwidth_bps
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig::ssd1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table3_relationships() {
        let s1 = SsdConfig::ssd1();
        let s2 = SsdConfig::ssd2();
        assert_eq!(s1.geometry.channels, 8);
        assert_eq!(s2.geometry.channels, 16);
        // SSD2 has 2x the channels at ~1.7x the bandwidth each => > 3x total.
        assert!(s2.internal_bandwidth_bps() > 3.0 * s1.internal_bandwidth_bps() / 1.2);
        assert!(s2.dram.capacity_bytes > s1.dram.capacity_bytes);
        assert_eq!(s1.cores.num_cores, 4);
    }

    #[test]
    fn ssd2_internal_bandwidth_is_32_gbps() {
        // The paper quotes 32 GB/s of internal bandwidth for REIS-SSD2.
        let s2 = SsdConfig::ssd2();
        assert!((s2.internal_bandwidth_bps() - 32.0e9).abs() < 1e6);
    }
}
