//! Hybrid SLC/TLC partitioning policy.
//!
//! REIS soft-partitions the flash array (Sec. 4.1.2): binary embeddings (the
//! data the in-plane engine computes on) are programmed with Enhanced SLC
//! Programming so reads are error-free without ECC, while document chunks and
//! INT8 embeddings stay in dense TLC and take the conventional
//! ECC-in-the-controller read path. This module is the policy that maps a
//! region's role to its programming scheme and accounts for the capacity cost
//! of running part of the array in SLC mode.

use serde::{Deserialize, Serialize};

use reis_nand::{CellMode, ProgramScheme};

/// The role of a database region, which determines where and how it is
/// stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Binary-quantized embeddings scanned by the in-plane ANNS engine.
    BinaryEmbeddings,
    /// IVF cluster centroids (also scanned in-plane during coarse search).
    Centroids,
    /// INT8 embeddings fetched by the reranking kernel.
    Int8Embeddings,
    /// Document chunks returned to the host.
    Documents,
}

/// Mapping from region role to programming scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridPolicy {
    /// Scheme used for data consumed by in-plane computation.
    pub compute_scheme: ProgramScheme,
    /// Scheme used for bulk data read through the controller.
    pub bulk_scheme: ProgramScheme,
}

impl HybridPolicy {
    /// The REIS policy: ESP-SLC for compute data, ISPP-TLC for bulk data.
    pub fn reis() -> Self {
        HybridPolicy {
            compute_scheme: ProgramScheme::EnhancedSlc,
            bulk_scheme: ProgramScheme::Ispp(CellMode::Tlc),
        }
    }

    /// A policy that stores everything in TLC (what a conventional SSD —
    /// or the REIS-ASIC comparator of Sec. 6.3.1 — would do), forcing ECC on
    /// every read.
    pub fn all_tlc() -> Self {
        HybridPolicy {
            compute_scheme: ProgramScheme::Ispp(CellMode::Tlc),
            bulk_scheme: ProgramScheme::Ispp(CellMode::Tlc),
        }
    }

    /// The programming scheme for a region of the given kind.
    pub fn scheme_for(&self, kind: RegionKind) -> ProgramScheme {
        match kind {
            RegionKind::BinaryEmbeddings | RegionKind::Centroids => self.compute_scheme,
            RegionKind::Int8Embeddings | RegionKind::Documents => self.bulk_scheme,
        }
    }

    /// Whether reads of a region of the given kind require controller-side
    /// ECC before the data can be used.
    pub fn needs_ecc(&self, kind: RegionKind) -> bool {
        !self.scheme_for(kind).is_error_free()
    }

    /// Capacity cost factor of storing `bytes` under the given kind, i.e. how
    /// many bytes of *TLC-equivalent* raw capacity the data consumes. SLC
    /// storage costs 3× because each cell holds one bit instead of three.
    pub fn capacity_cost_factor(&self, kind: RegionKind) -> f64 {
        let scheme = self.scheme_for(kind);
        CellMode::Tlc.density_factor() / scheme.cell_mode().density_factor()
    }
}

impl Default for HybridPolicy {
    fn default() -> Self {
        HybridPolicy::reis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reis_policy_puts_compute_data_in_esp_slc() {
        let policy = HybridPolicy::reis();
        assert_eq!(
            policy.scheme_for(RegionKind::BinaryEmbeddings),
            ProgramScheme::EnhancedSlc
        );
        assert_eq!(
            policy.scheme_for(RegionKind::Centroids),
            ProgramScheme::EnhancedSlc
        );
        assert_eq!(
            policy.scheme_for(RegionKind::Documents),
            ProgramScheme::Ispp(CellMode::Tlc)
        );
        assert!(!policy.needs_ecc(RegionKind::BinaryEmbeddings));
        assert!(policy.needs_ecc(RegionKind::Documents));
        assert!(policy.needs_ecc(RegionKind::Int8Embeddings));
    }

    #[test]
    fn all_tlc_policy_needs_ecc_everywhere() {
        let policy = HybridPolicy::all_tlc();
        for kind in [
            RegionKind::BinaryEmbeddings,
            RegionKind::Centroids,
            RegionKind::Int8Embeddings,
            RegionKind::Documents,
        ] {
            assert!(policy.needs_ecc(kind));
            assert_eq!(policy.capacity_cost_factor(kind), 1.0);
        }
    }

    #[test]
    fn slc_storage_costs_three_times_the_capacity() {
        let policy = HybridPolicy::reis();
        assert_eq!(
            policy.capacity_cost_factor(RegionKind::BinaryEmbeddings),
            3.0
        );
        assert_eq!(policy.capacity_cost_factor(RegionKind::Documents), 1.0);
        // Binary embeddings are 32x smaller than f32, so even at 3x capacity
        // cost the SLC partition is a net win — check the combined factor.
        let effective_blowup = 3.0 / 32.0;
        assert!(effective_blowup < 0.1);
    }
}
