//! Host interface: the NVM command-set extension of Table 1.
//!
//! REIS adds four vendor-specific commands to the NVM command set (opcodes in
//! the `80h`–`FFh` range reserved for vendors): `DB_Deploy`, `IVF_Deploy`,
//! `Search` and `IVF_Search`. This module defines those commands and the
//! opcode assignment; the actual execution lives in `reis-core`, which owns
//! the retrieval engine, while conventional reads and writes are handled by
//! the controller in this crate.

use serde::{Deserialize, Serialize};

use crate::error::{Result, SsdError};

/// First opcode of the vendor-specific range.
pub const VENDOR_OPCODE_BASE: u8 = 0x80;

/// Opcode of `DB_Deploy`.
pub const OPCODE_DB_DEPLOY: u8 = 0x80;
/// Opcode of `IVF_Deploy`.
pub const OPCODE_IVF_DEPLOY: u8 = 0x81;
/// Opcode of `Search`.
pub const OPCODE_SEARCH: u8 = 0x82;
/// Opcode of `IVF_Search`.
pub const OPCODE_IVF_SEARCH: u8 = 0x83;

/// A host-issued command, either a conventional block I/O or one of the REIS
/// extensions of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HostCommand {
    /// Conventional logical-page read.
    Read {
        /// Logical page address.
        lpa: u64,
    },
    /// Conventional logical-page write.
    Write {
        /// Logical page address.
        lpa: u64,
        /// Page payload.
        data: Vec<u8>,
    },
    /// `DB_Deploy(DB, Did, N)`: deploy a flat (non-IVF) vector database of
    /// `entries` entries under id `db_id`.
    DbDeploy {
        /// Database id.
        db_id: u32,
        /// Number of entries.
        entries: usize,
    },
    /// `IVF_Deploy(DB, Did, N, CI)`: deploy an IVF-organised database;
    /// `clusters` is the cluster-information record count (`CI`).
    IvfDeploy {
        /// Database id.
        db_id: u32,
        /// Number of entries.
        entries: usize,
        /// Number of IVF clusters.
        clusters: usize,
    },
    /// `Search(Q, Qid, Did, k)`: brute-force top-k search of a query batch.
    Search {
        /// Query batch id.
        query_id: u32,
        /// Database id.
        db_id: u32,
        /// Number of results per query.
        k: usize,
    },
    /// `IVF_Search(Q, Qid, Did, k, R)`: IVF top-k search with target recall
    /// `R` (which the device maps to an `nprobe` setting).
    IvfSearch {
        /// Query batch id.
        query_id: u32,
        /// Database id.
        db_id: u32,
        /// Number of results per query.
        k: usize,
        /// Target Recall@k in `[0, 1]`.
        target_recall: f64,
    },
}

impl HostCommand {
    /// The NVMe opcode this command is carried under.
    pub fn opcode(&self) -> u8 {
        match self {
            HostCommand::Read { .. } => 0x02,
            HostCommand::Write { .. } => 0x01,
            HostCommand::DbDeploy { .. } => OPCODE_DB_DEPLOY,
            HostCommand::IvfDeploy { .. } => OPCODE_IVF_DEPLOY,
            HostCommand::Search { .. } => OPCODE_SEARCH,
            HostCommand::IvfSearch { .. } => OPCODE_IVF_SEARCH,
        }
    }

    /// Whether this command is a REIS vendor extension (as opposed to a
    /// conventional NVM command).
    pub fn is_vendor_extension(&self) -> bool {
        self.opcode() >= VENDOR_OPCODE_BASE
    }

    /// Validate the command's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::InvalidHostCommand`] for zero-sized deployments,
    /// `k = 0` searches, or a target recall outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        match self {
            HostCommand::DbDeploy { entries, .. } if *entries == 0 => Err(
                SsdError::InvalidHostCommand("DB_Deploy requires at least one entry".into()),
            ),
            HostCommand::IvfDeploy {
                entries, clusters, ..
            } => {
                if *entries == 0 {
                    Err(SsdError::InvalidHostCommand(
                        "IVF_Deploy requires at least one entry".into(),
                    ))
                } else if *clusters == 0 || clusters > entries {
                    Err(SsdError::InvalidHostCommand(format!(
                        "IVF_Deploy cluster count {clusters} must be in 1..={entries}"
                    )))
                } else {
                    Ok(())
                }
            }
            HostCommand::Search { k, .. } if *k == 0 => Err(SsdError::InvalidHostCommand(
                "Search requires k >= 1".into(),
            )),
            HostCommand::IvfSearch {
                k, target_recall, ..
            } => {
                if *k == 0 {
                    Err(SsdError::InvalidHostCommand(
                        "IVF_Search requires k >= 1".into(),
                    ))
                } else if !(*target_recall > 0.0 && *target_recall <= 1.0) {
                    Err(SsdError::InvalidHostCommand(format!(
                        "IVF_Search target recall {target_recall} must be in (0, 1]"
                    )))
                } else {
                    Ok(())
                }
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_extensions_use_the_reserved_opcode_range() {
        let commands = [
            HostCommand::DbDeploy {
                db_id: 1,
                entries: 10,
            },
            HostCommand::IvfDeploy {
                db_id: 1,
                entries: 10,
                clusters: 2,
            },
            HostCommand::Search {
                query_id: 0,
                db_id: 1,
                k: 10,
            },
            HostCommand::IvfSearch {
                query_id: 0,
                db_id: 1,
                k: 10,
                target_recall: 0.94,
            },
        ];
        for c in &commands {
            assert!(c.is_vendor_extension());
            assert!((0x80..=0xFF).contains(&c.opcode()));
            c.validate().unwrap();
        }
        // All vendor opcodes are distinct.
        let mut opcodes: Vec<u8> = commands.iter().map(HostCommand::opcode).collect();
        opcodes.sort_unstable();
        opcodes.dedup();
        assert_eq!(opcodes.len(), commands.len());
    }

    #[test]
    fn conventional_commands_are_not_extensions() {
        assert!(!HostCommand::Read { lpa: 0 }.is_vendor_extension());
        assert!(!HostCommand::Write {
            lpa: 0,
            data: vec![]
        }
        .is_vendor_extension());
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        assert!(HostCommand::DbDeploy {
            db_id: 1,
            entries: 0
        }
        .validate()
        .is_err());
        assert!(HostCommand::IvfDeploy {
            db_id: 1,
            entries: 0,
            clusters: 0
        }
        .validate()
        .is_err());
        assert!(HostCommand::IvfDeploy {
            db_id: 1,
            entries: 5,
            clusters: 6
        }
        .validate()
        .is_err());
        assert!(HostCommand::Search {
            query_id: 0,
            db_id: 1,
            k: 0
        }
        .validate()
        .is_err());
        assert!(HostCommand::IvfSearch {
            query_id: 0,
            db_id: 1,
            k: 0,
            target_recall: 0.9
        }
        .validate()
        .is_err());
        assert!(HostCommand::IvfSearch {
            query_id: 0,
            db_id: 1,
            k: 5,
            target_recall: 0.0
        }
        .validate()
        .is_err());
        assert!(HostCommand::IvfSearch {
            query_id: 0,
            db_id: 1,
            k: 5,
            target_recall: 1.5
        }
        .validate()
        .is_err());
    }
}
