//! Error type for the SSD controller simulator.

use std::fmt;

use reis_nand::NandError;

/// Errors returned by the SSD controller layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// An error propagated from the underlying NAND flash device.
    Nand(NandError),
    /// The flash array has no free space left for the requested allocation.
    OutOfSpace {
        /// Pages requested.
        requested_pages: usize,
        /// Pages available.
        available_pages: usize,
    },
    /// The controller DRAM cannot hold the requested allocation.
    DramExhausted {
        /// Bytes requested.
        requested_bytes: usize,
        /// Bytes available.
        available_bytes: usize,
    },
    /// A logical page address has no mapping in the FTL.
    UnmappedLogicalPage(u64),
    /// A database id is not present in the R-DB record.
    UnknownDatabase(u32),
    /// A database with this id has already been deployed.
    DatabaseAlreadyDeployed(u32),
    /// An access fell outside the region reserved for a database.
    RegionOutOfBounds {
        /// The database region that was accessed.
        region: &'static str,
        /// The requested offset (in pages or entries).
        offset: usize,
        /// The number of valid entries in the region.
        limit: usize,
    },
    /// A host command used an opcode outside the vendor-specific range or is
    /// otherwise malformed.
    InvalidHostCommand(String),
    /// The SSD is in the wrong mode for the requested operation (e.g. a RAG
    /// search while the device is in normal block-I/O mode).
    WrongMode {
        /// Mode the SSD is currently in.
        current: &'static str,
        /// Mode the operation requires.
        required: &'static str,
    },
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::Nand(e) => write!(f, "nand error: {e}"),
            SsdError::OutOfSpace { requested_pages, available_pages } => write!(
                f,
                "allocation of {requested_pages} pages exceeds the {available_pages} free pages"
            ),
            SsdError::DramExhausted { requested_bytes, available_bytes } => write!(
                f,
                "DRAM allocation of {requested_bytes} bytes exceeds the {available_bytes} free bytes"
            ),
            SsdError::UnmappedLogicalPage(lpa) => {
                write!(f, "logical page {lpa} has no physical mapping")
            }
            SsdError::UnknownDatabase(id) => write!(f, "database {id} is not deployed"),
            SsdError::DatabaseAlreadyDeployed(id) => {
                write!(f, "database {id} is already deployed")
            }
            SsdError::RegionOutOfBounds { region, offset, limit } => {
                write!(f, "{region} region offset {offset} out of bounds (limit {limit})")
            }
            SsdError::InvalidHostCommand(msg) => write!(f, "invalid host command: {msg}"),
            SsdError::WrongMode { current, required } => {
                write!(f, "SSD is in {current} mode but the operation requires {required} mode")
            }
        }
    }
}

impl std::error::Error for SsdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SsdError::Nand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NandError> for SsdError {
    fn from(e: NandError) -> Self {
        SsdError::Nand(e)
    }
}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, SsdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand_errors_convert_and_expose_source() {
        let nand = NandError::PageNotProgrammed(reis_nand::PageAddr::new(0, 0, 0, 0, 0));
        let ssd: SsdError = nand.clone().into();
        assert!(matches!(ssd, SsdError::Nand(_)));
        assert!(std::error::Error::source(&ssd).is_some());
        assert!(ssd.to_string().contains("nand error"));
    }

    #[test]
    fn display_messages_are_meaningful() {
        let errs = vec![
            SsdError::OutOfSpace {
                requested_pages: 10,
                available_pages: 3,
            },
            SsdError::DramExhausted {
                requested_bytes: 100,
                available_bytes: 10,
            },
            SsdError::UnmappedLogicalPage(42),
            SsdError::UnknownDatabase(3),
            SsdError::DatabaseAlreadyDeployed(3),
            SsdError::RegionOutOfBounds {
                region: "embedding",
                offset: 10,
                limit: 5,
            },
            SsdError::InvalidHostCommand("opcode 0x01".into()),
            SsdError::WrongMode {
                current: "normal",
                required: "RAG",
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
