//! The SSD controller.
//!
//! [`SsdController`] owns the flash device and every controller-side
//! resource: the page-level and coarse-grained FTLs, the internal DRAM, the
//! embedded cores, the ECC engine and the maintenance manager. It implements
//! the conventional read/write path and exposes its resources to the REIS
//! engine (in `reis-core`), which drives the flash array directly for
//! in-storage search.

use serde::{Deserialize, Serialize};

use reis_nand::{FlashDevice, FlashStats, Nanos, PageAddr};

use crate::allocator::{PageAllocator, StripedRegion};
use crate::config::SsdConfig;
use crate::cores::EmbeddedCores;
use crate::dram::InternalDram;
use crate::ecc::EccEngine;
use crate::error::{Result, SsdError};
use crate::ftl::{CoarseFtl, PageLevelFtl};
use crate::hybrid::{HybridPolicy, RegionKind};
use crate::maintenance::{MaintenanceManager, SsdMode};

/// Outcome of a conventional host read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostReadOutcome {
    /// Page payload after error correction.
    pub data: Vec<u8>,
    /// Total latency: FTL lookup, flash read, channel transfer and ECC.
    pub latency: Nanos,
    /// Whether ECC fully corrected the raw read.
    pub corrected: bool,
}

/// Snapshot (or delta) of every activity counter the controller tracks:
/// flash operations, internal-DRAM traffic and ECC work.
///
/// Parallel search paths — batch-search workers running on controller
/// replicas, and intra-query scan shards accounting their flash work
/// locally — measure their activity as a delta between two snapshots and
/// fold it back into the primary controller with
/// [`SsdController::absorb_activity`], so the primary's counters stay
/// authoritative no matter how the work was parallelized.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerActivity {
    /// Flash device operation counters.
    pub flash: FlashStats,
    /// Bytes read from the internal DRAM.
    pub dram_bytes_read: u64,
    /// Bytes written to the internal DRAM.
    pub dram_bytes_written: u64,
    /// Pages decoded by the ECC engine.
    pub ecc_pages_decoded: u64,
    /// Bit errors corrected by the ECC engine.
    pub ecc_bits_corrected: u64,
}

impl ControllerActivity {
    /// An activity delta consisting of flash work only — the shape fused
    /// multi-query scans produce: they sense borrowed pages and run the
    /// in-plane kernels without touching DRAM or the ECC engine, then fold
    /// the tally back via [`SsdController::absorb_activity`]. Each page of a
    /// fused scan is counted as sensed *once* no matter how many queries it
    /// was scored against (see `FlashStats::fused_scan`).
    pub fn flash_only(flash: FlashStats) -> Self {
        ControllerActivity {
            flash,
            ..ControllerActivity::default()
        }
    }
}

/// The simulated SSD controller.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdController {
    config: SsdConfig,
    device: FlashDevice,
    page_ftl: PageLevelFtl,
    coarse_ftl: CoarseFtl,
    allocator: PageAllocator,
    dram: InternalDram,
    cores: EmbeddedCores,
    ecc: EccEngine,
    maintenance: MaintenanceManager,
}

impl SsdController {
    /// Create a controller (and its flash device) from a configuration.
    pub fn new(config: SsdConfig) -> Self {
        let device = FlashDevice::new(config.geometry, config.timing);
        let allocator = PageAllocator::new(&config.geometry);
        SsdController {
            config,
            device,
            page_ftl: PageLevelFtl::new(),
            coarse_ftl: CoarseFtl::new(),
            allocator,
            dram: InternalDram::new(config.dram),
            cores: EmbeddedCores::new(config.cores),
            ecc: EccEngine::new(config.ecc),
            maintenance: MaintenanceManager::new(),
        }
    }

    /// The configuration this controller was built from.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// The SLC/TLC partitioning policy.
    pub fn hybrid_policy(&self) -> HybridPolicy {
        self.config.hybrid
    }

    /// Immutable access to the flash device.
    pub fn device(&self) -> &FlashDevice {
        &self.device
    }

    /// Mutable access to the flash device (used by the in-storage engine).
    pub fn device_mut(&mut self) -> &mut FlashDevice {
        &mut self.device
    }

    /// The embedded-core cost model.
    pub fn cores(&self) -> &EmbeddedCores {
        &self.cores
    }

    /// Immutable access to the internal DRAM.
    pub fn dram(&self) -> &InternalDram {
        &self.dram
    }

    /// Mutable access to the internal DRAM.
    pub fn dram_mut(&mut self) -> &mut InternalDram {
        &mut self.dram
    }

    /// Immutable access to the coarse-grained FTL (R-DB).
    pub fn coarse_ftl(&self) -> &CoarseFtl {
        &self.coarse_ftl
    }

    /// Mutable access to the coarse-grained FTL (R-DB).
    pub fn coarse_ftl_mut(&mut self) -> &mut CoarseFtl {
        &mut self.coarse_ftl
    }

    /// Immutable access to the page-level FTL.
    pub fn page_ftl(&self) -> &PageLevelFtl {
        &self.page_ftl
    }

    /// Immutable access to the ECC engine.
    pub fn ecc(&self) -> &EccEngine {
        &self.ecc
    }

    /// Mutable access to the ECC engine (used by the in-storage engine for
    /// TLC reads it routes through the controller).
    pub fn ecc_mut(&mut self) -> &mut EccEngine {
        &mut self.ecc
    }

    /// Immutable access to the maintenance manager.
    pub fn maintenance(&self) -> &MaintenanceManager {
        &self.maintenance
    }

    /// Current operating mode.
    pub fn mode(&self) -> SsdMode {
        self.maintenance.mode()
    }

    /// Switch the device into the given mode, returning the FTL-swap latency.
    pub fn switch_mode(&mut self, mode: SsdMode) -> Nanos {
        self.maintenance.switch_mode(mode)
    }

    /// Reserve a physically contiguous, plane-striped region of `pages`
    /// pages for a database region of the given kind, accounting its DRAM
    /// bookkeeping under `name`.
    ///
    /// Released regions are recycled first: a previously released stripe
    /// range is handed out again once every page in it has been erased
    /// (compaction reclaims fully-invalid blocks, which is what makes the
    /// pages reprogrammable). Only if no released window qualifies does the
    /// reservation fall back to never-touched pages.
    ///
    /// # Errors
    ///
    /// * [`SsdError::OutOfSpace`] if the flash array cannot fit the region.
    /// * [`SsdError::DramExhausted`] if the bookkeeping does not fit in DRAM.
    pub fn reserve_region(
        &mut self,
        name: &str,
        pages: usize,
        _kind: RegionKind,
    ) -> Result<StripedRegion> {
        let geometry = self.config.geometry;
        let device = &self.device;
        let recycled = self.allocator.reserve_recycled(pages, |stripe| {
            let addr = crate::allocator::stripe_to_page(&geometry, stripe);
            !device.is_programmed(addr).unwrap_or(true)
        });
        let region = match recycled {
            Some(region) => region,
            None => self.allocator.reserve(pages)?,
        };
        // Region bookkeeping lives in DRAM next to the R-DB record.
        self.dram.allocate(name, crate::ftl::COARSE_RECORD_BYTES)?;
        Ok(region)
    }

    /// Release a database region: its still-programmed pages are marked
    /// invalid for block reclamation, its stripes return to the allocator's
    /// free list, and its DRAM bookkeeping under `name` is freed.
    ///
    /// The pages stay physically programmed until
    /// [`SsdController::reclaim_invalid_blocks`] erases the blocks they
    /// complete; only then can the stripes actually be recycled.
    pub fn release_region(&mut self, name: &str, region: &StripedRegion) {
        for offset in 0..region.len {
            if let Ok(addr) = region.page_at(&self.config.geometry, offset) {
                if self.device.is_programmed(addr).unwrap_or(false) {
                    self.maintenance.mark_invalid(addr);
                }
            }
        }
        self.allocator.release(region);
        self.dram.release(name);
    }

    /// Erase every block whose programmed pages have all been invalidated
    /// (see [`MaintenanceManager::reclaim_invalid_blocks`]), returning the
    /// number of blocks erased and the total erase latency.
    ///
    /// # Errors
    ///
    /// Propagates flash erase errors.
    pub fn reclaim_invalid_blocks(&mut self) -> Result<(usize, Nanos)> {
        self.maintenance.reclaim_invalid_blocks(&mut self.device)
    }

    /// Program one page of a database region with the scheme mandated by the
    /// hybrid policy for its kind, returning the program latency.
    ///
    /// # Errors
    ///
    /// Propagates flash programming errors (already-programmed page,
    /// oversized payload, invalid address).
    pub fn program_region_page(
        &mut self,
        region: &StripedRegion,
        offset: usize,
        kind: RegionKind,
        data: &[u8],
        oob: &[u8],
    ) -> Result<Nanos> {
        let addr = region.page_at(&self.config.geometry, offset)?;
        let scheme = self.config.hybrid.scheme_for(kind);
        Ok(self.device.program_page(addr, data, oob, scheme)?)
    }

    /// Read one page of a database region through the controller, applying
    /// ECC when the region's programming scheme requires it.
    ///
    /// Allocates a fresh buffer per call; hot loops should prefer
    /// [`SsdController::read_region_page_into`], which stages the readout in
    /// caller-pooled buffers instead.
    ///
    /// # Errors
    ///
    /// Propagates flash read errors.
    pub fn read_region_page(
        &mut self,
        region: &StripedRegion,
        offset: usize,
        kind: RegionKind,
    ) -> Result<HostReadOutcome> {
        let mut data = Vec::new();
        let mut oob = Vec::new();
        let (latency, corrected) =
            self.read_region_page_into(region, offset, kind, &mut data, &mut oob)?;
        Ok(HostReadOutcome {
            data,
            latency,
            corrected,
        })
    }

    /// Read one page of a database region through the controller into
    /// caller-supplied staging buffers (cleared first), applying ECC when
    /// the region's programming scheme requires it. Returns the read latency
    /// and whether ECC fully corrected the raw read.
    ///
    /// This is the pooled variant of [`SsdController::read_region_page`]:
    /// `data` stands in for the controller's ECC staging buffer, so a
    /// page-ordered rerank or document-fetch loop that reuses one buffer
    /// performs no per-page heap allocation.
    ///
    /// # Errors
    ///
    /// Propagates flash read errors.
    pub fn read_region_page_into(
        &mut self,
        region: &StripedRegion,
        offset: usize,
        kind: RegionKind,
        data: &mut Vec<u8>,
        oob: &mut Vec<u8>,
    ) -> Result<(Nanos, bool)> {
        let addr = region.page_at(&self.config.geometry, offset)?;
        let meta = self.device.read_page_into(addr, data, oob)?;
        let mut latency = meta.latency;
        let mut corrected = true;
        if self.config.hybrid.needs_ecc(kind) {
            let outcome = self.ecc.decode_page(meta.bit_errors);
            latency += outcome.latency;
            corrected = outcome.corrected;
            if corrected && meta.bit_errors > 0 {
                self.device.pristine_page_into(addr, data)?;
            }
        }
        // Staging the page in controller DRAM before it moves to the host.
        latency += self.dram.write(data.len());
        Ok((latency, corrected))
    }

    /// Conventional host write of one logical page.
    ///
    /// The write allocates a fresh physical page (out-of-place update),
    /// invalidates any previous mapping, and updates the page-level FTL.
    ///
    /// # Errors
    ///
    /// * [`SsdError::WrongMode`] if the device is in RAG mode.
    /// * [`SsdError::OutOfSpace`] if no free page is available.
    /// * Flash programming errors.
    pub fn host_write(&mut self, lpa: u64, data: &[u8]) -> Result<Nanos> {
        if self.mode() != SsdMode::Normal {
            return Err(SsdError::WrongMode {
                current: "RAG",
                required: "normal",
            });
        }
        let region = self.allocator.reserve(1)?;
        let addr = region.page_at(&self.config.geometry, 0)?;
        let scheme = self.config.hybrid.bulk_scheme;
        let mut latency = self.device.program_page(addr, data, &[], scheme)?;
        latency += self.cores.ftl_lookups(1);
        latency += self.dram.write(crate::ftl::PAGE_ENTRY_BYTES);
        if let Some(stale) = self.page_ftl.map(lpa, addr) {
            self.maintenance.mark_invalid(stale);
        }
        Ok(latency)
    }

    /// Conventional host read of one logical page.
    ///
    /// # Errors
    ///
    /// * [`SsdError::WrongMode`] if the device is in RAG mode.
    /// * [`SsdError::UnmappedLogicalPage`] if the page was never written.
    /// * Flash read errors.
    pub fn host_read(&mut self, lpa: u64) -> Result<HostReadOutcome> {
        if self.mode() != SsdMode::Normal {
            return Err(SsdError::WrongMode {
                current: "RAG",
                required: "normal",
            });
        }
        let addr = self.page_ftl.translate(lpa)?;
        let mut latency = self.cores.ftl_lookups(1) + self.dram.read(crate::ftl::PAGE_ENTRY_BYTES);
        let readout = self.device.read_page(addr)?;
        latency += readout.latency;
        let ecc_outcome = self.ecc.decode_page(readout.bit_errors);
        latency += ecc_outcome.latency;
        let data = if ecc_outcome.corrected && readout.bit_errors > 0 {
            self.device.pristine_page_data(addr)?.0
        } else {
            readout.data
        };
        Ok(HostReadOutcome {
            data,
            latency,
            corrected: ecc_outcome.corrected,
        })
    }

    /// Borrow the stored bytes of a region page for a read-only scan shard:
    /// the resolved physical address, the user data and the OOB bytes.
    ///
    /// Unlike [`SsdController::read_region_page`] this copies nothing,
    /// stages nothing in DRAM and records no statistics — shard workers
    /// account their own flash activity locally and the engine folds it back
    /// with [`SsdController::absorb_activity`] after the shards join. It is
    /// only exact for regions whose programming scheme reads error-free
    /// (the ESP-SLC embedding regions the in-plane scan targets).
    ///
    /// # Errors
    ///
    /// * [`SsdError::RegionOutOfBounds`] if the offset exceeds the region.
    /// * Flash errors for unprogrammed pages.
    pub fn scan_region_page(
        &self,
        region: &StripedRegion,
        offset: usize,
    ) -> Result<(PageAddr, &[u8], &[u8])> {
        let addr = region.page_at(&self.config.geometry, offset)?;
        let (data, oob, _scheme) = self.device.stored_page(addr)?;
        Ok((addr, data, oob))
    }

    /// Snapshot every activity counter (flash, DRAM, ECC) of this
    /// controller, for later differencing with
    /// [`SsdController::activity_since`].
    pub fn activity_snapshot(&self) -> ControllerActivity {
        ControllerActivity {
            flash: *self.device.stats(),
            dram_bytes_read: self.dram.bytes_read(),
            dram_bytes_written: self.dram.bytes_written(),
            ecc_pages_decoded: self.ecc.pages_decoded(),
            ecc_bits_corrected: self.ecc.bits_corrected(),
        }
    }

    /// The activity performed since `before` was snapshotted (element-wise
    /// difference of all counters).
    pub fn activity_since(&self, before: &ControllerActivity) -> ControllerActivity {
        let now = self.activity_snapshot();
        ControllerActivity {
            flash: now.flash.delta_since(&before.flash),
            dram_bytes_read: now.dram_bytes_read - before.dram_bytes_read,
            dram_bytes_written: now.dram_bytes_written - before.dram_bytes_written,
            ecc_pages_decoded: now.ecc_pages_decoded - before.ecc_pages_decoded,
            ecc_bits_corrected: now.ecc_bits_corrected - before.ecc_bits_corrected,
        }
    }

    /// Merge an externally measured activity delta into this controller's
    /// counters: batch-search worker replicas and intra-query scan shards
    /// perform real work that the primary controller must account for.
    pub fn absorb_activity(&mut self, delta: &ControllerActivity) {
        self.device.absorb_stats(&delta.flash);
        self.dram
            .absorb_traffic(delta.dram_bytes_read, delta.dram_bytes_written);
        self.ecc
            .absorb_counters(delta.ecc_pages_decoded, delta.ecc_bits_corrected);
    }

    /// Translate a page address helper for a region offset (convenience for
    /// the in-storage engine).
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::RegionOutOfBounds`] if the offset exceeds the
    /// region.
    pub fn region_page(&self, region: &StripedRegion, offset: usize) -> Result<PageAddr> {
        region.page_at(&self.config.geometry, offset)
    }

    /// Free flash pages remaining in the allocator.
    pub fn free_pages(&self) -> usize {
        self.allocator.free_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> SsdController {
        SsdController::new(SsdConfig::tiny())
    }

    #[test]
    fn host_write_then_read_roundtrips_through_ftl_and_ecc() {
        let mut ssd = controller();
        let data = vec![0x42; 4096];
        let w = ssd.host_write(10, &data).unwrap();
        assert!(w > Nanos::ZERO);
        let read = ssd.host_read(10).unwrap();
        assert_eq!(read.data, data);
        assert!(read.corrected);
        assert!(read.latency > Nanos::ZERO);
        assert_eq!(ssd.ecc().pages_decoded(), 1);
        assert!(matches!(
            ssd.host_read(99),
            Err(SsdError::UnmappedLogicalPage(99))
        ));
    }

    #[test]
    fn overwriting_a_logical_page_invalidates_the_old_copy() {
        let mut ssd = controller();
        ssd.host_write(5, &[1u8; 64]).unwrap();
        let first_phys = ssd.page_ftl().translate(5).unwrap();
        ssd.host_write(5, &[2u8; 64]).unwrap();
        let second_phys = ssd.page_ftl().translate(5).unwrap();
        assert_ne!(first_phys, second_phys);
        assert_eq!(ssd.maintenance().invalid_count(first_phys.block_addr()), 1);
        assert_eq!(ssd.host_read(5).unwrap().data[0], 2);
    }

    #[test]
    fn rag_mode_blocks_conventional_io() {
        let mut ssd = controller();
        ssd.switch_mode(SsdMode::Rag);
        assert!(matches!(
            ssd.host_write(1, &[0u8; 16]),
            Err(SsdError::WrongMode { .. })
        ));
        assert!(matches!(ssd.host_read(1), Err(SsdError::WrongMode { .. })));
        ssd.switch_mode(SsdMode::Normal);
        ssd.host_write(1, &[0u8; 16]).unwrap();
    }

    #[test]
    fn region_lifecycle_program_and_read_with_policy_schemes() {
        let mut ssd = controller();
        let emb = ssd
            .reserve_region("db0/embeddings", 4, RegionKind::BinaryEmbeddings)
            .unwrap();
        let docs = ssd
            .reserve_region("db0/documents", 4, RegionKind::Documents)
            .unwrap();
        ssd.program_region_page(
            &emb,
            0,
            RegionKind::BinaryEmbeddings,
            &[0xAB; 4096],
            &[1, 2, 3],
        )
        .unwrap();
        ssd.program_region_page(&docs, 0, RegionKind::Documents, &[0xCD; 4096], &[])
            .unwrap();
        let emb_read = ssd
            .read_region_page(&emb, 0, RegionKind::BinaryEmbeddings)
            .unwrap();
        let doc_read = ssd
            .read_region_page(&docs, 0, RegionKind::Documents)
            .unwrap();
        assert_eq!(emb_read.data[0], 0xAB);
        assert_eq!(doc_read.data[0], 0xCD);
        // Only the document (TLC) read goes through ECC.
        assert_eq!(ssd.ecc().pages_decoded(), 1);
        // The regions are disjoint and tracked by the allocator.
        assert_eq!(ssd.free_pages(), ssd.config().geometry.total_pages() - 8);
    }

    #[test]
    fn scan_region_page_borrows_stored_bytes_without_counting() {
        let mut ssd = controller();
        let region = ssd
            .reserve_region("db0/embeddings", 2, RegionKind::BinaryEmbeddings)
            .unwrap();
        ssd.program_region_page(
            &region,
            1,
            RegionKind::BinaryEmbeddings,
            &[0x5A; 4096],
            &[9, 8, 7],
        )
        .unwrap();
        let before = ssd.activity_snapshot();
        let (addr, data, oob) = ssd.scan_region_page(&region, 1).unwrap();
        assert_eq!(addr, region.page_at(&ssd.config().geometry, 1).unwrap());
        assert_eq!(data.len(), ssd.config().geometry.page_size_bytes);
        assert_eq!(data[0], 0x5A);
        assert_eq!(&oob[..3], &[9, 8, 7]);
        // A shard read records nothing; the shard's own stats are merged
        // back through absorb_activity instead.
        let delta = ssd.activity_since(&before);
        assert_eq!(delta, ControllerActivity::default());
        assert!(ssd.scan_region_page(&region, 0).is_err(), "unprogrammed");
    }

    #[test]
    fn activity_snapshot_absorb_roundtrip() {
        let mut primary = controller();
        let mut replica = primary.clone();
        let before = replica.activity_snapshot();
        replica.host_write(3, &[1u8; 512]).unwrap();
        replica.host_read(3).unwrap();
        let delta = replica.activity_since(&before);
        assert!(delta.flash.page_reads > 0);
        assert!(delta.ecc_pages_decoded > 0);
        primary.absorb_activity(&delta);
        assert_eq!(primary.activity_snapshot(), replica.activity_snapshot());
    }

    #[test]
    fn reserve_region_fails_when_flash_is_full() {
        let mut ssd = controller();
        let total = ssd.config().geometry.total_pages();
        ssd.reserve_region("big", total, RegionKind::Documents)
            .unwrap();
        assert!(matches!(
            ssd.reserve_region("more", 1, RegionKind::Documents),
            Err(SsdError::OutOfSpace { .. })
        ));
    }
}
