//! The SSD controller's embedded processors.
//!
//! The controller of a modern SSD contains a handful of embedded
//! general-purpose cores (Cortex-R8-class in the devices of Table 3) whose
//! day job is executing the FTL and servicing I/O. REIS borrows *one* of
//! them to run its selection kernels — quickselect over the Temporal Top
//! List, INT8 reranking, and the final quicksort — leaving the remaining
//! cores for normal SSD duties (Sec. 4.3.4, 7.2). This module provides an
//! analytic cycle-cost model of those kernels.

use serde::{Deserialize, Serialize};

use reis_nand::Nanos;

/// Parameters of the embedded core complex.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreParams {
    /// Number of embedded cores in the controller.
    pub num_cores: usize,
    /// Number of cores REIS is allowed to use for its kernels.
    pub cores_for_reis: usize,
    /// Core clock frequency in Hz (Cortex-R8 class parts clock around 1 GHz).
    pub clock_hz: f64,
    /// Average cycles per element for the quickselect kernel (comparison,
    /// swap, loop overhead on an in-order core).
    pub cycles_per_quickselect_element: f64,
    /// Average cycles per element·log2(element) for quicksort.
    pub cycles_per_quicksort_element: f64,
    /// Cycles per dimension for one INT8 distance computation during
    /// reranking (multiply-accumulate plus load).
    pub cycles_per_rerank_dimension: f64,
    /// Cycles charged per FTL lookup (hash + DRAM pointer chase issued by the
    /// core).
    pub cycles_per_ftl_lookup: f64,
    /// Active power per core in watts.
    pub active_power_w: f64,
}

impl CoreParams {
    /// Cortex-R8-class defaults used by both REIS SSD configurations: four
    /// cores, one reserved for REIS.
    pub fn cortex_r8() -> Self {
        CoreParams {
            num_cores: 4,
            cores_for_reis: 1,
            clock_hz: 1.0e9,
            cycles_per_quickselect_element: 6.0,
            cycles_per_quicksort_element: 8.0,
            cycles_per_rerank_dimension: 2.0,
            cycles_per_ftl_lookup: 40.0,
            active_power_w: 0.35,
        }
    }
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams::cortex_r8()
    }
}

/// Cost model of the kernels REIS runs on the embedded cores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbeddedCores {
    params: CoreParams,
}

impl EmbeddedCores {
    /// Create the cost model from core parameters.
    pub fn new(params: CoreParams) -> Self {
        EmbeddedCores { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &CoreParams {
        &self.params
    }

    fn cycles_to_time(&self, cycles: f64) -> Nanos {
        Nanos::from_secs_f64(cycles / self.params.clock_hz)
    }

    /// Latency of a quickselect pass that keeps the `k` smallest of `n`
    /// candidates (expected O(n); `k` only affects the constant marginally
    /// and is ignored).
    pub fn quickselect(&self, n: usize, _k: usize) -> Nanos {
        self.cycles_to_time(self.params.cycles_per_quickselect_element * n as f64)
    }

    /// Latency of quicksorting `n` elements (O(n log n)).
    pub fn quicksort(&self, n: usize) -> Nanos {
        if n <= 1 {
            return Nanos::ZERO;
        }
        let cycles = self.params.cycles_per_quicksort_element * n as f64 * (n as f64).log2();
        self.cycles_to_time(cycles)
    }

    /// Latency of reranking `candidates` embeddings of `dim` dimensions in
    /// INT8 precision (distance recomputation only; the final sort is charged
    /// separately via [`EmbeddedCores::quicksort`]).
    pub fn rerank(&self, candidates: usize, dim: usize) -> Nanos {
        self.cycles_to_time(self.params.cycles_per_rerank_dimension * (candidates * dim) as f64)
    }

    /// Latency of `lookups` page-level FTL translations.
    pub fn ftl_lookups(&self, lookups: usize) -> Nanos {
        self.cycles_to_time(self.params.cycles_per_ftl_lookup * lookups as f64)
    }

    /// Energy in joules of running a kernel of duration `busy` on one core.
    pub fn energy_joules(&self, busy: Nanos) -> f64 {
        self.params.active_power_w * busy.as_secs_f64()
    }

    /// Power in watts of the cores REIS keeps busy (used for QPS/W).
    pub fn reis_power_w(&self) -> f64 {
        self.params.active_power_w * self.params.cores_for_reis as f64
    }
}

impl Default for EmbeddedCores {
    fn default() -> Self {
        EmbeddedCores::new(CoreParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_costs_scale_with_input_size() {
        let cores = EmbeddedCores::default();
        assert!(cores.quickselect(10_000, 10) > cores.quickselect(1_000, 10));
        assert!(cores.quicksort(1_000) > cores.quicksort(100));
        assert!(cores.rerank(100, 1024) > cores.rerank(100, 128));
        assert!(cores.ftl_lookups(100) > cores.ftl_lookups(1));
        assert_eq!(cores.quicksort(1), Nanos::ZERO);
        assert_eq!(cores.quicksort(0), Nanos::ZERO);
    }

    #[test]
    fn quickselect_is_cheaper_than_quicksort_for_large_inputs() {
        let cores = EmbeddedCores::default();
        // This is the reason REIS uses quickselect on the TTL instead of
        // sorting it: linear vs O(n log n).
        assert!(cores.quickselect(100_000, 100) < cores.quicksort(100_000));
    }

    #[test]
    fn rerank_cost_matches_cycle_model() {
        let params = CoreParams::cortex_r8();
        let cores = EmbeddedCores::new(params);
        let t = cores.rerank(100, 1024);
        let expected = 2.0 * 100.0 * 1024.0 / 1.0e9;
        assert!((t.as_secs_f64() - expected).abs() < 1e-12);
    }

    #[test]
    fn energy_and_power_are_positive() {
        let cores = EmbeddedCores::default();
        assert!(cores.energy_joules(Nanos::from_micros(100)) > 0.0);
        assert_eq!(cores.reis_power_w(), 0.35);
        assert_eq!(cores.params().num_cores, 4);
    }
}
