//! Controller-side error correction.
//!
//! Conventional SSD reads pass through an LDPC/BCH decoder in the controller
//! before data is usable. That is exactly the data movement REIS avoids for
//! its compute data by using ESP-SLC: performing ECC for in-plane operands
//! would mean shipping every page to the controller first, which is what the
//! REIS-ASIC comparator of Sec. 6.3.1 is charged for.

use serde::{Deserialize, Serialize};

use reis_nand::Nanos;

/// Latency/energy/strength parameters of the ECC engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EccParams {
    /// Decode latency for one 16 KB page with few or no errors.
    pub decode_latency_per_page: Nanos,
    /// Additional latency per corrected bit (iterative decoding cost).
    pub latency_per_corrected_bit: Nanos,
    /// Maximum number of raw bit errors the code can correct per page.
    pub correctable_bits_per_page: usize,
    /// Energy per decoded page in nanojoules.
    pub energy_nj_per_page: f64,
}

impl EccParams {
    /// LDPC-class defaults for a data-center SSD.
    pub fn ldpc() -> Self {
        EccParams {
            decode_latency_per_page: Nanos::from_micros(8),
            latency_per_corrected_bit: Nanos::from_nanos(40),
            correctable_bits_per_page: 512,
            energy_nj_per_page: 250.0,
        }
    }
}

impl Default for EccParams {
    fn default() -> Self {
        EccParams::ldpc()
    }
}

/// Outcome of decoding one page.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EccOutcome {
    /// Whether all raw errors were corrected.
    pub corrected: bool,
    /// Decode latency.
    pub latency: Nanos,
    /// Energy consumed in joules.
    pub energy_joules: f64,
}

/// The controller's ECC engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EccEngine {
    params: EccParams,
    pages_decoded: u64,
    bits_corrected: u64,
}

impl EccEngine {
    /// Create an engine with the given parameters.
    pub fn new(params: EccParams) -> Self {
        EccEngine {
            params,
            pages_decoded: 0,
            bits_corrected: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &EccParams {
        &self.params
    }

    /// Decode one page that arrived with `raw_bit_errors` errors.
    ///
    /// Pages with more errors than the code strength are reported as
    /// uncorrected (real drives would retry with read-offset calibration; the
    /// retrieval workloads modeled here never reach that regime).
    pub fn decode_page(&mut self, raw_bit_errors: usize) -> EccOutcome {
        self.pages_decoded += 1;
        let correctable = raw_bit_errors <= self.params.correctable_bits_per_page;
        let corrected_bits = raw_bit_errors.min(self.params.correctable_bits_per_page);
        self.bits_corrected += corrected_bits as u64;
        EccOutcome {
            corrected: correctable,
            latency: self.params.decode_latency_per_page
                + self.params.latency_per_corrected_bit * corrected_bits as u64,
            energy_joules: self.params.energy_nj_per_page * 1e-9,
        }
    }

    /// Merge externally measured decode activity into this engine's counters
    /// (used to fold batch-search worker replicas' activity back into the
    /// primary).
    pub fn absorb_counters(&mut self, pages_decoded: u64, bits_corrected: u64) {
        self.pages_decoded += pages_decoded;
        self.bits_corrected += bits_corrected;
    }

    /// Pages decoded so far.
    pub fn pages_decoded(&self) -> u64 {
        self.pages_decoded
    }

    /// Raw bits corrected so far.
    pub fn bits_corrected(&self) -> u64 {
        self.bits_corrected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_pages_decode_at_base_latency() {
        let mut ecc = EccEngine::new(EccParams::ldpc());
        let out = ecc.decode_page(0);
        assert!(out.corrected);
        assert_eq!(out.latency, EccParams::ldpc().decode_latency_per_page);
        assert!(out.energy_joules > 0.0);
    }

    #[test]
    fn errors_add_latency_and_are_counted() {
        let mut ecc = EccEngine::new(EccParams::ldpc());
        let clean = ecc.decode_page(0).latency;
        let dirty = ecc.decode_page(100).latency;
        assert!(dirty > clean);
        assert_eq!(ecc.pages_decoded(), 2);
        assert_eq!(ecc.bits_corrected(), 100);
    }

    #[test]
    fn uncorrectable_pages_are_flagged() {
        let mut ecc = EccEngine::new(EccParams::ldpc());
        let out = ecc.decode_page(10_000);
        assert!(!out.corrected);
    }
}
