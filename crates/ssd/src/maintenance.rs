//! SSD maintenance: garbage collection, wear statistics and mode switching.
//!
//! REIS coexists with normal SSD duties (Sec. 7.2): the device operates in
//! either RAG mode (coarse-grained FTL resident, in-storage search enabled)
//! or normal block-I/O mode (page-level FTL resident), switching by loading
//! the corresponding FTL metadata. Garbage collection and wear leveling keep
//! running on the cores not reserved for REIS; retrieval workloads are
//! read-dominated, so these paths mostly matter for the conventional
//! read/write mode of the controller.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

use reis_nand::{BlockAddr, FlashDevice, Nanos, PageAddr};

use crate::error::Result;
use crate::ftl::PageLevelFtl;

/// The mode the SSD is operating in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SsdMode {
    /// Conventional block-I/O mode: page-level FTL active.
    #[default]
    Normal,
    /// RAG retrieval mode: coarse-grained FTL active, in-storage search
    /// enabled.
    Rag,
}

impl SsdMode {
    /// Human-readable name of the mode.
    pub fn name(&self) -> &'static str {
        match self {
            SsdMode::Normal => "normal",
            SsdMode::Rag => "RAG",
        }
    }
}

/// Summary of wear across the blocks that have been erased at least once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WearStats {
    /// Lowest erase count among touched blocks.
    pub min_erase_count: u64,
    /// Highest erase count among touched blocks.
    pub max_erase_count: u64,
    /// Mean erase count among touched blocks.
    pub mean_erase_count: f64,
    /// Number of blocks that have been erased at least once.
    pub touched_blocks: usize,
}

/// Garbage collection and mode management.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceManager {
    invalid_pages: HashMap<BlockAddr, HashSet<usize>>,
    mode: SsdMode,
    gc_runs: u64,
    pages_relocated: u64,
    blocks_reclaimed: u64,
}

impl MaintenanceManager {
    /// Create a manager in normal mode with no invalid pages.
    pub fn new() -> Self {
        MaintenanceManager::default()
    }

    /// The current operating mode.
    pub fn mode(&self) -> SsdMode {
        self.mode
    }

    /// Switch operating mode, returning the latency of loading/flushing the
    /// corresponding FTL metadata between flash and DRAM (proportional to the
    /// metadata moved; a fixed representative cost is used here).
    pub fn switch_mode(&mut self, target: SsdMode) -> Nanos {
        if self.mode == target {
            return Nanos::ZERO;
        }
        self.mode = target;
        // Loading coarse records is trivial; loading a page-level FTL for a
        // large drive is the expensive direction. A few milliseconds covers
        // flushing + loading the affected mapping ranges.
        Nanos::from_millis(2)
    }

    /// Record that the page at `addr` no longer holds live data (its logical
    /// page was overwritten or trimmed).
    pub fn mark_invalid(&mut self, addr: PageAddr) {
        self.invalid_pages
            .entry(addr.block_addr())
            .or_default()
            .insert(addr.page);
    }

    /// Number of invalid pages in a block.
    pub fn invalid_count(&self, block: BlockAddr) -> usize {
        self.invalid_pages
            .get(&block)
            .map(HashSet::len)
            .unwrap_or(0)
    }

    /// The block with the most invalid pages, if any block has invalid pages
    /// (the greedy victim-selection policy).
    pub fn gc_candidate(&self) -> Option<BlockAddr> {
        self.invalid_pages
            .iter()
            .filter(|(_, pages)| !pages.is_empty())
            .max_by_key(|(_, pages)| pages.len())
            .map(|(&block, _)| block)
    }

    /// Garbage-collect one victim block: relocate its still-valid pages to
    /// fresh locations supplied by `relocate`, update the FTL, erase the
    /// block, and return the total latency.
    ///
    /// `relocate` must hand back a free physical page for every valid page
    /// that needs to move.
    ///
    /// # Errors
    ///
    /// Propagates flash programming/erase errors.
    pub fn collect(
        &mut self,
        device: &mut FlashDevice,
        ftl: &mut PageLevelFtl,
        victim: BlockAddr,
        mut relocate: impl FnMut() -> Result<PageAddr>,
    ) -> Result<Nanos> {
        let invalid = self.invalid_pages.remove(&victim).unwrap_or_default();
        let mut latency = Nanos::ZERO;
        // Find live mappings pointing into the victim block.
        let live: Vec<(u64, PageAddr)> = ftl
            .iter()
            .filter(|(_, ppa)| ppa.block_addr() == victim && !invalid.contains(&ppa.page))
            .collect();
        for (lpa, old) in live {
            let readout = device.read_page(old)?;
            let target = relocate()?;
            latency += readout.latency;
            latency += device.program_page(target, &readout.data, &readout.oob, readout.scheme)?;
            ftl.map(lpa, target);
            self.pages_relocated += 1;
        }
        latency += device.erase_block(victim)?;
        self.gc_runs += 1;
        Ok(latency)
    }

    /// Erase every block whose programmed pages have all been invalidated
    /// (the block-reclaim half of compaction: once an update pass migrated
    /// or tombstone-dropped every live page of a block, the block holds no
    /// useful data and an erase returns it to service).
    ///
    /// Returns the number of blocks erased and the total erase latency.
    /// Blocks with a mix of live and invalid pages are left alone — a later
    /// release of the neighbouring region may complete them.
    ///
    /// # Errors
    ///
    /// Propagates flash erase errors.
    pub fn reclaim_invalid_blocks(&mut self, device: &mut FlashDevice) -> Result<(usize, Nanos)> {
        let mut victims: Vec<BlockAddr> = Vec::new();
        for (&block, invalid) in &self.invalid_pages {
            let programmed = device.programmed_pages_in_block(block)?;
            if programmed > 0 && invalid.len() >= programmed {
                victims.push(block);
            }
        }
        // Deterministic erase order regardless of hash-map iteration.
        victims.sort_unstable_by_key(|b| (b.channel, b.die, b.plane, b.block));
        let mut latency = Nanos::ZERO;
        for block in &victims {
            latency += device.erase_block(*block)?;
            self.invalid_pages.remove(block);
            self.blocks_reclaimed += 1;
        }
        Ok((victims.len(), latency))
    }

    /// Number of blocks reclaimed (erased) because all their programmed
    /// pages had been invalidated.
    pub fn blocks_reclaimed(&self) -> u64 {
        self.blocks_reclaimed
    }

    /// Number of garbage collection runs performed.
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs
    }

    /// Number of pages relocated by garbage collection.
    pub fn pages_relocated(&self) -> u64 {
        self.pages_relocated
    }

    /// Summarize wear across all blocks of the device that were erased at
    /// least once.
    pub fn wear_stats(&self, device: &FlashDevice) -> WearStats {
        let geometry = *device.geometry();
        let mut counts = Vec::new();
        for plane in geometry.planes() {
            for block in 0..geometry.blocks_per_plane {
                let addr = BlockAddr::new(plane.channel, plane.die, plane.plane, block);
                let count = device.erase_count(addr).unwrap_or(0);
                if count > 0 {
                    counts.push(count);
                }
            }
        }
        if counts.is_empty() {
            return WearStats::default();
        }
        let min = *counts.iter().min().expect("non-empty");
        let max = *counts.iter().max().expect("non-empty");
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        WearStats {
            min_erase_count: min,
            max_erase_count: max,
            mean_erase_count: mean,
            touched_blocks: counts.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reis_nand::{Geometry, ProgramScheme, TimingParams};

    #[test]
    fn mode_switching_costs_only_on_change() {
        let mut m = MaintenanceManager::new();
        assert_eq!(m.mode(), SsdMode::Normal);
        assert_eq!(m.switch_mode(SsdMode::Normal), Nanos::ZERO);
        assert!(m.switch_mode(SsdMode::Rag) > Nanos::ZERO);
        assert_eq!(m.mode(), SsdMode::Rag);
        assert_eq!(m.mode().name(), "RAG");
    }

    #[test]
    fn gc_relocates_live_pages_and_erases_the_victim() {
        let geom = Geometry::tiny();
        let mut device = FlashDevice::new(geom, TimingParams::default());
        let mut ftl = PageLevelFtl::new();
        let mut m = MaintenanceManager::new();

        // Fill block 0 of plane (0,0,0) with four logical pages.
        let victim = BlockAddr::new(0, 0, 0, 0);
        for i in 0..4usize {
            let ppa = PageAddr::new(0, 0, 0, 0, i);
            device
                .program_page(
                    ppa,
                    &[i as u8; 64],
                    &[],
                    ProgramScheme::Ispp(reis_nand::CellMode::Tlc),
                )
                .unwrap();
            ftl.map(i as u64, ppa);
        }
        // Overwrite logical pages 0 and 1 elsewhere, invalidating their old copies.
        for i in 0..2usize {
            let new = PageAddr::new(0, 0, 0, 1, i);
            device
                .program_page(
                    new,
                    &[0xAA; 64],
                    &[],
                    ProgramScheme::Ispp(reis_nand::CellMode::Tlc),
                )
                .unwrap();
            let old = ftl.map(i as u64, new).unwrap();
            m.mark_invalid(old);
        }
        assert_eq!(m.invalid_count(victim), 2);
        assert_eq!(m.gc_candidate(), Some(victim));

        // Relocate the two still-valid pages into block 2.
        let mut next = 0usize;
        let latency = m
            .collect(&mut device, &mut ftl, victim, || {
                let addr = PageAddr::new(0, 0, 0, 2, next);
                next += 1;
                Ok(addr)
            })
            .unwrap();
        assert!(latency > Nanos::ZERO);
        assert_eq!(m.pages_relocated(), 2);
        assert_eq!(m.gc_runs(), 1);
        // Logical pages 2 and 3 now live in block 2 and still read back.
        for i in 2..4u64 {
            let ppa = ftl.translate(i).unwrap();
            assert_eq!(ppa.block, 2);
            let readout = device.read_page(ppa).unwrap();
            assert_eq!(readout.data[0], i as u8);
        }
        // The victim block was erased.
        assert_eq!(device.erase_count(victim).unwrap(), 1);
        let wear = m.wear_stats(&device);
        assert_eq!(wear.touched_blocks, 1);
        assert_eq!(wear.max_erase_count, 1);
    }

    #[test]
    fn gc_candidate_is_none_without_invalid_pages() {
        let m = MaintenanceManager::new();
        assert_eq!(m.gc_candidate(), None);
    }

    #[test]
    fn reclaim_erases_only_fully_invalid_blocks() {
        let geom = Geometry::tiny();
        let mut device = FlashDevice::new(geom, TimingParams::default());
        let mut m = MaintenanceManager::new();

        // Block 0: two programmed pages, both invalidated -> reclaimable.
        // Block 1: two programmed pages, one invalidated -> must survive.
        for block in 0..2usize {
            for page in 0..2usize {
                let addr = PageAddr::new(0, 0, 0, block, page);
                device
                    .program_page(addr, &[7u8; 32], &[], ProgramScheme::EnhancedSlc)
                    .unwrap();
            }
        }
        m.mark_invalid(PageAddr::new(0, 0, 0, 0, 0));
        m.mark_invalid(PageAddr::new(0, 0, 0, 0, 1));
        m.mark_invalid(PageAddr::new(0, 0, 0, 1, 0));

        let (reclaimed, latency) = m.reclaim_invalid_blocks(&mut device).unwrap();
        assert_eq!(reclaimed, 1);
        assert!(latency > Nanos::ZERO);
        assert_eq!(m.blocks_reclaimed(), 1);
        assert_eq!(device.erase_count(BlockAddr::new(0, 0, 0, 0)).unwrap(), 1);
        assert_eq!(device.erase_count(BlockAddr::new(0, 0, 0, 1)).unwrap(), 0);
        // The partially invalid block keeps its record; a second pass with
        // nothing new reclaims nothing.
        assert_eq!(m.invalid_count(BlockAddr::new(0, 0, 0, 1)), 1);
        let (again, _) = m.reclaim_invalid_blocks(&mut device).unwrap();
        assert_eq!(again, 0);
        // Invalidating the remaining live page completes block 1.
        m.mark_invalid(PageAddr::new(0, 0, 0, 1, 1));
        let (last, _) = m.reclaim_invalid_blocks(&mut device).unwrap();
        assert_eq!(last, 1);
        assert_eq!(m.blocks_reclaimed(), 2);
    }
}
