//! Flash Translation Layer: page-level mapping and REIS's coarse-grained
//! region mapping (the R-DB record).
//!
//! A conventional page-level FTL needs roughly 1 GB of mapping table per TB
//! of flash — DRAM that REIS would rather spend on the Temporal Top Lists.
//! Because a deployed vector database occupies two physically contiguous
//! regions, REIS replaces the per-page map with a 21-byte record per database
//! (start/end of the embedding and document regions plus the database id) and
//! computes each next address by incrementing the previous one (Sec. 4.1.4).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use reis_nand::{Geometry, PageAddr};

use crate::allocator::StripedRegion;
use crate::error::{Result, SsdError};

/// Bytes of DRAM one page-level mapping entry occupies (4-byte LPA key packed
/// with a 4-byte physical page number).
pub const PAGE_ENTRY_BYTES: usize = 8;

/// Bytes of DRAM one coarse-grained database record occupies (the paper
/// quotes 21 bytes: a 1-byte id plus first/last addresses of both regions).
pub const COARSE_RECORD_BYTES: usize = 21;

/// Conventional page-level logical-to-physical mapping table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageLevelFtl {
    map: HashMap<u64, PageAddr>,
}

impl PageLevelFtl {
    /// Create an empty mapping table.
    pub fn new() -> Self {
        PageLevelFtl::default()
    }

    /// Number of mapped logical pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no logical page is mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// DRAM footprint of the mapping table in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.map.len() * PAGE_ENTRY_BYTES
    }

    /// Map a logical page to a physical page, returning the previous mapping
    /// (now stale and eligible for garbage collection) if one existed.
    pub fn map(&mut self, lpa: u64, ppa: PageAddr) -> Option<PageAddr> {
        self.map.insert(lpa, ppa)
    }

    /// Translate a logical page address.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::UnmappedLogicalPage`] if the page was never
    /// written.
    pub fn translate(&self, lpa: u64) -> Result<PageAddr> {
        self.map
            .get(&lpa)
            .copied()
            .ok_or(SsdError::UnmappedLogicalPage(lpa))
    }

    /// Remove the mapping of a logical page, returning it if present.
    pub fn unmap(&mut self, lpa: u64) -> Option<PageAddr> {
        self.map.remove(&lpa)
    }

    /// Iterate over all `(logical, physical)` mappings (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (u64, PageAddr)> + '_ {
        self.map.iter().map(|(&l, &p)| (l, p))
    }
}

/// The record REIS keeps per deployed database: where its regions live and
/// how many entries it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatabaseRecord {
    /// Database identifier (the `Did` of the host API).
    pub db_id: u32,
    /// Region holding binary embeddings (and centroids), programmed ESP-SLC.
    pub embedding_region: StripedRegion,
    /// Region holding INT8 embeddings for reranking, programmed TLC.
    pub int8_region: StripedRegion,
    /// Region holding document chunks, programmed TLC.
    pub document_region: StripedRegion,
    /// Number of database entries (embedding/document pairs).
    pub entries: usize,
}

impl DatabaseRecord {
    /// DRAM footprint of this record in bytes.
    pub fn footprint_bytes(&self) -> usize {
        COARSE_RECORD_BYTES
    }
}

/// The R-DB array: coarse-grained FTL over all deployed databases.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoarseFtl {
    records: Vec<DatabaseRecord>,
}

impl CoarseFtl {
    /// Create an empty R-DB.
    pub fn new() -> Self {
        CoarseFtl::default()
    }

    /// Number of deployed databases.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no database is deployed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total DRAM footprint of all records in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.records.len() * COARSE_RECORD_BYTES
    }

    /// Register a database record.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::DatabaseAlreadyDeployed`] if a record with the
    /// same id exists.
    pub fn deploy(&mut self, record: DatabaseRecord) -> Result<()> {
        if self.records.iter().any(|r| r.db_id == record.db_id) {
            return Err(SsdError::DatabaseAlreadyDeployed(record.db_id));
        }
        self.records.push(record);
        Ok(())
    }

    /// Look up the record of a database.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::UnknownDatabase`] if the id is not deployed.
    pub fn record(&self, db_id: u32) -> Result<&DatabaseRecord> {
        self.records
            .iter()
            .find(|r| r.db_id == db_id)
            .ok_or(SsdError::UnknownDatabase(db_id))
    }

    /// Remove a database record.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::UnknownDatabase`] if the id is not deployed.
    pub fn remove(&mut self, db_id: u32) -> Result<DatabaseRecord> {
        let idx = self
            .records
            .iter()
            .position(|r| r.db_id == db_id)
            .ok_or(SsdError::UnknownDatabase(db_id))?;
        Ok(self.records.remove(idx))
    }

    /// Translate the `offset`-th embedding-region page of a database to a
    /// physical page address by pure arithmetic — no per-page table lookup.
    ///
    /// # Errors
    ///
    /// * [`SsdError::UnknownDatabase`] if the id is not deployed.
    /// * [`SsdError::RegionOutOfBounds`] if `offset` exceeds the region.
    pub fn embedding_page(
        &self,
        geometry: &Geometry,
        db_id: u32,
        offset: usize,
    ) -> Result<PageAddr> {
        self.record(db_id)?
            .embedding_region
            .page_at(geometry, offset)
    }

    /// Translate the `offset`-th document-region page of a database.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CoarseFtl::embedding_page`].
    pub fn document_page(
        &self,
        geometry: &Geometry,
        db_id: u32,
        offset: usize,
    ) -> Result<PageAddr> {
        self.record(db_id)?
            .document_region
            .page_at(geometry, offset)
    }

    /// Translate the `offset`-th INT8-region page of a database.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CoarseFtl::embedding_page`].
    pub fn int8_page(&self, geometry: &Geometry, db_id: u32, offset: usize) -> Result<PageAddr> {
        self.record(db_id)?.int8_region.page_at(geometry, offset)
    }

    /// Iterate over all deployed records.
    pub fn iter(&self) -> impl Iterator<Item = &DatabaseRecord> {
        self.records.iter()
    }
}

/// DRAM saving of coarse-grained addressing for a database of `pages` pages:
/// the page-level footprint divided by the coarse record footprint.
pub fn coarse_ftl_saving(pages: usize) -> f64 {
    (pages * PAGE_ENTRY_BYTES) as f64 / COARSE_RECORD_BYTES as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::PageAllocator;

    #[test]
    fn page_level_ftl_maps_and_invalidates() {
        let mut ftl = PageLevelFtl::new();
        let p0 = PageAddr::new(0, 0, 0, 0, 0);
        let p1 = PageAddr::new(0, 0, 0, 0, 1);
        assert!(ftl.map(7, p0).is_none());
        assert_eq!(ftl.translate(7).unwrap(), p0);
        // Overwriting returns the stale physical page for GC.
        assert_eq!(ftl.map(7, p1), Some(p0));
        assert_eq!(ftl.translate(7).unwrap(), p1);
        assert!(matches!(
            ftl.translate(8),
            Err(SsdError::UnmappedLogicalPage(8))
        ));
        assert_eq!(ftl.footprint_bytes(), PAGE_ENTRY_BYTES);
        assert_eq!(ftl.unmap(7), Some(p1));
        assert!(ftl.is_empty());
    }

    #[test]
    fn coarse_ftl_translates_by_arithmetic() {
        let geom = Geometry::tiny();
        let mut alloc = PageAllocator::new(&geom);
        let emb = alloc.reserve(16).unwrap();
        let int8 = alloc.reserve(16).unwrap();
        let docs = alloc.reserve(32).unwrap();
        let mut rdb = CoarseFtl::new();
        rdb.deploy(DatabaseRecord {
            db_id: 1,
            embedding_region: emb,
            int8_region: int8,
            document_region: docs,
            entries: 100,
        })
        .unwrap();
        let a = rdb.embedding_page(&geom, 1, 0).unwrap();
        let b = rdb.embedding_page(&geom, 1, 1).unwrap();
        assert_ne!(a, b);
        assert_eq!(a, emb.page_at(&geom, 0).unwrap());
        assert_eq!(
            rdb.document_page(&geom, 1, 3).unwrap(),
            docs.page_at(&geom, 3).unwrap()
        );
        assert_eq!(
            rdb.int8_page(&geom, 1, 5).unwrap(),
            int8.page_at(&geom, 5).unwrap()
        );
        assert!(matches!(
            rdb.embedding_page(&geom, 1, 16),
            Err(SsdError::RegionOutOfBounds { .. })
        ));
        assert!(matches!(
            rdb.embedding_page(&geom, 9, 0),
            Err(SsdError::UnknownDatabase(9))
        ));
    }

    #[test]
    fn coarse_ftl_rejects_duplicate_ids_and_tracks_footprint() {
        let mut rdb = CoarseFtl::new();
        let record = DatabaseRecord {
            db_id: 2,
            embedding_region: StripedRegion { start: 0, len: 4 },
            int8_region: StripedRegion { start: 4, len: 4 },
            document_region: StripedRegion { start: 8, len: 8 },
            entries: 10,
        };
        rdb.deploy(record).unwrap();
        assert!(matches!(
            rdb.deploy(record),
            Err(SsdError::DatabaseAlreadyDeployed(2))
        ));
        assert_eq!(rdb.footprint_bytes(), COARSE_RECORD_BYTES);
        assert_eq!(rdb.record(2).unwrap().entries, 10);
        assert_eq!(rdb.iter().count(), 1);
        rdb.remove(2).unwrap();
        assert!(rdb.is_empty());
        assert!(matches!(rdb.remove(2), Err(SsdError::UnknownDatabase(2))));
    }

    #[test]
    fn coarse_addressing_saves_orders_of_magnitude_of_dram() {
        // The paper's example: a 1 TB database that needs ~1 GB of page-level
        // FTL collapses to a 21-byte record.
        let pages_1tb = (1u64 << 40) / (16 * 1024);
        let saving = coarse_ftl_saving(pages_1tb as usize);
        assert!(
            saving > 1e7,
            "saving factor {saving} should exceed ten million"
        );
    }
}
