//! Append segments: the out-of-place landing zone for inserted entries.
//!
//! NAND pages cannot be rewritten, so inserts never touch the densely
//! packed base region. Instead every insert batch programs *fresh* pages —
//! an ESP-SLC embedding run per touched cluster plus TLC INT8/document
//! pages — and records one [`SegmentEntry`] per appended entry in controller
//! DRAM. The per-cluster embedding runs are what the fine scan walks in
//! addition to the base region; the INT8 and document slots are what the
//! rerank and document-fetch phases follow for segment-resident candidates.
//! Compaction folds everything back into a new base region and resets the
//! store.

use serde::{Deserialize, Serialize};

use reis_ssd::StripedRegion;

/// Bytes of controller DRAM one segment entry occupies (id, cluster, three
/// slot references and the validity flag, conservatively padded).
pub const SEGMENT_ENTRY_BYTES: usize = 40;

/// One payload location inside a segment region: which region, which page
/// offset within it, and which slot within the page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRef {
    /// The striped region holding the payload.
    pub region: StripedRegion,
    /// Page offset within the region.
    pub page: usize,
    /// Slot index within the page.
    pub slot: usize,
}

/// One appended entry: where its three payloads live and whether it is
/// still alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentEntry {
    /// Stable logical id of the entry (its DADR).
    pub id: u32,
    /// IVF cluster the entry was assigned to (0 for flat databases).
    pub cluster: usize,
    /// Binary embedding location (ESP-SLC segment run).
    pub embedding: SlotRef,
    /// INT8 rerank copy location (TLC).
    pub int8: SlotRef,
    /// Document chunk location (TLC).
    pub document: SlotRef,
    /// Whether the entry was deleted (or superseded by an upsert) after it
    /// was appended. Flash cannot be updated in place, so this flag — not
    /// the OOB validity written at program time — is the live truth.
    pub deleted: bool,
}

impl SegmentEntry {
    /// A new live entry with unresolved payload locations (filled in by the
    /// writer once pages are programmed).
    pub fn new(id: u32, cluster: usize) -> Self {
        SegmentEntry {
            id,
            cluster,
            embedding: SlotRef::default(),
            int8: SlotRef::default(),
            document: SlotRef::default(),
            deleted: false,
        }
    }
}

/// The append segments of one database: the sid-indexed entry table, the
/// per-cluster embedding runs the scan must cover, and every flash region
/// the segments occupy (for release at compaction).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SegmentStore {
    entries: Vec<SegmentEntry>,
    /// Per-cluster embedding-run regions, in append order. Each run is a
    /// small ESP-SLC region whose OOB carries the linkage (and validity) of
    /// the entries it holds.
    cluster_runs: Vec<Vec<StripedRegion>>,
    /// Every region backing the segments — embedding runs plus INT8 and
    /// document pages — with the DRAM bookkeeping name it was reserved
    /// under, so compaction can release all of them.
    regions: Vec<(String, StripedRegion)>,
    live: usize,
}

impl SegmentStore {
    /// An empty store for a database with `clusters` clusters.
    pub fn new(clusters: usize) -> Self {
        SegmentStore {
            entries: Vec::new(),
            cluster_runs: vec![Vec::new(); clusters],
            regions: Vec::new(),
            live: 0,
        }
    }

    /// Number of entries ever appended (live and deleted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was ever appended.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of live (not deleted) entries.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Number of clusters the store tracks.
    pub fn clusters(&self) -> usize {
        self.cluster_runs.len()
    }

    /// Append an entry, returning its segment-entry index (sid).
    pub fn push(&mut self, entry: SegmentEntry) -> u32 {
        debug_assert!(entry.cluster < self.cluster_runs.len());
        let sid = self.entries.len() as u32;
        if !entry.deleted {
            self.live += 1;
        }
        self.entries.push(entry);
        sid
    }

    /// The entry at `sid`, if it exists.
    pub fn entry(&self, sid: u32) -> Option<&SegmentEntry> {
        self.entries.get(sid as usize)
    }

    /// All entries in append (sid) order.
    pub fn entries(&self) -> &[SegmentEntry] {
        &self.entries
    }

    /// Mark the entry at `sid` deleted, returning whether it was live.
    pub fn mark_deleted(&mut self, sid: u32) -> bool {
        match self.entries.get_mut(sid as usize) {
            Some(entry) if !entry.deleted => {
                entry.deleted = true;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Record a new embedding run for `cluster` (a region the fine scan of
    /// that cluster must cover).
    pub fn add_run(&mut self, cluster: usize, region: StripedRegion) {
        self.cluster_runs[cluster].push(region);
    }

    /// The embedding runs of `cluster`, in append order.
    pub fn runs(&self, cluster: usize) -> &[StripedRegion] {
        self.cluster_runs
            .get(cluster)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The embedding runs covering `clusters`, in the deterministic scan
    /// order: clusters in probe order, each cluster's runs in append order.
    /// This is the segment tail of the windowed adaptive scan's page list —
    /// the fixed page sequence that window barriers are measured against.
    pub fn ordered_runs<'a>(
        &'a self,
        clusters: &'a [usize],
    ) -> impl Iterator<Item = &'a StripedRegion> + 'a {
        clusters.iter().flat_map(move |&cluster| self.runs(cluster))
    }

    /// Total embedding-run pages covering `clusters` in scan order.
    pub fn ordered_run_pages(&self, clusters: &[usize]) -> usize {
        self.ordered_runs(clusters).map(|run| run.len).sum()
    }

    /// Total pages across the embedding runs of every cluster (the extra
    /// scan work mutations currently cost; one input to the compaction
    /// policy).
    pub fn run_pages(&self) -> usize {
        self.cluster_runs
            .iter()
            .flat_map(|runs| runs.iter())
            .map(|r| r.len)
            .sum()
    }

    /// Register a flash region backing the segments (embedding, INT8 or
    /// document pages) under its DRAM bookkeeping name.
    pub fn register_region(&mut self, name: String, region: StripedRegion) {
        self.regions.push((name, region));
    }

    /// Every registered region with its name (compaction releases these).
    pub fn regions(&self) -> &[(String, StripedRegion)] {
        &self.regions
    }

    /// Controller-DRAM footprint of the entry table in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.entries.len() * SEGMENT_ENTRY_BYTES
    }

    /// Drop everything and start over with `clusters` clusters (after a
    /// compaction folded the segments into the base region).
    pub fn reset(&mut self, clusters: usize) {
        self.entries.clear();
        self.cluster_runs.clear();
        self.cluster_runs.resize(clusters, Vec::new());
        self.regions.clear();
        self.live = 0;
    }
}

/// One contiguous page span of an embedding run, produced by windowing the
/// deterministic run order (see [`RunCursor`]): scan pages
/// `start..end` of `region`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSlice {
    /// The run region the span lives in.
    pub region: StripedRegion,
    /// First page offset of the span within the run.
    pub start: usize,
    /// One past the last page offset of the span within the run.
    pub end: usize,
}

impl RunSlice {
    /// Number of pages the span covers.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers no pages.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// A cursor over the deterministic segment-run page order of one scan,
/// handing out fixed page-count windows.
///
/// The windowed adaptive filter treats a scan's page list — base ranges
/// followed by the probed clusters' segment runs — as one sequence and only
/// tightens its threshold at fixed page-count barriers of that sequence.
/// `RunCursor` is the segment half of that: [`RunCursor::reset`] pins the
/// run order (clusters in probe order, runs in append order) and
/// [`RunCursor::take_into`] slices off up to a window's worth of pages at a
/// time, splitting windows across run boundaries as needed (a run shorter
/// than the window simply contributes all its pages and the window
/// continues into the next run).
///
/// The cursor owns its run list so it can be embedded in a reusable scan
/// scratch; `reset` keeps the allocations.
#[derive(Debug, Clone, Default)]
pub struct RunCursor {
    runs: Vec<StripedRegion>,
    run: usize,
    page: usize,
}

impl RunCursor {
    /// An empty cursor (no runs; [`RunCursor::is_done`] is immediately
    /// true).
    pub fn new() -> Self {
        RunCursor::default()
    }

    /// Re-point the cursor at the runs covering `clusters` of `store`, in
    /// scan order, rewinding to the first page. Allocations are reused.
    pub fn reset(&mut self, store: &SegmentStore, clusters: &[usize]) {
        self.runs.clear();
        self.runs.extend(store.ordered_runs(clusters).copied());
        self.run = 0;
        self.page = 0;
    }

    /// Whether every page of every run has been taken.
    pub fn is_done(&self) -> bool {
        self.runs[self.run..].iter().map(|r| r.len).sum::<usize>() <= self.page
    }

    /// Pages not yet taken.
    pub fn remaining_pages(&self) -> usize {
        let ahead: usize = self.runs[self.run..].iter().map(|r| r.len).sum();
        ahead - self.page.min(ahead)
    }

    /// Take up to `budget` pages off the front of the remaining run order,
    /// appending one [`RunSlice`] per maximal contiguous span to `out`, and
    /// return how many pages were taken (less than `budget` only when the
    /// runs are exhausted).
    pub fn take_into(&mut self, budget: usize, out: &mut Vec<RunSlice>) -> usize {
        let mut taken = 0usize;
        while taken < budget && self.run < self.runs.len() {
            let run = self.runs[self.run];
            let remaining = run.len - self.page;
            if remaining == 0 {
                self.run += 1;
                self.page = 0;
                continue;
            }
            let take = remaining.min(budget - taken);
            out.push(RunSlice {
                region: run,
                start: self.page,
                end: self.page + take,
            });
            taken += take;
            self.page += take;
            if self.page == run.len {
                self.run += 1;
                self.page = 0;
            }
        }
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_mark_and_count() {
        let mut store = SegmentStore::new(2);
        assert!(store.is_empty());
        let a = store.push(SegmentEntry::new(10, 0));
        let b = store.push(SegmentEntry::new(11, 1));
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.live_count(), 2);
        assert!(store.mark_deleted(a));
        assert!(!store.mark_deleted(a), "second delete is a no-op");
        assert!(!store.mark_deleted(99), "unknown sid is a no-op");
        assert_eq!(store.live_count(), 1);
        assert_eq!(store.entry(b).unwrap().id, 11);
        assert!(store.entry(a).unwrap().deleted);
        assert_eq!(store.footprint_bytes(), 2 * SEGMENT_ENTRY_BYTES);
    }

    #[test]
    fn ordered_runs_follow_probe_order() {
        let mut store = SegmentStore::new(3);
        let a = StripedRegion { start: 0, len: 2 };
        let b = StripedRegion { start: 2, len: 1 };
        let c = StripedRegion { start: 3, len: 4 };
        store.add_run(0, a);
        store.add_run(2, b);
        store.add_run(2, c);
        // Probe order 2-then-0: cluster 2's runs (append order) come first.
        let got: Vec<StripedRegion> = store.ordered_runs(&[2, 0]).copied().collect();
        assert_eq!(got, vec![b, c, a]);
        assert_eq!(store.ordered_run_pages(&[2, 0]), 7);
        assert_eq!(store.ordered_run_pages(&[1]), 0);
    }

    #[test]
    fn run_cursor_windows_split_across_runs() {
        let mut store = SegmentStore::new(2);
        // Runs of 2, 1 and 4 pages: a 3-page window must stitch the first
        // two runs together; a run shorter than the window never pads.
        store.add_run(0, StripedRegion { start: 0, len: 2 });
        store.add_run(0, StripedRegion { start: 2, len: 1 });
        store.add_run(1, StripedRegion { start: 3, len: 4 });
        let mut cursor = RunCursor::new();
        cursor.reset(&store, &[0, 1]);
        assert_eq!(cursor.remaining_pages(), 7);
        assert!(!cursor.is_done());

        let mut out = Vec::new();
        assert_eq!(cursor.take_into(3, &mut out), 3);
        assert_eq!(
            out,
            vec![
                RunSlice {
                    region: StripedRegion { start: 0, len: 2 },
                    start: 0,
                    end: 2
                },
                RunSlice {
                    region: StripedRegion { start: 2, len: 1 },
                    start: 0,
                    end: 1
                },
            ]
        );
        assert_eq!(cursor.remaining_pages(), 4);

        // A window bigger than what is left takes only the remainder; a
        // mid-run boundary leaves the cursor inside the run.
        out.clear();
        assert_eq!(cursor.take_into(3, &mut out), 3);
        assert_eq!(
            out,
            vec![RunSlice {
                region: StripedRegion { start: 3, len: 4 },
                start: 0,
                end: 3
            }]
        );
        out.clear();
        assert_eq!(cursor.take_into(10, &mut out), 1);
        assert_eq!(
            out,
            vec![RunSlice {
                region: StripedRegion { start: 3, len: 4 },
                start: 3,
                end: 4
            }]
        );
        assert!(cursor.is_done());
        assert_eq!(cursor.take_into(5, &mut out), 0);

        // Reset reuses the cursor for a different probe order.
        cursor.reset(&store, &[1]);
        assert_eq!(cursor.remaining_pages(), 4);
        let empty = RunCursor::new();
        assert!(empty.is_done());
        assert_eq!(empty.remaining_pages(), 0);
    }

    #[test]
    fn runs_and_regions_round_trip_and_reset() {
        let mut store = SegmentStore::new(3);
        let r1 = StripedRegion { start: 0, len: 2 };
        let r2 = StripedRegion { start: 2, len: 1 };
        store.add_run(1, r1);
        store.add_run(1, r2);
        store.register_region("db1/seg0/emb".into(), r1);
        store.register_region("db1/seg1/emb".into(), r2);
        assert_eq!(store.runs(1), &[r1, r2]);
        assert!(store.runs(0).is_empty());
        assert!(store.runs(9).is_empty(), "unknown cluster is empty");
        assert_eq!(store.run_pages(), 3);
        assert_eq!(store.regions().len(), 2);
        store.reset(1);
        assert!(store.is_empty());
        assert_eq!(store.clusters(), 1);
        assert_eq!(store.run_pages(), 0);
        assert!(store.regions().is_empty());
    }
}
