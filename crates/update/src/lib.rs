//! # reis-update — online index mutation for the REIS reproduction
//!
//! The paper evaluates a read-only retrieval pipeline: `DB_Deploy` lays a
//! corpus out once and every later operation is a search. A production
//! retrieval system must also *mutate* the index — accept new documents,
//! drop stale ones and replace changed ones — without pausing traffic for a
//! full rebuild. This crate holds the controller-DRAM state that makes that
//! possible on NAND flash, where data can never be updated in place:
//!
//! * **Append segments** ([`segment`]) — freshly inserted entries are
//!   appended, per IVF cluster, into small out-of-place segment regions
//!   (fresh pages programmed through the FTL's allocator, with the stable
//!   entry id, rescoring address and validity recorded in the OOB bytes,
//!   exactly like the base region's linkage). The fine scan covers base
//!   pages *and* live segment pages, so fresh entries are searchable
//!   immediately.
//! * **Tombstones** ([`tombstone`]) — deleting an entry cannot clear flash
//!   bits, so deletions are recorded in a DRAM validity bitmap over the base
//!   region (and a `deleted` flag on segment entries). The scan filters
//!   candidates against them.
//! * **Compaction** ([`policy`], executed by `reis-core`) — once segments
//!   and tombstones accumulate, a compaction pass rewrites the surviving
//!   corpus into densely packed cluster regions, releases the old regions
//!   and erases every block whose pages all became invalid, returning the
//!   space to the allocator.
//!
//! The flash I/O itself lives in `reis-core` (which owns the deployment
//! layout) and `reis-ssd` (allocator, block reclaim); this crate is the
//! bookkeeping those layers share. [`UpdateState`] bundles it per deployed
//! database.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod policy;
pub mod segment;
pub mod stats;
pub mod tombstone;

pub use policy::CompactionPolicy;
pub use segment::{RunCursor, RunSlice, SegmentEntry, SegmentStore, SlotRef};
pub use stats::MutationStats;
pub use tombstone::TombstoneSet;

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Sentinel RADR value marking an OOB slot of a segment page as invalid
/// (the slot is beyond the entries actually appended to the page). Written
/// at program time, so a scan can reject unfilled slots from the OOB bytes
/// alone.
pub const OOB_INVALID_RADR: u32 = u32::MAX;

/// Where the live version of a logical entry is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryLocation {
    /// In the base region, at the given storage-order index.
    Base(u32),
    /// In an append segment, at the given segment-entry index (sid).
    Segment(u32),
}

/// The complete mutation state of one deployed database: append segments,
/// the base-region tombstone bitmap, the id relocation table and the
/// mutation counters. Lives in controller DRAM next to the R-DB and R-IVF
/// records; its footprint is accounted there by `reis-core`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateState {
    /// Append segments of the database, one list per cluster.
    pub store: SegmentStore,
    /// Validity bitmap over the base region's storage-order indices.
    pub tombstones: TombstoneSet,
    /// Stable ids whose live version moved into a segment (upserts of base
    /// entries, and every plain insert), mapped to their segment-entry
    /// index.
    pub relocated: HashMap<u32, u32>,
    /// Document-slot mapping for base entries: `None` means the identity
    /// mapping of the original deployment (document chunk `id` lives in slot
    /// `id`); after a compaction the surviving ids are densely re-packed and
    /// this map records each id's new slot.
    pub doc_slots: Option<HashMap<u32, u32>>,
    /// Next stable id to assign to an inserted entry.
    pub next_id: u32,
    /// Number of storage-order slots in the base region. Segment entries are
    /// assigned storage indices (and RADR values) starting here, so one
    /// `u32` namespace covers both regions.
    pub base_capacity: u32,
    /// Mutation and compaction counters.
    pub stats: MutationStats,
    /// Compaction generation, used to give each rewritten region a unique
    /// DRAM bookkeeping name.
    pub generation: u64,
}

impl UpdateState {
    /// Fresh state for a database deployed with `base_entries` entries in
    /// `clusters` clusters (pass 1 for a flat deployment).
    pub fn new(base_entries: usize, clusters: usize) -> Self {
        UpdateState {
            store: SegmentStore::new(clusters.max(1)),
            tombstones: TombstoneSet::new(base_entries),
            relocated: HashMap::new(),
            doc_slots: None,
            next_id: base_entries as u32,
            base_capacity: base_entries as u32,
            stats: MutationStats::default(),
            generation: 0,
        }
    }

    /// Publish this state's shape into a telemetry handle: the
    /// segment-entry and tombstone gauges. Called by the owning system
    /// after every mutation/compaction; a no-op on a disabled handle.
    pub fn publish_telemetry(&self, telemetry: &reis_telemetry::Telemetry) {
        telemetry.gauge_set(
            reis_telemetry::GaugeId::SegmentEntries,
            self.store.len() as u64,
        );
        telemetry.gauge_set(
            reis_telemetry::GaugeId::Tombstones,
            self.tombstones.dead_count() as u64,
        );
    }

    /// Whether the database has no pending mutations (searches can take the
    /// base-region-only fast path).
    pub fn is_clean(&self) -> bool {
        self.store.is_empty() && self.tombstones.dead_count() == 0
    }

    /// Number of live logical entries (base survivors plus live segment
    /// entries).
    pub fn live_entries(&self, base_entries: usize) -> usize {
        base_entries - self.tombstones.dead_count() + self.store.live_count()
    }

    /// Where the live version of `id` resides, or `None` if the id was
    /// deleted or never existed. `base_lookup` maps a stable id to its base
    /// storage index, if the id was part of the base deployment.
    pub fn locate(
        &self,
        id: u32,
        base_lookup: impl Fn(u32) -> Option<u32>,
    ) -> Option<EntryLocation> {
        if let Some(&sid) = self.relocated.get(&id) {
            let entry = self.store.entry(sid)?;
            if entry.deleted {
                return None;
            }
            return Some(EntryLocation::Segment(sid));
        }
        let storage = base_lookup(id)?;
        if self.tombstones.contains(storage as usize) {
            return None;
        }
        Some(EntryLocation::Base(storage))
    }

    /// The document slot of a base entry with stable id `id` (identity
    /// before the first compaction, mapped afterwards).
    pub fn base_doc_slot(&self, id: u32) -> Option<u32> {
        match &self.doc_slots {
            None => Some(id),
            Some(map) => map.get(&id).copied(),
        }
    }

    /// Reset the state after a compaction folded everything into a new base
    /// region of `base_entries` entries: segments, tombstones and the
    /// relocation table empty out; `doc_slots` is replaced by the compacted
    /// document-slot mapping; id assignment continues where it left off.
    pub fn reset_after_compaction(
        &mut self,
        base_entries: usize,
        clusters: usize,
        doc_slots: HashMap<u32, u32>,
    ) {
        self.store.reset(clusters.max(1));
        self.tombstones = TombstoneSet::new(base_entries);
        self.relocated.clear();
        self.doc_slots = Some(doc_slots);
        self.base_capacity = base_entries as u32;
        self.generation += 1;
        self.stats.compactions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_routes_through_tombstones_and_relocations() {
        let mut state = UpdateState::new(10, 1);
        assert!(state.is_clean());
        assert_eq!(state.next_id, 10);
        assert_eq!(state.locate(3, Some), Some(EntryLocation::Base(3)));
        state.tombstones.mark(3);
        assert_eq!(state.locate(3, Some), None);
        assert_eq!(state.live_entries(10), 9);

        // An upserted id points at its live segment version.
        let sid = state.store.push(SegmentEntry::new(4, 0));
        state.relocated.insert(4, sid);
        state.tombstones.mark(4);
        assert_eq!(state.locate(4, Some), Some(EntryLocation::Segment(sid)));
        assert_eq!(state.live_entries(10), 9);
        // Deleting the segment version kills the id entirely.
        state.store.mark_deleted(sid);
        assert_eq!(state.locate(4, Some), None);
        assert!(!state.is_clean());
    }

    #[test]
    fn compaction_reset_starts_a_new_generation() {
        let mut state = UpdateState::new(8, 2);
        state.tombstones.mark(1);
        let sid = state.store.push(SegmentEntry::new(8, 1));
        state.relocated.insert(8, sid);
        state.next_id = 9;

        let mut slots = HashMap::new();
        for (slot, id) in [0u32, 2, 3, 4, 5, 6, 7, 8].iter().enumerate() {
            slots.insert(*id, slot as u32);
        }
        state.reset_after_compaction(8, 2, slots);
        assert!(state.is_clean());
        assert_eq!(state.generation, 1);
        assert_eq!(state.stats.compactions, 1);
        assert_eq!(state.next_id, 9, "id assignment continues");
        assert_eq!(state.base_doc_slot(2), Some(1));
        assert_eq!(state.base_doc_slot(1), None, "compacted-away id");
    }

    #[test]
    fn doc_slots_default_to_identity() {
        let state = UpdateState::new(5, 1);
        assert_eq!(state.base_doc_slot(4), Some(4));
    }
}
