//! Mutation and compaction counters.

use serde::{Deserialize, Serialize};

/// Running counters of every mutation a database served and of the
/// compaction work they triggered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutationStats {
    /// Entries inserted (including the insert half of upserts).
    pub inserts: u64,
    /// Entries deleted (including the delete half of upserts).
    pub deletes: u64,
    /// Upserts served.
    pub upserts: u64,
    /// Flash pages programmed by the append path (embedding, INT8 and
    /// document pages of every insert batch).
    pub segment_pages_programmed: u64,
    /// Compaction passes executed.
    pub compactions: u64,
    /// Pages rewritten by compaction passes (the write-amplification cost of
    /// folding segments back into dense regions).
    pub pages_rewritten: u64,
    /// Blocks erased by compaction passes because every programmed page in
    /// them had been invalidated.
    pub blocks_reclaimed: u64,
}

impl MutationStats {
    /// Total mutations served (inserts + deletes; upserts count one of
    /// each).
    pub fn mutations(&self) -> u64 {
        self.inserts + self.deletes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_sum_inserts_and_deletes() {
        let stats = MutationStats {
            inserts: 3,
            deletes: 2,
            upserts: 1,
            ..Default::default()
        };
        assert_eq!(stats.mutations(), 5);
    }
}
