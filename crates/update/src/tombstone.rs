//! Tombstones: the base-region validity bitmap.
//!
//! Deleting an entry cannot clear its flash pages — erases work on whole
//! blocks shared with live neighbours — so deletions are recorded as
//! *tombstones*: a DRAM bitmap over the base region's storage-order indices
//! that the fine scan consults before admitting a candidate to the Temporal
//! Top List. One bit per base slot keeps the footprint negligible next to
//! the R-IVF array (a 1M-entry database costs 128 KB).

use serde::{Deserialize, Serialize};

/// Validity bitmap over the base region's storage-order indices.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TombstoneSet {
    bits: Vec<u64>,
    capacity: usize,
    dead: usize,
}

impl TombstoneSet {
    /// A tombstone set over `capacity` storage-order slots, all live.
    pub fn new(capacity: usize) -> Self {
        TombstoneSet {
            bits: vec![0u64; capacity.div_ceil(64)],
            capacity,
            dead: 0,
        }
    }

    /// Number of storage-order slots covered.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tombstoned slots.
    pub fn dead_count(&self) -> usize {
        self.dead
    }

    /// Whether no slot is tombstoned.
    pub fn is_empty(&self) -> bool {
        self.dead == 0
    }

    /// Tombstone the slot at `index`, returning whether it was live before
    /// (marking an already-dead or out-of-range slot is a no-op).
    pub fn mark(&mut self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        let (word, bit) = (index / 64, index % 64);
        let mask = 1u64 << bit;
        if self.bits[word] & mask != 0 {
            return false;
        }
        self.bits[word] |= mask;
        self.dead += 1;
        true
    }

    /// Whether the slot at `index` is tombstoned (out-of-range slots read as
    /// live, matching the scan's bounds checks).
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        (self.bits[index / 64] >> (index % 64)) & 1 != 0
    }

    /// DRAM footprint of the bitmap in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let mut set = TombstoneSet::new(100);
        assert!(set.is_empty());
        assert!(set.mark(0));
        assert!(set.mark(63));
        assert!(set.mark(64));
        assert!(set.mark(99));
        assert!(!set.mark(0), "double delete is a no-op");
        assert!(!set.mark(100), "out of range is a no-op");
        assert_eq!(set.dead_count(), 4);
        assert!(set.contains(0) && set.contains(63) && set.contains(64) && set.contains(99));
        assert!(!set.contains(1));
        assert!(!set.contains(100));
        assert_eq!(set.capacity(), 100);
        assert_eq!(set.footprint_bytes(), 16);
    }

    #[test]
    fn empty_capacity_is_harmless() {
        let mut set = TombstoneSet::new(0);
        assert!(!set.mark(0));
        assert!(!set.contains(0));
        assert_eq!(set.footprint_bytes(), 0);
    }
}
