//! Compaction policy: when to fold segments back into the base region.
//!
//! Mutations make searches strictly more expensive — every live segment run
//! adds pages to the fine scan, and every tombstone is a slot scanned for
//! nothing — so the question is not *whether* to compact but *when*. The
//! policy triggers on either form of accumulated debt: too many appended
//! entries relative to the base region (scan amplification) or too many
//! dead slots (wasted scan work and held-back blocks).

use serde::{Deserialize, Serialize};

/// Thresholds that trigger an automatic compaction after a mutation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompactionPolicy {
    /// Compact when `segment entries / max(base entries, 1)` exceeds this
    /// fraction (scan-amplification bound). `f64::INFINITY` disables the
    /// trigger.
    pub max_segment_fraction: f64,
    /// Compact when `(tombstoned base slots + dead segment entries) /
    /// max(live entries, 1)` exceeds this fraction (dead-space bound).
    /// `f64::INFINITY` disables the trigger.
    pub max_dead_fraction: f64,
    /// Never auto-compact while the database holds fewer than this many
    /// accumulated mutations, so small bursts do not thrash rewrites.
    pub min_mutations: u64,
}

impl CompactionPolicy {
    /// The default automatic policy: compact once segments grow past half
    /// the base region or a quarter of the corpus is dead, but never before
    /// 64 mutations accumulated.
    pub fn auto() -> Self {
        CompactionPolicy {
            max_segment_fraction: 0.5,
            max_dead_fraction: 0.25,
            min_mutations: 64,
        }
    }

    /// Manual-only compaction: nothing ever triggers automatically.
    pub fn manual() -> Self {
        CompactionPolicy {
            max_segment_fraction: f64::INFINITY,
            max_dead_fraction: f64::INFINITY,
            min_mutations: u64::MAX,
        }
    }

    /// Whether a database with the given shape should be compacted now.
    pub fn should_compact(
        &self,
        base_entries: usize,
        segment_entries: usize,
        dead_entries: usize,
        live_entries: usize,
        mutations: u64,
    ) -> bool {
        if mutations < self.min_mutations {
            return false;
        }
        let segment_fraction = segment_entries as f64 / base_entries.max(1) as f64;
        let dead_fraction = dead_entries as f64 / live_entries.max(1) as f64;
        segment_fraction > self.max_segment_fraction || dead_fraction > self.max_dead_fraction
    }
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_policy_triggers_on_either_form_of_debt() {
        let policy = CompactionPolicy::auto();
        // Too few mutations: never.
        assert!(!policy.should_compact(100, 80, 80, 100, 63));
        // Segment amplification.
        assert!(policy.should_compact(100, 51, 0, 151, 64));
        assert!(!policy.should_compact(100, 50, 0, 150, 64));
        // Dead space.
        assert!(policy.should_compact(100, 0, 26, 100, 64));
        assert!(!policy.should_compact(100, 0, 25, 100, 64));
    }

    #[test]
    fn manual_policy_never_triggers() {
        let policy = CompactionPolicy::manual();
        assert!(!policy.should_compact(1, 1000, 1000, 1, u64::MAX - 1));
    }
}
