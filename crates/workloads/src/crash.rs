//! Deterministic crash-point schedules for fault-injection testing.
//!
//! A crash-recovery property ("recovery from *any* crash point yields the
//! durable prefix") is quantified over every byte offset at which power
//! could be lost. Exhaustively testing each of the millions of offsets in
//! a realistic write stream is too slow, and sampling them ad hoc is not
//! reproducible — so this module generates *schedules*: small, seeded,
//! deterministic sets of crash points that always cover the structurally
//! interesting offsets (the stream edges and caller-supplied boundaries
//! such as per-operation write marks, where torn frames straddle record
//! framing) plus pseudo-random interior points for the unstructured bulk.
//! The same `(total_bytes, samples, seed)` always yields the same
//! schedule, so a failing crash point can be replayed exactly.

use reis_persist::splitmix64;

/// A sorted, deduplicated set of byte-granular crash points over a write
/// stream of `total_bytes` bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSchedule {
    total_bytes: u64,
    points: Vec<u64>,
}

impl CrashSchedule {
    /// A schedule covering `[0, total_bytes]`: the stream edges (`0`, `1`,
    /// `total_bytes - 1`, `total_bytes`) plus `samples` seeded interior
    /// points. A crash point `p` means "the write stream dies after
    /// exactly `p` surviving bytes" — `0` is power loss before anything
    /// landed, `total_bytes` is no crash at all (included on purpose: the
    /// property must also hold trivially at the far edge).
    pub fn covering(total_bytes: u64, samples: usize, seed: u64) -> Self {
        let mut points = vec![
            0,
            1.min(total_bytes),
            total_bytes.saturating_sub(1),
            total_bytes,
        ];
        let mut state = seed ^ 0xC4A5_11FE_0000_0000;
        if total_bytes > 1 {
            for _ in 0..samples {
                points.push(splitmix64(&mut state) % (total_bytes + 1));
            }
        }
        CrashSchedule {
            total_bytes,
            points,
        }
        .normalised()
    }

    /// Add boundary-adjacent points: for each boundary `b` (for example the
    /// cumulative bytes written after each operation of a trace), the
    /// points `b - 1`, `b` and `b + 1`, clamped to the stream. A crash one
    /// byte short of a boundary is the canonical torn-tail case; exactly on
    /// it the canonical clean-prefix case.
    pub fn with_boundaries(mut self, boundaries: &[u64]) -> Self {
        for &b in boundaries {
            let b = b.min(self.total_bytes);
            self.points.push(b.saturating_sub(1));
            self.points.push(b);
            self.points.push((b + 1).min(self.total_bytes));
        }
        self.normalised()
    }

    fn normalised(mut self) -> Self {
        self.points.sort_unstable();
        self.points.dedup();
        self
    }

    /// The crash points, ascending.
    pub fn points(&self) -> &[u64] {
        &self.points
    }

    /// The write-stream length the schedule covers.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of scheduled crash points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the schedule is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Per-leaf crash points for a scale-out cluster: one [`CrashSchedule`]
/// over each leaf's own write stream, derived from one seed so a failing
/// `(leaf, point)` pair replays exactly. A cluster crash property is
/// quantified over *which* leaf dies as well as where in its stream — the
/// other leaves' durable state must be unaffected by the victim's torn
/// tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafCrashSchedule {
    schedules: Vec<CrashSchedule>,
}

impl LeafCrashSchedule {
    /// A schedule per leaf, covering each leaf's `[0, leaf_totals[l]]`
    /// stream with `samples` seeded interior points (the per-leaf seed is
    /// derived from `seed` and the leaf index).
    pub fn covering(leaf_totals: &[u64], samples: usize, seed: u64) -> Self {
        LeafCrashSchedule {
            schedules: leaf_totals
                .iter()
                .enumerate()
                .map(|(leaf, &total)| {
                    let mut state = seed ^ (leaf as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let leaf_seed = splitmix64(&mut state);
                    CrashSchedule::covering(total, samples, leaf_seed)
                })
                .collect(),
        }
    }

    /// Add boundary-adjacent points (see [`CrashSchedule::with_boundaries`])
    /// to one leaf's schedule.
    pub fn with_boundaries(mut self, leaf: usize, boundaries: &[u64]) -> Self {
        let schedule =
            std::mem::replace(&mut self.schedules[leaf], CrashSchedule::covering(0, 0, 0));
        self.schedules[leaf] = schedule.with_boundaries(boundaries);
        self
    }

    /// The schedule of one leaf.
    pub fn leaf(&self, leaf: usize) -> &CrashSchedule {
        &self.schedules[leaf]
    }

    /// Number of leaves covered.
    pub fn num_leaves(&self) -> usize {
        self.schedules.len()
    }

    /// Every `(leaf, crash point)` pair, leaf-major.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.schedules
            .iter()
            .enumerate()
            .flat_map(|(leaf, schedule)| schedule.points().iter().map(move |&p| (leaf, p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_sorted() {
        let a = CrashSchedule::covering(10_000, 16, 7);
        let b = CrashSchedule::covering(10_000, 16, 7);
        assert_eq!(a, b, "same inputs, same schedule");
        let c = CrashSchedule::covering(10_000, 16, 8);
        assert_ne!(a, c, "different seed, different interior points");

        assert!(
            a.points().windows(2).all(|w| w[0] < w[1]),
            "sorted, deduped"
        );
        assert_eq!(a.total_bytes(), 10_000);
        assert!(!a.is_empty());
    }

    #[test]
    fn edges_and_boundaries_are_always_covered() {
        let schedule =
            CrashSchedule::covering(5_000, 8, 3).with_boundaries(&[100, 2_500, 4_999, 7_777]);
        let points = schedule.points();
        for expected in [0, 1, 99, 100, 101, 2_499, 2_500, 2_501, 4_998, 4_999, 5_000] {
            assert!(points.contains(&expected), "missing point {expected}");
        }
        // Boundaries beyond the stream clamp to its end instead of escaping.
        assert!(points.iter().all(|&p| p <= 5_000));
        assert_eq!(schedule.len(), points.len());
    }

    #[test]
    fn degenerate_streams_do_not_panic_or_escape() {
        let empty = CrashSchedule::covering(0, 8, 1);
        assert_eq!(empty.points(), &[0]);
        let one = CrashSchedule::covering(1, 8, 1);
        assert_eq!(one.points(), &[0, 1]);
    }

    #[test]
    fn leaf_schedules_are_deterministic_and_leaf_distinct() {
        let totals = [4_000u64, 4_000, 900];
        let a = LeafCrashSchedule::covering(&totals, 6, 11);
        let b = LeafCrashSchedule::covering(&totals, 6, 11);
        assert_eq!(a, b, "same inputs, same per-leaf schedules");
        assert_eq!(a.num_leaves(), 3);
        // Equal stream lengths still get distinct interior points per leaf.
        assert_ne!(
            a.leaf(0).points(),
            a.leaf(1).points(),
            "per-leaf seeds must differ"
        );
        // Every pair stays inside its own leaf's stream.
        for (leaf, point) in a.pairs() {
            assert!(point <= totals[leaf]);
        }
        let with = a.clone().with_boundaries(2, &[123]);
        for expected in [122, 123, 124] {
            assert!(with.leaf(2).points().contains(&expected));
        }
        assert_eq!(with.leaf(0), a.leaf(0), "other leaves untouched");
    }
}
