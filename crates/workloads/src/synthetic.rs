//! Seeded synthetic dataset generation.
//!
//! The generator produces clustered embeddings whose structure mimics what
//! dense text-embedding corpora look like to an ANNS index: a set of latent
//! topic centroids, per-entry Gaussian-ish jitter around its topic, and
//! queries drawn near existing entries (so every query has well-defined
//! relevant neighbors). Documents are synthetic text chunks of the profile's
//! average size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::profile::DatasetProfile;

/// A generated dataset: embeddings, queries and document chunks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticDataset {
    profile: DatasetProfile,
    vectors: Vec<Vec<f32>>,
    queries: Vec<Vec<f32>>,
    documents: Vec<Vec<u8>>,
    latent_cluster: Vec<usize>,
}

impl SyntheticDataset {
    /// Generate a dataset for `profile` with the given seed.
    ///
    /// The scaled entry count, query count, dimensionality and latent cluster
    /// count all come from the profile; the same seed always produces the
    /// same data.
    pub fn generate(profile: DatasetProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = profile.scaled_entries;
        let dim = profile.dim;
        // Fewer latent topics than IVF cells: an IVF index built with
        // `scaled_nlist` cells then has to split topics across cells, which
        // is what gives real corpora their recall-versus-nprobe trade-off.
        let clusters = (profile.scaled_nlist / 8).max(4);

        // Latent topic centroids.
        let centers: Vec<Vec<f32>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-0.5f32..0.5)).collect())
            .collect();

        let mut vectors = Vec::with_capacity(n);
        let mut latent_cluster = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % clusters;
            latent_cluster.push(c);
            // Per-entry spread: some entries sit close to their topic
            // centroid, others drift towards neighbouring topics, which is
            // what makes the recall-versus-nprobe trade-off of real corpora
            // appear (neighbours are not always in the query's own cluster).
            let spread = rng.gen_range(0.5f32..1.5);
            let v: Vec<f32> = centers[c]
                .iter()
                .map(|&x| x + spread * rng.gen_range(-0.5f32..0.5))
                .collect();
            vectors.push(v);
        }

        // Queries: perturbations of existing entries, so ground truth is
        // meaningful and every query has close neighbors. The perturbation is
        // sized so a query's exact neighbors often straddle cluster
        // boundaries, giving IVF a realistic recall-versus-nprobe trade-off.
        let queries: Vec<Vec<f32>> = (0..profile.queries)
            .map(|q| {
                let base = &vectors[(q * 7919) % n];
                base.iter()
                    .map(|&x| x + rng.gen_range(-0.35f32..0.35))
                    .collect()
            })
            .collect();

        // Documents: synthetic text of roughly the profile's chunk size.
        let documents: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                let mut text = format!("[{name} chunk {i}] ", name = profile.name,);
                let filler =
                    "retrieval augmented generation feeds external knowledge into the model. ";
                while text.len() < profile.doc_bytes.max(32) {
                    text.push_str(filler);
                }
                text.truncate(profile.doc_bytes.max(32));
                text.into_bytes()
            })
            .collect();

        SyntheticDataset {
            profile,
            vectors,
            queries,
            documents,
            latent_cluster,
        }
    }

    /// The profile this dataset was generated from.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// Number of database entries.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Database embeddings.
    pub fn vectors(&self) -> &[Vec<f32>] {
        &self.vectors
    }

    /// Evaluation queries.
    pub fn queries(&self) -> &[Vec<f32>] {
        &self.queries
    }

    /// Document chunks, aligned with [`SyntheticDataset::vectors`].
    pub fn documents(&self) -> &[Vec<u8>] {
        &self.documents
    }

    /// Latent topic of every entry (useful for checking that indexes keep
    /// topical neighbors together).
    pub fn latent_cluster(&self) -> &[usize] {
        &self.latent_cluster
    }

    /// Clone the documents (convenience for APIs that take ownership).
    pub fn documents_owned(&self) -> Vec<Vec<u8>> {
        self.documents.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reis_ann::distance::squared_l2;

    #[test]
    fn generation_is_deterministic_and_matches_profile() {
        let profile = DatasetProfile::hotpotqa().scaled(500).with_queries(8);
        let a = SyntheticDataset::generate(profile.clone(), 42);
        let b = SyntheticDataset::generate(profile, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert_eq!(a.queries().len(), 8);
        assert_eq!(a.vectors()[0].len(), 1024);
        assert_eq!(a.documents().len(), 500);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let profile = DatasetProfile::nq().scaled(100);
        let a = SyntheticDataset::generate(profile.clone(), 1);
        let b = SyntheticDataset::generate(profile, 2);
        assert_ne!(a.vectors()[0], b.vectors()[0]);
    }

    #[test]
    fn entries_cluster_around_latent_topics() {
        let profile = DatasetProfile::quora().scaled(400);
        let data = SyntheticDataset::generate(profile, 7);
        // Entries of the same latent topic are closer than entries of
        // different topics, on average over many pairs.
        let clusters = data.latent_cluster();
        let mut same_sum = 0.0f64;
        let mut same_n = 0usize;
        let mut diff_sum = 0.0f64;
        let mut diff_n = 0usize;
        for i in 0..100 {
            for j in (i + 1)..100 {
                let d = squared_l2(&data.vectors()[i], &data.vectors()[j]) as f64;
                if clusters[i] == clusters[j] {
                    same_sum += d;
                    same_n += 1;
                } else {
                    diff_sum += d;
                    diff_n += 1;
                }
            }
        }
        let same_avg = same_sum / same_n.max(1) as f64;
        let diff_avg = diff_sum / diff_n.max(1) as f64;
        assert!(
            same_avg < diff_avg,
            "intra-topic {same_avg} vs inter-topic {diff_avg}"
        );
    }

    #[test]
    fn documents_have_the_requested_size_and_identify_their_entry() {
        let profile = DatasetProfile::wiki_en().scaled(50);
        let data = SyntheticDataset::generate(profile, 3);
        assert_eq!(data.documents()[7].len(), data.profile().doc_bytes);
        let text = String::from_utf8(data.documents()[7].clone()).unwrap();
        assert!(text.contains("chunk 7"));
        assert_eq!(data.documents_owned().len(), 50);
    }

    #[test]
    fn queries_are_near_existing_entries() {
        let profile = DatasetProfile::fever().scaled(300).with_queries(5);
        let data = SyntheticDataset::generate(profile, 9);
        for query in data.queries() {
            let nearest = data
                .vectors()
                .iter()
                .map(|v| squared_l2(v, query))
                .fold(f32::INFINITY, f32::min);
            assert!(
                nearest < 100.0,
                "query should have a close neighbor, got {nearest}"
            );
        }
    }
}
