//! Exact ground truth and recall evaluation for generated datasets.

use serde::{Deserialize, Serialize};

use reis_ann::flat::FlatIndex;
use reis_ann::metrics::recall_at_k;
use reis_ann::{Metric, Result};

use crate::synthetic::SyntheticDataset;

/// Exact top-k neighbors of every query of a dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    k: usize,
    neighbors: Vec<Vec<usize>>,
}

impl GroundTruth {
    /// Compute the exact top-`k` neighbors of every query by exhaustive
    /// search.
    ///
    /// # Errors
    ///
    /// Propagates index-construction errors (e.g. an empty dataset).
    pub fn compute(dataset: &SyntheticDataset, k: usize) -> Result<Self> {
        let index = FlatIndex::new(dataset.vectors().to_vec(), Metric::SquaredL2)?;
        let neighbors = dataset
            .queries()
            .iter()
            .map(|q| Ok(index.search(q, k)?.into_iter().map(|n| n.id).collect()))
            .collect::<Result<Vec<Vec<usize>>>>()?;
        Ok(GroundTruth { k, neighbors })
    }

    /// The `k` this ground truth was computed for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Exact neighbors of query `q`.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.neighbors[q]
    }

    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the ground truth covers no queries.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Mean Recall@k of a batch of retrieved id lists (one per query, in the
    /// same order as the dataset's queries).
    ///
    /// # Panics
    ///
    /// Panics if `retrieved` does not have one entry per query.
    pub fn mean_recall(&self, retrieved: &[Vec<usize>]) -> f64 {
        assert_eq!(
            retrieved.len(),
            self.neighbors.len(),
            "one result list per query required"
        );
        if retrieved.is_empty() {
            return 0.0;
        }
        retrieved
            .iter()
            .zip(self.neighbors.iter())
            .map(|(got, truth)| recall_at_k(got, truth, self.k))
            .sum::<f64>()
            / retrieved.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DatasetProfile;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetProfile::nq().scaled(300).with_queries(6), 11)
    }

    #[test]
    fn ground_truth_has_one_list_per_query() {
        let data = dataset();
        let truth = GroundTruth::compute(&data, 10).unwrap();
        assert_eq!(truth.len(), 6);
        assert_eq!(truth.k(), 10);
        assert_eq!(truth.neighbors(0).len(), 10);
        assert!(!truth.is_empty());
    }

    #[test]
    fn perfect_retrieval_scores_recall_one() {
        let data = dataset();
        let truth = GroundTruth::compute(&data, 5).unwrap();
        let perfect: Vec<Vec<usize>> = (0..truth.len())
            .map(|q| truth.neighbors(q).to_vec())
            .collect();
        assert_eq!(truth.mean_recall(&perfect), 1.0);
        let empty: Vec<Vec<usize>> = vec![vec![]; truth.len()];
        assert_eq!(truth.mean_recall(&empty), 0.0);
    }

    #[test]
    #[should_panic(expected = "one result list per query")]
    fn mismatched_batch_sizes_panic() {
        let data = dataset();
        let truth = GroundTruth::compute(&data, 5).unwrap();
        truth.mean_recall(&[vec![1, 2, 3]]);
    }
}
