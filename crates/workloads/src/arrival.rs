//! Seeded arrival traces for the async request pipeline.
//!
//! The pipeline benchmark and the scheduler determinism gate both need an
//! open-loop arrival process that is **exactly reproducible** from a seed:
//! the pipeline runs on virtual time, so the trace *is* the experiment.
//! Inter-arrival gaps are drawn from an exponential distribution (a Poisson
//! process at a configured offered load) using a splitmix64 generator, the
//! same primitive the synthetic dataset generator uses.
//!
//! Timestamps are virtual nanoseconds; nothing here reads a wall clock.

/// One request arrival: when it lands and which query it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Virtual arrival time in nanoseconds since the start of the trace.
    pub at_ns: u64,
    /// Index into the caller's query set (wraps modulo the set size).
    pub query_index: usize,
}

/// A deterministic open-loop arrival trace.
///
/// ```
/// use reis_workloads::ArrivalTrace;
///
/// let a = ArrivalTrace::poisson(50_000.0, 2_000, 16, 7);
/// let b = ArrivalTrace::poisson(50_000.0, 2_000, 16, 7);
/// assert_eq!(a.events(), b.events());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalTrace {
    events: Vec<ArrivalEvent>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in (0, 1]; never returns 0 so `ln` stays finite.
fn unit_open(state: &mut u64) -> f64 {
    let bits = splitmix64(state) >> 11; // 53 significant bits
    (bits as f64 + 1.0) / (1u64 << 53) as f64
}

impl ArrivalTrace {
    /// Build a Poisson arrival trace.
    ///
    /// * `offered_qps` — target arrival rate in queries per second (> 0).
    /// * `duration_us` — trace length in virtual microseconds; arrivals past
    ///   this horizon are dropped.
    /// * `num_queries` — size of the query set that `query_index` wraps over.
    /// * `seed` — generator seed; equal seeds give byte-equal traces.
    ///
    /// Exponential inter-arrival gaps are rounded to whole nanoseconds with a
    /// floor of 1 ns so every event has a distinct, monotone timestamp.
    pub fn poisson(offered_qps: f64, duration_us: u64, num_queries: usize, seed: u64) -> Self {
        assert!(offered_qps > 0.0, "offered_qps must be positive");
        assert!(num_queries > 0, "num_queries must be positive");
        let mean_gap_ns = 1.0e9 / offered_qps;
        let horizon_ns = duration_us.saturating_mul(1_000);
        let mut state = seed ^ 0xD1B5_4A32_D192_ED03;
        let mut clock_ns = 0u64;
        let mut events = Vec::new();
        loop {
            let gap = (-unit_open(&mut state).ln() * mean_gap_ns).round() as u64;
            clock_ns = clock_ns.saturating_add(gap.max(1));
            if clock_ns > horizon_ns {
                break;
            }
            let query_index = (splitmix64(&mut state) as usize) % num_queries;
            events.push(ArrivalEvent {
                at_ns: clock_ns,
                query_index,
            });
        }
        Self { events }
    }

    /// The arrivals in timestamp order.
    pub fn events(&self) -> &[ArrivalEvent] {
        &self.events
    }

    /// Number of arrivals inside the horizon.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the horizon was too short for a single arrival.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let a = ArrivalTrace::poisson(100_000.0, 5_000, 32, 42);
        let b = ArrivalTrace::poisson(100_000.0, 5_000, 32, 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = ArrivalTrace::poisson(100_000.0, 5_000, 32, 1);
        let b = ArrivalTrace::poisson(100_000.0, 5_000, 32, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn timestamps_are_strictly_monotone_and_bounded() {
        let trace = ArrivalTrace::poisson(200_000.0, 2_000, 8, 9);
        let mut prev = 0u64;
        for event in trace.events() {
            assert!(event.at_ns > prev, "timestamps must strictly increase");
            assert!(event.at_ns <= 2_000_000, "event past the horizon");
            assert!(event.query_index < 8);
            prev = event.at_ns;
        }
    }

    #[test]
    fn rate_is_roughly_honoured() {
        // 100k QPS over 10ms → ~1000 arrivals; allow generous slack since the
        // assertion only guards against unit mistakes (ms vs ns), not variance.
        let trace = ArrivalTrace::poisson(100_000.0, 10_000, 4, 3);
        assert!(trace.len() > 500, "got {}", trace.len());
        assert!(trace.len() < 2_000, "got {}", trace.len());
    }
}
