//! Deterministic leaf-fault scenarios for cluster fault-injection testing.
//!
//! The crash module ([`crate::crash`]) quantifies *where a write stream
//! dies*; this module quantifies *which leaf calls fail*. A
//! [`FaultScenario`] is a plain description — seed, transient rates,
//! permanent kills — that `reis-cluster` turns into its seeded `FaultPlan`
//! (this crate deliberately stays description-only, like the crash
//! schedules, so it pulls in no cluster machinery). The same scenario
//! always produces the same fault trace, so a failing schedule replays
//! exactly.
//!
//! [`FaultScenario::covering`] generates the structurally interesting
//! family for a given cluster shape: the healthy baseline (the
//! retry-machinery-overhead case), transient-only churn at escalating
//! rates, single permanent kills at seeded call indices (the failover
//! case), and one whole-replica-group kill (the forced-degradation case).

use reis_persist::splitmix64;

/// Rates are parts-per-million of leaf calls.
const PPM_SCALE: u64 = 1_000_000;

/// A seeded, deterministic description of the faults one cluster run
/// injects at the aggregator→leaf call boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultScenario {
    /// Seed of the per-call fault draws.
    pub seed: u64,
    /// Transient fail-fast rate in parts per million of leaf calls.
    pub fail_ppm: u32,
    /// Timeout rate in parts per million of leaf calls.
    pub timeout_ppm: u32,
    /// Permanent kills as `(leaf, nth_call)`: the leaf answers unavailable
    /// from its `nth_call`th call (0-based) onward until revived.
    pub kills: Vec<(usize, u64)>,
}

impl FaultScenario {
    /// The no-fault baseline.
    pub fn healthy() -> Self {
        FaultScenario {
            seed: 0,
            fail_ppm: 0,
            timeout_ppm: 0,
            kills: Vec::new(),
        }
    }

    /// Transient-only churn: seeded fail-fast and timeout rates, no kills.
    ///
    /// # Panics
    ///
    /// When the two rates together exceed one million ppm.
    pub fn transient(seed: u64, fail_ppm: u32, timeout_ppm: u32) -> Self {
        assert!(
            u64::from(fail_ppm) + u64::from(timeout_ppm) <= PPM_SCALE,
            "fault rates exceed {PPM_SCALE} ppm"
        );
        FaultScenario {
            seed,
            fail_ppm,
            timeout_ppm,
            kills: Vec::new(),
        }
    }

    /// Add a permanent kill of `leaf` at its `nth_call`th call (chainable).
    pub fn with_kill(mut self, leaf: usize, nth_call: u64) -> Self {
        self.kills.push((leaf, nth_call));
        self
    }

    /// Leaves this scenario kills permanently, in kill order.
    pub fn killed_leaves(&self) -> Vec<usize> {
        self.kills.iter().map(|&(leaf, _)| leaf).collect()
    }

    /// Whether the scenario kills every replica of some shard under a
    /// shard-major layout (`replication` leaves per group) — the shape
    /// that forces explicitly degraded answers once retries drain.
    pub fn kills_whole_group(&self, replication: usize) -> bool {
        if replication == 0 {
            return false;
        }
        let killed = self.killed_leaves();
        let mut shards: Vec<usize> = killed.iter().map(|&leaf| leaf / replication).collect();
        shards.sort_unstable();
        shards.dedup();
        shards.iter().any(|&shard| {
            (shard * replication..(shard + 1) * replication).all(|leaf| killed.contains(&leaf))
        })
    }

    /// The structurally interesting scenario family for a cluster of
    /// `num_leaves` physical leaves in replica groups of `replication`:
    ///
    /// 1. the healthy baseline (always first),
    /// 2. transient-only churn at escalating rates,
    /// 3. two single-leaf permanent kills at seeded call indices,
    /// 4. one whole-replica-group kill (guaranteed degradation).
    ///
    /// The same `(num_leaves, replication, seed)` always yields the same
    /// scenarios.
    ///
    /// # Panics
    ///
    /// When `num_leaves` is zero, `replication` is zero, or `replication`
    /// does not divide `num_leaves`.
    pub fn covering(num_leaves: usize, replication: usize, seed: u64) -> Vec<FaultScenario> {
        assert!(
            num_leaves > 0 && replication > 0 && num_leaves.is_multiple_of(replication),
            "{num_leaves} leaves do not divide into replica groups of {replication}"
        );
        let mut state = seed ^ 0xFA17_5CED_0000_0000;
        let mut scenarios = vec![FaultScenario::healthy()];
        for rate in [5_000u32, 50_000, 200_000] {
            let scenario_seed = splitmix64(&mut state);
            scenarios.push(FaultScenario::transient(scenario_seed, rate, rate / 2));
        }
        for _ in 0..2 {
            let scenario_seed = splitmix64(&mut state);
            let leaf = (splitmix64(&mut state) % num_leaves as u64) as usize;
            let nth_call = splitmix64(&mut state) % 32;
            scenarios.push(
                FaultScenario::transient(scenario_seed, 20_000, 10_000).with_kill(leaf, nth_call),
            );
        }
        let scenario_seed = splitmix64(&mut state);
        let shard = (splitmix64(&mut state) % (num_leaves / replication) as u64) as usize;
        let mut group_kill = FaultScenario::transient(scenario_seed, 0, 0);
        for leaf in shard * replication..(shard + 1) * replication {
            let nth_call = splitmix64(&mut state) % 32;
            group_kill = group_kill.with_kill(leaf, nth_call);
        }
        scenarios.push(group_kill);
        scenarios
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_is_deterministic_and_leads_with_healthy() {
        let a = FaultScenario::covering(6, 2, 42);
        let b = FaultScenario::covering(6, 2, 42);
        assert_eq!(a, b, "same inputs, same scenarios");
        assert_eq!(a[0], FaultScenario::healthy());
        let c = FaultScenario::covering(6, 2, 43);
        assert_ne!(a, c, "different seed, different scenarios");
        // Rates stay within a million ppm; kills stay within the cluster.
        for scenario in &a {
            assert!(u64::from(scenario.fail_ppm) + u64::from(scenario.timeout_ppm) <= 1_000_000);
            for &(leaf, _) in &scenario.kills {
                assert!(leaf < 6);
            }
        }
    }

    #[test]
    fn covering_ends_with_a_whole_group_kill() {
        for (num_leaves, replication) in [(4usize, 1usize), (6, 2), (9, 3)] {
            let scenarios = FaultScenario::covering(num_leaves, replication, 7);
            let last = scenarios.last().unwrap();
            assert!(
                last.kills_whole_group(replication),
                "{num_leaves}/{replication}: final scenario must force degradation"
            );
            assert_eq!(last.kills.len(), replication);
            // No earlier scenario kills a whole group.
            for scenario in &scenarios[..scenarios.len() - 1] {
                assert!(
                    scenario.kills.len() < replication
                        || replication == 1
                        || !scenario.kills_whole_group(replication)
                        || scenario.kills.is_empty()
                );
            }
        }
    }

    #[test]
    fn group_kill_detection_is_exact() {
        assert!(!FaultScenario::healthy().kills_whole_group(2));
        let partial = FaultScenario::healthy().with_kill(2, 0);
        assert!(
            !partial.kills_whole_group(2),
            "half a group is failover, not degradation"
        );
        let full = partial.with_kill(3, 5);
        assert!(
            full.kills_whole_group(2),
            "leaves 2 and 3 are shard 1's whole group"
        );
        assert!(
            !full.kills_whole_group(4),
            "same kills, wider groups: not a whole group"
        );
        let flat = FaultScenario::healthy().with_kill(1, 0);
        assert!(
            flat.kills_whole_group(1),
            "R = 1: any kill degrades its shard"
        );
    }
}
