//! Dataset profiles of the evaluation workloads.
//!
//! The paper evaluates REIS on two BEIR datasets (NQ, HotpotQA), a public
//! Wikipedia-based corpus (wiki_en and its multilingual superset wiki_full),
//! and — for the NDSearch comparison — the billion-scale SIFT-1B and DEEP-1B
//! collections. This reproduction cannot ship those corpora, so each profile
//! records (i) the *full-scale* parameters used by the analytic I/O and
//! baseline models (entry counts, embedding dimensionality, on-disk bytes)
//! and (ii) a *scaled* entry count used when a functional search has to run
//! on synthetic data. Both scales are reported by every benchmark.

use serde::{Deserialize, Serialize};

/// Description of one evaluation dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper's figures.
    pub name: String,
    /// Number of entries in the full-scale dataset.
    pub full_entries: u64,
    /// Number of entries generated for functional (synthetic) runs.
    pub scaled_entries: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Number of IVF clusters used at full scale (`nlist`; the paper uses
    /// 16384 for wiki-scale corpora).
    pub full_nlist: usize,
    /// Number of latent clusters baked into the synthetic generator (and
    /// used as `nlist` for scaled IVF runs).
    pub scaled_nlist: usize,
    /// Average document-chunk size in bytes.
    pub doc_bytes: usize,
    /// Number of evaluation queries to generate.
    pub queries: usize,
    /// Average number of relevant documents per query in the original
    /// retrieval task (drives the distance-filtering study of Sec. 4.3.3).
    pub relevant_per_query: f64,
}

impl DatasetProfile {
    fn new(
        name: &str,
        full_entries: u64,
        dim: usize,
        full_nlist: usize,
        doc_bytes: usize,
        relevant_per_query: f64,
    ) -> Self {
        DatasetProfile {
            name: name.to_string(),
            full_entries,
            scaled_entries: 4_096,
            dim,
            full_nlist,
            scaled_nlist: 256,
            doc_bytes,
            queries: 16,
            relevant_per_query,
        }
    }

    /// The BEIR Natural Questions corpus (~2.68 M passages).
    pub fn nq() -> Self {
        Self::new("NQ", 2_681_468, 1024, 4096, 2200, 1.2)
    }

    /// The BEIR HotpotQA corpus (~5.23 M passages).
    pub fn hotpotqa() -> Self {
        Self::new("HotpotQA", 5_233_329, 1024, 8192, 1800, 2.0)
    }

    /// The English subset of the Cohere Wikipedia 2023-11 corpus
    /// (41.5 M chunks).
    pub fn wiki_en() -> Self {
        Self::new("wiki_en", 41_488_110, 1024, 16384, 1600, 1.5)
    }

    /// The full multilingual Cohere Wikipedia 2023-11 corpus (~250 M chunks).
    pub fn wiki_full() -> Self {
        Self::new("wiki_full", 250_000_000, 1024, 16384, 1600, 1.5)
    }

    /// The BEIR FEVER fact-checking corpus (~5.4 M passages).
    pub fn fever() -> Self {
        Self::new("FEVER", 5_416_568, 1024, 8192, 1700, 1.2)
    }

    /// The Quora duplicate-questions corpus (~523 k entries).
    pub fn quora() -> Self {
        Self::new("Quora", 522_931, 1024, 2048, 300, 1.6)
    }

    /// The SIFT-1B billion-scale descriptor collection (128-d).
    pub fn sift_1b() -> Self {
        Self::new("SIFT-1B", 1_000_000_000, 128, 65536, 0, 1.0)
    }

    /// The DEEP-1B billion-scale descriptor collection (96-d).
    pub fn deep_1b() -> Self {
        Self::new("DEEP-1B", 1_000_000_000, 96, 65536, 0, 1.0)
    }

    /// The four retrieval datasets of the main evaluation (Figs. 7, 8, 10).
    pub fn main_evaluation() -> Vec<DatasetProfile> {
        vec![
            Self::nq(),
            Self::hotpotqa(),
            Self::wiki_en(),
            Self::wiki_full(),
        ]
    }

    /// Builder-style override of the scaled entry count (and a proportional
    /// cluster count) used for functional runs.
    pub fn scaled(mut self, entries: usize) -> Self {
        self.scaled_entries = entries.max(1);
        self.scaled_nlist = (entries / 16).clamp(1, 4096);
        self
    }

    /// Builder-style override of the number of generated queries.
    pub fn with_queries(mut self, queries: usize) -> Self {
        self.queries = queries.max(1);
        self
    }

    /// Bytes of one binary embedding.
    pub fn binary_bytes(&self) -> usize {
        self.dim.div_ceil(8)
    }

    /// Full-scale size of the `f32` embedding matrix in bytes.
    pub fn full_f32_bytes(&self) -> u64 {
        self.full_entries * self.dim as u64 * 4
    }

    /// Full-scale size of the binary embedding matrix in bytes.
    pub fn full_binary_bytes(&self) -> u64 {
        self.full_entries * self.binary_bytes() as u64
    }

    /// Full-scale size of the INT8 embedding matrix in bytes.
    pub fn full_int8_bytes(&self) -> u64 {
        self.full_entries * self.dim as u64
    }

    /// Full-scale size of the document corpus in bytes.
    pub fn full_document_bytes(&self) -> u64 {
        self.full_entries * self.doc_bytes as u64
    }

    /// Bytes a CPU RAG pipeline loads from storage per retrieval run when
    /// embeddings are kept in `f32` (flat FAISS index + documents, Fig. 2).
    pub fn full_load_bytes_f32(&self) -> u64 {
        self.full_f32_bytes() + self.full_document_bytes()
    }

    /// Bytes loaded per retrieval run when embeddings are binary-quantized
    /// but INT8 rescoring data and documents still move (Fig. 3).
    pub fn full_load_bytes_bq(&self) -> u64 {
        self.full_binary_bytes() + self.full_int8_bytes() + self.full_document_bytes()
    }

    /// Ratio of full-scale to scaled entries (used to report the scaling
    /// factor of each experiment).
    pub fn scale_factor(&self) -> f64 {
        self.full_entries as f64 / self.scaled_entries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_entry_counts_are_reproduced() {
        assert_eq!(DatasetProfile::hotpotqa().full_entries, 5_233_329);
        assert_eq!(DatasetProfile::wiki_en().full_entries, 41_488_110);
        assert_eq!(DatasetProfile::sift_1b().full_entries, 1_000_000_000);
        assert_eq!(DatasetProfile::main_evaluation().len(), 4);
    }

    #[test]
    fn wiki_en_io_footprint_matches_the_motivation_numbers() {
        // Sec. 3.2: after BQ the wiki_en transfer is ~14 GB of which ~9 GB are
        // documents. Our byte model should land in that range.
        let p = DatasetProfile::wiki_en();
        let docs_gb = p.full_document_bytes() as f64 / 1e9;
        let total_bq_gb = p.full_load_bytes_bq() as f64 / 1e9;
        assert!(
            (50.0..80.0).contains(&(docs_gb / total_bq_gb * 100.0)),
            "documents should dominate the post-BQ transfer ({docs_gb:.1} of {total_bq_gb:.1} GB)"
        );
        // BQ shrinks the embedding transfer by far more than 10x.
        assert!(p.full_f32_bytes() > 30 * p.full_binary_bytes());
    }

    #[test]
    fn scaling_keeps_dimensionality_and_reports_factor() {
        let p = DatasetProfile::hotpotqa().scaled(2_000).with_queries(32);
        assert_eq!(p.scaled_entries, 2_000);
        assert_eq!(p.queries, 32);
        assert_eq!(p.dim, 1024);
        assert!(p.scale_factor() > 2_000.0);
        assert!(p.scaled_nlist >= 1);
    }

    #[test]
    fn binary_bytes_round_up() {
        assert_eq!(DatasetProfile::deep_1b().binary_bytes(), 12);
        assert_eq!(DatasetProfile::nq().binary_bytes(), 128);
    }
}
