//! # reis-workloads — evaluation datasets for the REIS reproduction
//!
//! The paper evaluates on public corpora (NQ, HotpotQA, wiki_en, wiki_full,
//! FEVER, Quora, SIFT-1B, DEEP-1B) that this repository does not ship.
//! Instead, every dataset is described by a [`profile::DatasetProfile`]
//! carrying both its *full-scale* parameters (entry counts, dimensionality,
//! on-disk bytes — used by the analytic I/O and baseline models) and a
//! *scaled* size at which [`synthetic::SyntheticDataset`] generates clustered
//! embeddings, queries and documents for functional runs.
//! [`ground_truth::GroundTruth`] provides exact neighbors for recall
//! measurements.
//!
//! # Example
//!
//! ```
//! use reis_workloads::{DatasetProfile, GroundTruth, SyntheticDataset};
//!
//! # fn main() -> Result<(), reis_ann::AnnError> {
//! let profile = DatasetProfile::hotpotqa().scaled(500).with_queries(4);
//! let dataset = SyntheticDataset::generate(profile, 7);
//! let truth = GroundTruth::compute(&dataset, 10)?;
//! assert_eq!(truth.len(), dataset.queries().len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod crash;
pub mod fault;
pub mod ground_truth;
pub mod mutation;
pub mod profile;
pub mod synthetic;

pub use arrival::{ArrivalEvent, ArrivalTrace};
pub use crash::{CrashSchedule, LeafCrashSchedule};
pub use fault::FaultScenario;
pub use ground_truth::GroundTruth;
pub use mutation::{MutationMix, MutationOp, MutationTrace};
pub use profile::DatasetProfile;
pub use synthetic::SyntheticDataset;
