//! Seeded mutation-trace generation.
//!
//! A retrieval index serving live traffic sees a mixed stream of inserts
//! (new documents arriving), deletes (content expiring or being retracted),
//! upserts (documents being re-embedded or edited) and searches. This
//! module generates deterministic traces of such streams against a
//! [`SyntheticDataset`](crate::SyntheticDataset)-style corpus, for the
//! update-path benchmarks and tests: the same seed and mix always produce
//! the same trace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One operation of a mutation trace.
///
/// Delete and upsert targets are drawn from the *live id set* the trace
/// tracks while generating: ids are positions in the trace's logical
/// corpus — the replayer maps them to the stable ids its system assigned
/// (see [`MutationTrace::ops`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MutationOp {
    /// Insert a fresh entry: the embedding and document chunk to append.
    Insert {
        /// The new entry's embedding.
        vector: Vec<f32>,
        /// The new entry's document chunk.
        document: Vec<u8>,
    },
    /// Delete a live entry, addressed by its position in the trace's
    /// logical id space (0 = first initial entry, then insertion order).
    Delete {
        /// Logical index of the entry to delete.
        target: usize,
    },
    /// Replace a live entry with a new embedding/document pair.
    Upsert {
        /// Logical index of the entry to replace.
        target: usize,
        /// The replacement embedding.
        vector: Vec<f32>,
        /// The replacement document chunk.
        document: Vec<u8>,
    },
    /// Run a search for this query between mutations (the
    /// search-under-update probe of the benchmark).
    Search {
        /// The query embedding.
        query: Vec<f32>,
    },
}

/// Relative weights of the operation mix of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MutationMix {
    /// Weight of inserts.
    pub insert: u32,
    /// Weight of deletes.
    pub delete: u32,
    /// Weight of upserts.
    pub upsert: u32,
    /// Weight of interleaved searches.
    pub search: u32,
}

impl MutationMix {
    /// An ingest-heavy mix (mostly inserts, some churn, occasional reads).
    pub fn ingest_heavy() -> Self {
        MutationMix {
            insert: 6,
            delete: 1,
            upsert: 1,
            search: 2,
        }
    }

    /// A churn-heavy mix (deletes and upserts dominate).
    pub fn churn_heavy() -> Self {
        MutationMix {
            insert: 2,
            delete: 3,
            upsert: 3,
            search: 2,
        }
    }

    /// A balanced read/write mix.
    pub fn balanced() -> Self {
        MutationMix {
            insert: 2,
            delete: 1,
            upsert: 1,
            search: 4,
        }
    }

    fn total(&self) -> u32 {
        (self.insert + self.delete + self.upsert + self.search).max(1)
    }
}

impl Default for MutationMix {
    fn default() -> Self {
        MutationMix::balanced()
    }
}

/// A generated mutation trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MutationTrace {
    ops: Vec<MutationOp>,
    mix: MutationMix,
    live_at_end: usize,
}

impl MutationTrace {
    /// Generate a trace of `ops` operations against a corpus that starts
    /// with `initial_entries` live entries of dimensionality `dim`.
    ///
    /// Inserted/upserted vectors are jittered copies of a latent topic (the
    /// same shape [`crate::SyntheticDataset`] generates), so mutations stay
    /// in-distribution for the deployed quantizers. Documents are sized
    /// `doc_bytes`. Deletes and upserts only ever target currently-live
    /// logical ids, and the generator never deletes the last live entry.
    pub fn generate(
        initial_entries: usize,
        dim: usize,
        doc_bytes: usize,
        ops: usize,
        mix: MutationMix,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
        let topics: Vec<Vec<f32>> = (0..8)
            .map(|_| (0..dim).map(|_| rng.gen_range(-0.5f32..0.5)).collect())
            .collect();
        let fresh_vector = |rng: &mut StdRng| -> Vec<f32> {
            let topic = &topics[rng.gen_range(0..topics.len())];
            topic
                .iter()
                .map(|&x| x + rng.gen_range(-0.6f32..0.6))
                .collect()
        };
        let document = |tag: usize, version: usize| -> Vec<u8> {
            let mut text = format!("[mutated chunk {tag} v{version}] ");
            while text.len() < doc_bytes.max(24) {
                text.push_str("live index update traffic. ");
            }
            text.truncate(doc_bytes.max(24));
            text.into_bytes()
        };

        // Live logical ids: initial entries first, inserts appended after.
        let mut live: Vec<usize> = (0..initial_entries).collect();
        let mut next_logical = initial_entries;
        let mut trace = Vec::with_capacity(ops);
        let total = mix.total();
        for step in 0..ops {
            let mut roll = rng.gen_range(0..total);
            if roll < mix.insert || live.len() <= 1 {
                let vector = fresh_vector(&mut rng);
                trace.push(MutationOp::Insert {
                    vector,
                    document: document(next_logical, step),
                });
                live.push(next_logical);
                next_logical += 1;
                continue;
            }
            roll -= mix.insert;
            if roll < mix.delete {
                let slot = rng.gen_range(0..live.len());
                let target = live.swap_remove(slot);
                trace.push(MutationOp::Delete { target });
                continue;
            }
            roll -= mix.delete;
            if roll < mix.upsert {
                let target = live[rng.gen_range(0..live.len())];
                trace.push(MutationOp::Upsert {
                    target,
                    vector: fresh_vector(&mut rng),
                    document: document(target, step),
                });
                continue;
            }
            trace.push(MutationOp::Search {
                query: fresh_vector(&mut rng),
            });
        }
        MutationTrace {
            ops: trace,
            mix,
            live_at_end: live.len(),
        }
    }

    /// The operations, in replay order.
    pub fn ops(&self) -> &[MutationOp] {
        &self.ops
    }

    /// The mix the trace was generated with.
    pub fn mix(&self) -> MutationMix {
        self.mix
    }

    /// Number of live logical entries once the whole trace is applied.
    pub fn live_at_end(&self) -> usize {
        self.live_at_end
    }

    /// Counts of `(inserts, deletes, upserts, searches)` in the trace.
    pub fn op_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize, 0usize);
        for op in &self.ops {
            match op {
                MutationOp::Insert { .. } => counts.0 += 1,
                MutationOp::Delete { .. } => counts.1 += 1,
                MutationOp::Upsert { .. } => counts.2 += 1,
                MutationOp::Search { .. } => counts.3 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_respect_the_mix() {
        let a = MutationTrace::generate(50, 16, 64, 200, MutationMix::ingest_heavy(), 7);
        let b = MutationTrace::generate(50, 16, 64, 200, MutationMix::ingest_heavy(), 7);
        assert_eq!(a, b, "same seed, same trace");
        let c = MutationTrace::generate(50, 16, 64, 200, MutationMix::ingest_heavy(), 8);
        assert_ne!(a, c, "different seed, different trace");

        let (inserts, deletes, _, searches) = a.op_counts();
        assert!(
            inserts > deletes,
            "ingest-heavy mix inserts more than it deletes"
        );
        assert!(searches > 0);
        assert_eq!(a.ops().len(), 200);
        assert!(a.live_at_end() > 0);
    }

    #[test]
    fn targets_are_always_live_at_their_point_in_the_trace() {
        let trace = MutationTrace::generate(20, 8, 32, 300, MutationMix::churn_heavy(), 42);
        let mut live: std::collections::HashSet<usize> = (0..20).collect();
        let mut next = 20usize;
        for op in trace.ops() {
            match op {
                MutationOp::Insert { vector, document } => {
                    assert_eq!(vector.len(), 8);
                    assert!(!document.is_empty());
                    live.insert(next);
                    next += 1;
                }
                MutationOp::Delete { target } => {
                    assert!(live.remove(target), "delete of dead id {target}");
                }
                MutationOp::Upsert { target, vector, .. } => {
                    assert!(live.contains(target), "upsert of dead id {target}");
                    assert_eq!(vector.len(), 8);
                }
                MutationOp::Search { query } => assert_eq!(query.len(), 8),
            }
        }
        assert_eq!(live.len(), trace.live_at_end());
    }
}
