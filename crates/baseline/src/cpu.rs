//! The host CPU baseline (CPU-Real, No-I/O and CPU+BQ).
//!
//! The paper's baseline is a dual-socket AMD EPYC 9554 server with 1.5 TB of
//! DDR4 and a PM9A3 SSD (Table 3). Its retrieval time has two parts: loading
//! the dataset from storage into host DRAM and the in-memory ANNS itself.
//! This model prices both from first-order parameters (storage bandwidth,
//! per-core distance throughput, memory bandwidth), which is what governs the
//! CPU-Real, No-I/O and CPU+BQ series of Figs. 2, 3, 7, 8 and Table 4.

use serde::{Deserialize, Serialize};

use reis_workloads::DatasetProfile;

/// Parameters of the host CPU system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSystemConfig {
    /// Number of physical cores across both sockets.
    pub cores: usize,
    /// Sustained clock frequency in Hz.
    pub clock_hz: f64,
    /// Effective f32 dimension-operations per second per core (SIMD distance
    /// kernel, accounting for loads).
    pub f32_dims_per_sec_per_core: f64,
    /// Effective INT8 dimension-operations per second per core.
    pub int8_dims_per_sec_per_core: f64,
    /// Effective binary (bit) operations per second per core (XOR+popcount).
    pub binary_bits_per_sec_per_core: f64,
    /// Aggregate DRAM bandwidth in bytes per second (caps streaming scans).
    pub dram_bandwidth_bps: f64,
    /// Sequential read bandwidth of the SSD used for dataset loading, bytes
    /// per second.
    pub storage_read_bps: f64,
    /// Average power of the CPU package(s) under load, watts.
    pub cpu_power_w: f64,
    /// Average power of the DRAM subsystem under load, watts.
    pub dram_power_w: f64,
    /// Average power of the storage device during loading, watts.
    pub storage_power_w: f64,
    /// Fraction of the theoretical many-core throughput a single retrieval
    /// batch actually sustains (synchronisation, NUMA and memory-latency
    /// effects keep real FAISS-style scans well below linear scaling).
    pub parallel_efficiency: f64,
}

impl CpuSystemConfig {
    /// The paper's CPU-Real configuration: 2 × AMD EPYC 9554 (128 cores),
    /// 1.5 TB DDR4, Samsung PM9A3.
    pub fn epyc_9554_dual() -> Self {
        CpuSystemConfig {
            cores: 128,
            clock_hz: 3.1e9,
            f32_dims_per_sec_per_core: 1.6e10,
            int8_dims_per_sec_per_core: 3.2e10,
            binary_bits_per_sec_per_core: 2.0e11,
            dram_bandwidth_bps: 400.0e9,
            storage_read_bps: 6.8e9,
            cpu_power_w: 540.0,
            dram_power_w: 120.0,
            storage_power_w: 12.0,
            parallel_efficiency: 0.30,
        }
    }

    /// Total system power during the search phase, watts.
    pub fn compute_power_w(&self) -> f64 {
        self.cpu_power_w + self.dram_power_w
    }

    /// Total system power during dataset loading, watts.
    pub fn loading_power_w(&self) -> f64 {
        // Loading keeps the storage device and memory busy but the cores
        // mostly stalled; charge a quarter of the CPU's active power.
        self.cpu_power_w * 0.25 + self.dram_power_w + self.storage_power_w
    }
}

impl Default for CpuSystemConfig {
    fn default() -> Self {
        CpuSystemConfig::epyc_9554_dual()
    }
}

/// Which embedding representation the CPU searches over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpuPrecision {
    /// Full-precision `f32` embeddings (Fig. 2 and the BF columns).
    Float32,
    /// Binary-quantized embeddings with INT8 reranking (Fig. 3 and the IVF
    /// columns, matching REIS's algorithm).
    BinaryWithRerank,
}

/// Result of evaluating the CPU baseline on one workload setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuRetrievalEstimate {
    /// Dataset-loading time in seconds (zero for the No-I/O variant).
    pub load_seconds: f64,
    /// In-memory search time per query in seconds.
    pub search_seconds_per_query: f64,
    /// Number of queries the loading cost is amortized over.
    pub queries: usize,
    /// System power during loading, watts.
    pub loading_power_w: f64,
    /// System power during search, watts.
    pub compute_power_w: f64,
}

impl CpuRetrievalEstimate {
    /// Total retrieval-stage time for the whole query batch, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.load_seconds + self.search_seconds_per_query * self.queries as f64
    }

    /// Sustained queries per second over the batch (the Fig. 7 metric).
    pub fn qps(&self) -> f64 {
        if self.total_seconds() <= 0.0 {
            return 0.0;
        }
        self.queries as f64 / self.total_seconds()
    }

    /// Total energy of the retrieval stage in joules.
    pub fn energy_joules(&self) -> f64 {
        self.load_seconds * self.loading_power_w
            + self.search_seconds_per_query * self.queries as f64 * self.compute_power_w
    }

    /// Queries per second per watt (the Fig. 8 metric).
    pub fn qps_per_watt(&self) -> f64 {
        let energy = self.energy_joules();
        if energy <= 0.0 {
            return 0.0;
        }
        self.queries as f64 / energy
    }
}

/// The CPU baseline system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSystem {
    config: CpuSystemConfig,
}

impl CpuSystem {
    /// Create the baseline from its configuration.
    pub fn new(config: CpuSystemConfig) -> Self {
        CpuSystem { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CpuSystemConfig {
        &self.config
    }

    /// Effective number of cores after accounting for parallel efficiency.
    fn effective_cores(&self) -> f64 {
        (self.config.cores as f64 * self.config.parallel_efficiency).max(1.0)
    }

    /// Time to load `bytes` from storage into host memory, seconds.
    pub fn load_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.config.storage_read_bps
    }

    /// In-memory brute-force search time per query, seconds.
    pub fn flat_search_seconds(&self, profile: &DatasetProfile, precision: CpuPrecision) -> f64 {
        let n = profile.full_entries as f64;
        let dim = profile.dim as f64;
        match precision {
            CpuPrecision::Float32 => {
                let compute =
                    n * dim / (self.config.f32_dims_per_sec_per_core * self.effective_cores());
                let memory = n * dim * 4.0 / self.config.dram_bandwidth_bps;
                compute.max(memory)
            }
            CpuPrecision::BinaryWithRerank => {
                let compute =
                    n * dim / (self.config.binary_bits_per_sec_per_core * self.effective_cores());
                let memory = n * dim / 8.0 / self.config.dram_bandwidth_bps;
                let rerank = self.rerank_seconds(profile, 100);
                compute.max(memory) + rerank
            }
        }
    }

    /// In-memory IVF search time per query, seconds, probing `nprobe` of the
    /// profile's `full_nlist` clusters.
    pub fn ivf_search_seconds(
        &self,
        profile: &DatasetProfile,
        nprobe: usize,
        precision: CpuPrecision,
    ) -> f64 {
        let n = profile.full_entries as f64;
        let dim = profile.dim as f64;
        let nlist = profile.full_nlist as f64;
        let probed = n * (nprobe as f64 / nlist).min(1.0);
        match precision {
            CpuPrecision::Float32 => {
                let coarse =
                    nlist * dim / (self.config.f32_dims_per_sec_per_core * self.effective_cores());
                let fine_compute =
                    probed * dim / (self.config.f32_dims_per_sec_per_core * self.effective_cores());
                let fine_memory = probed * dim * 4.0 / self.config.dram_bandwidth_bps;
                coarse + fine_compute.max(fine_memory)
            }
            CpuPrecision::BinaryWithRerank => {
                let coarse = nlist * dim
                    / (self.config.binary_bits_per_sec_per_core * self.effective_cores());
                let fine_compute = probed * dim
                    / (self.config.binary_bits_per_sec_per_core * self.effective_cores());
                let fine_memory = probed * dim / 8.0 / self.config.dram_bandwidth_bps;
                coarse + fine_compute.max(fine_memory) + self.rerank_seconds(profile, 100)
            }
        }
    }

    fn rerank_seconds(&self, profile: &DatasetProfile, candidates: usize) -> f64 {
        candidates as f64 * profile.dim as f64
            / (self.config.int8_dims_per_sec_per_core * self.effective_cores())
    }

    /// Full CPU-Real retrieval estimate: dataset loading plus per-query
    /// search, amortized over `queries` queries.
    pub fn cpu_real(
        &self,
        profile: &DatasetProfile,
        queries: usize,
        nprobe: Option<usize>,
        precision: CpuPrecision,
    ) -> CpuRetrievalEstimate {
        let load_bytes = match precision {
            CpuPrecision::Float32 => profile.full_load_bytes_f32(),
            CpuPrecision::BinaryWithRerank => profile.full_load_bytes_bq(),
        };
        let search = match nprobe {
            Some(p) => self.ivf_search_seconds(profile, p, precision),
            None => self.flat_search_seconds(profile, precision),
        };
        CpuRetrievalEstimate {
            load_seconds: self.load_seconds(load_bytes),
            search_seconds_per_query: search,
            queries,
            loading_power_w: self.config.loading_power_w(),
            compute_power_w: self.config.compute_power_w(),
        }
    }

    /// The No-I/O variant: identical search but the dataset is assumed to
    /// already reside in host memory.
    pub fn no_io(
        &self,
        profile: &DatasetProfile,
        queries: usize,
        nprobe: Option<usize>,
        precision: CpuPrecision,
    ) -> CpuRetrievalEstimate {
        CpuRetrievalEstimate {
            load_seconds: 0.0,
            ..self.cpu_real(profile, queries, nprobe, precision)
        }
    }
}

impl Default for CpuSystem {
    fn default() -> Self {
        CpuSystem::new(CpuSystemConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loading_dominates_large_datasets() {
        let cpu = CpuSystem::default();
        let wiki = DatasetProfile::wiki_en();
        let est = cpu.cpu_real(&wiki, 1000, Some(200), CpuPrecision::BinaryWithRerank);
        assert!(
            est.load_seconds > est.search_seconds_per_query * est.queries as f64 * 0.3,
            "loading should be a major fraction for wiki_en"
        );
        assert!(est.qps() > 0.0);
        assert!(est.qps_per_watt() > 0.0);
    }

    #[test]
    fn no_io_is_strictly_faster_than_cpu_real() {
        let cpu = CpuSystem::default();
        let p = DatasetProfile::hotpotqa();
        let real = cpu.cpu_real(&p, 500, None, CpuPrecision::Float32);
        let no_io = cpu.no_io(&p, 500, None, CpuPrecision::Float32);
        assert!(no_io.total_seconds() < real.total_seconds());
        assert_eq!(no_io.load_seconds, 0.0);
        assert!(no_io.qps() > real.qps());
    }

    #[test]
    fn binary_quantization_speeds_up_both_loading_and_search() {
        let cpu = CpuSystem::default();
        let p = DatasetProfile::wiki_en();
        let f32_est = cpu.cpu_real(&p, 1000, None, CpuPrecision::Float32);
        let bq_est = cpu.cpu_real(&p, 1000, None, CpuPrecision::BinaryWithRerank);
        assert!(bq_est.load_seconds < f32_est.load_seconds);
        assert!(bq_est.search_seconds_per_query < f32_est.search_seconds_per_query);
        // But loading does not vanish: documents still move (Sec. 3.2).
        assert!(bq_est.load_seconds > 0.3 * f32_est.load_seconds * 0.3);
    }

    #[test]
    fn ivf_is_cheaper_than_flat_and_scales_with_nprobe() {
        let cpu = CpuSystem::default();
        let p = DatasetProfile::hotpotqa();
        let flat = cpu.flat_search_seconds(&p, CpuPrecision::Float32);
        let narrow = cpu.ivf_search_seconds(&p, 16, CpuPrecision::Float32);
        let wide = cpu.ivf_search_seconds(&p, 1024, CpuPrecision::Float32);
        assert!(narrow < wide);
        assert!(wide < flat);
    }

    #[test]
    fn power_figures_are_server_class() {
        let config = CpuSystemConfig::default();
        assert!(config.compute_power_w() > 500.0);
        assert!(config.loading_power_w() < config.compute_power_w());
        assert_eq!(config.cores, 128);
    }
}
