//! The REIS-ASIC comparator (Sec. 6.3.1).
//!
//! REIS-ASIC asks: what if, instead of using ESP to make in-plane reads
//! error-free, the design kept conventional programming and added an ideal
//! (zero-latency) compute ASIC in the controller? Every scanned page must
//! then be transferred to the controller and pass through ECC before the
//! ASIC can touch it, which is exactly the data movement REIS's in-plane
//! computation avoids. The model reuses a query's activity counts from the
//! functional REIS engine and reprices the scan phases under that data
//! movement.

use serde::Serialize;

use reis_core::{QueryActivity, ReisConfig};
use reis_nand::{Nanos, ProgramScheme};
use reis_ssd::EccParams;

/// Analytic model of the REIS-ASIC comparator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReisAsicModel {
    config: ReisConfig,
}

impl ReisAsicModel {
    /// Create the model for an SSD configuration.
    pub fn new(config: ReisConfig) -> Self {
        ReisAsicModel { config }
    }

    /// Latency of the scan phases (coarse + fine) when every scanned page is
    /// shipped to the controller and ECC-decoded before the ideal ASIC
    /// computes on it.
    pub fn scan_latency(&self, activity: &QueryActivity) -> Nanos {
        let geom = &self.config.ssd.geometry;
        let timing = &self.config.ssd.timing;
        let ecc = EccParams::ldpc();
        let pages = (activity.coarse_pages + activity.fine_pages) as u64;
        if pages == 0 {
            return Nanos::ZERO;
        }
        // Senses still proceed in parallel across all planes.
        let rounds = pages.div_ceil(geom.total_planes() as u64);
        let sense = timing.read_latency(ProgramScheme::Ispp(reis_nand::CellMode::Slc));
        // Every page crosses its channel; channels work in parallel but each
        // carries its share of full pages, not filtered TTL entries.
        let pages_per_channel = pages.div_ceil(geom.channels as u64);
        let transfer = timing.channel_transfer(geom.page_size_bytes) * pages_per_channel;
        // ECC decoding in the controller, pipelined across its engines but
        // serial per channel stream.
        let ecc_time = ecc.decode_latency_per_page * pages_per_channel;
        // The ideal ASIC computes for free; transfers and ECC dominate.
        sense * rounds + transfer.max(ecc_time) + transfer.min(ecc_time)
    }

    /// Full query latency: the repriced scans plus the phases REIS-ASIC
    /// shares with REIS (broadcast is not needed, reranking and document
    /// fetches are identical).
    pub fn query_latency(&self, activity: &QueryActivity, reis_like_tail: Nanos) -> Nanos {
        self.scan_latency(activity) + reis_like_tail
    }

    /// Slowdown of REIS-ASIC relative to a REIS query with the given scan
    /// latency and shared tail.
    pub fn slowdown_vs_reis(
        &self,
        activity: &QueryActivity,
        reis_scan: Nanos,
        shared_tail: Nanos,
    ) -> f64 {
        let asic = self.query_latency(activity, shared_tail).as_secs_f64();
        let reis = (reis_scan + shared_tail).as_secs_f64();
        if reis <= 0.0 {
            return 0.0;
        }
        asic / reis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity() -> QueryActivity {
        QueryActivity {
            coarse_pages: 128,
            coarse_entries: 16_384,
            fine_pages: 4_096,
            fine_entries: 5_000,
            fine_windows: 0,
            rerank_candidates: 100,
            int8_pages: 32,
            documents: 10,
            embedding_slot_bytes: 128,
            dim: 1024,
            doc_slot_bytes: 4096,
        }
    }

    #[test]
    fn asic_scan_is_slower_than_reis_scan() {
        let config = ReisConfig::ssd1();
        let asic = ReisAsicModel::new(config);
        let reis_perf = reis_core::PerfModel::new(config);
        let a = activity();
        let reis_scan = reis_perf.scan(a.coarse_pages, a.coarse_entries, 128)
            + reis_perf.scan(a.fine_pages, a.fine_entries, 128);
        let asic_scan = asic.scan_latency(&a);
        assert!(asic_scan > reis_scan);
        // The paper reports 4x–6.5x; with shared tails included the slowdown
        // should land in the low single digits.
        let tail = reis_perf.rerank(a.rerank_candidates, a.int8_pages, a.dim)
            + reis_perf.document_fetch(a.documents, a.doc_slot_bytes);
        let slowdown = asic.slowdown_vs_reis(&a, reis_scan, tail);
        assert!(slowdown > 2.0, "slowdown {slowdown} too small");
        assert!(slowdown < 30.0, "slowdown {slowdown} implausibly large");
    }

    #[test]
    fn empty_activity_has_no_scan_cost() {
        let asic = ReisAsicModel::new(ReisConfig::ssd2());
        assert_eq!(asic.scan_latency(&QueryActivity::default()), Nanos::ZERO);
        assert_eq!(
            asic.query_latency(&QueryActivity::default(), Nanos::from_micros(5)),
            Nanos::from_micros(5)
        );
    }
}
