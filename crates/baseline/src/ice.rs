//! Model of ICE, the prior in-flash vector-search accelerator (Fig. 10).
//!
//! ICE computes vector similarity inside 3D-NAND dies, but to do so without
//! error correction it stores data in an error-tolerant format that blows up
//! 4-bit-quantized embeddings by 8× (32× for 8-bit), and it does not provide
//! document retrieval or REIS's distance filtering / pipelining. The model
//! charges per-query cost from the number of flash pages the amplified
//! representation forces it to scan, using the same parallelism rules as the
//! REIS latency model, so the comparison isolates exactly the effects the
//! paper attributes the speedup to.

use serde::{Deserialize, Serialize};

use reis_core::ReisConfig;
use reis_nand::{Nanos, ProgramScheme};
use reis_workloads::DatasetProfile;

/// Which ICE variant is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IceVariant {
    /// The published design: 4-bit quantization stored in the 8×
    /// error-tolerant format (32 bits of flash per dimension).
    Published,
    /// The idealised ICE-ESP of Sec. 6.4: ESP removes the error-tolerant
    /// blow-up but the 4-bit quantization remains (4 bits per dimension).
    EspIdeal,
}

impl IceVariant {
    /// Flash bits consumed per embedding dimension.
    pub fn bits_per_dimension(&self) -> usize {
        match self {
            IceVariant::Published => 32,
            IceVariant::EspIdeal => 4,
        }
    }
}

/// Analytic model of ICE on top of a given SSD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct IceModel {
    config: ReisConfig,
    variant: IceVariant,
}

impl IceModel {
    /// Create the model for an SSD configuration and an ICE variant.
    pub fn new(config: ReisConfig, variant: IceVariant) -> Self {
        IceModel { config, variant }
    }

    /// The modelled variant.
    pub fn variant(&self) -> IceVariant {
        self.variant
    }

    /// Flash pages ICE must scan to evaluate `entries` embeddings of the
    /// profile's dimensionality.
    pub fn pages_for_entries(&self, profile: &DatasetProfile, entries: u64) -> u64 {
        let bits_per_entry = (profile.dim * self.variant.bits_per_dimension()) as u64;
        let page_bits = (self.config.ssd.geometry.page_size_bytes * 8) as u64;
        (entries * bits_per_entry).div_ceil(page_bits)
    }

    /// Per-query latency for a search that evaluates `entries` embeddings
    /// (all of them for brute force; the probed clusters for IVF) and
    /// returns `k` results.
    pub fn query_latency(&self, profile: &DatasetProfile, entries: u64, k: usize) -> Nanos {
        let geom = &self.config.ssd.geometry;
        let timing = &self.config.ssd.timing;
        let pages = self.pages_for_entries(profile, entries);
        let rounds = pages.div_ceil(geom.total_planes() as u64);
        // In-flash similarity evaluation per page (sense + on-die compute).
        let sense = timing.read_latency(ProgramScheme::EnhancedSlc);
        let compute = timing.in_plane_distance(false);
        let scan = (sense + compute) * rounds;
        // All per-page results cross the channels (no distance filtering):
        // one candidate record (distance + id) per evaluated embedding.
        let record_bytes = 8u64;
        let bytes_per_channel = entries * record_bytes / geom.channels as u64;
        let transfer =
            Nanos::from_secs_f64(bytes_per_channel as f64 / timing.channel_bandwidth_bps);
        // Host-side selection of the top-k and (unaccelerated) document
        // fetches through the conventional read path.
        let host_select = Nanos::from_secs_f64(entries as f64 * 2.0 / 50.0e9);
        let doc_fetch = Nanos::from_secs_f64(
            (k * profile.doc_bytes) as f64 / self.config.ssd.timing.channel_bandwidth_bps,
        ) + timing.read_latency(ProgramScheme::Ispp(reis_nand::CellMode::Tlc))
            * k as u64;
        scan + transfer + host_select + doc_fetch
    }

    /// Queries per second for the same setting.
    pub fn qps(&self, profile: &DatasetProfile, entries: u64, k: usize) -> f64 {
        let secs = self.query_latency(profile, entries, k).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            1.0 / secs
        }
    }

    /// Number of embeddings an IVF search evaluates when probing `nprobe` of
    /// `nlist` clusters (coarse centroids plus the probed lists).
    pub fn ivf_entries(profile: &DatasetProfile, nprobe: usize) -> u64 {
        let probed_fraction = (nprobe as f64 / profile.full_nlist as f64).min(1.0);
        profile.full_nlist as u64 + (profile.full_entries as f64 * probed_fraction) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_ice_scans_8x_more_pages_than_its_esp_ideal() {
        let profile = DatasetProfile::wiki_en();
        let published = IceModel::new(ReisConfig::ssd1(), IceVariant::Published);
        let esp = IceModel::new(ReisConfig::ssd1(), IceVariant::EspIdeal);
        let n = profile.full_entries;
        let ratio = published.pages_for_entries(&profile, n) as f64
            / esp.pages_for_entries(&profile, n) as f64;
        assert!(
            (ratio - 8.0).abs() < 0.01,
            "page ratio {ratio} should be ~8x"
        );
    }

    #[test]
    fn latency_grows_with_evaluated_entries() {
        let profile = DatasetProfile::hotpotqa();
        let model = IceModel::new(ReisConfig::ssd2(), IceVariant::Published);
        let narrow = model.query_latency(&profile, IceModel::ivf_entries(&profile, 64), 10);
        let wide = model.query_latency(&profile, IceModel::ivf_entries(&profile, 1024), 10);
        let brute = model.query_latency(&profile, profile.full_entries, 10);
        assert!(narrow < wide);
        assert!(wide < brute);
        assert!(model.qps(&profile, profile.full_entries, 10) > 0.0);
    }

    #[test]
    fn esp_variant_is_faster_but_still_pays_for_4bit_codes() {
        let profile = DatasetProfile::nq();
        let published = IceModel::new(ReisConfig::ssd1(), IceVariant::Published);
        let esp = IceModel::new(ReisConfig::ssd1(), IceVariant::EspIdeal);
        let n = profile.full_entries;
        let t_published = published.query_latency(&profile, n, 10);
        let t_esp = esp.query_latency(&profile, n, 10);
        assert!(t_esp < t_published);
        // The 4-bit representation still reads 4x the pages a 1-bit (REIS)
        // layout would, so the ESP ideal cannot reach a quarter of the
        // published latency... it is bounded by the shared transfer costs.
        assert!(t_esp.as_secs_f64() > t_published.as_secs_f64() / 8.0);
    }

    #[test]
    fn variant_bit_widths_match_the_paper() {
        assert_eq!(IceVariant::Published.bits_per_dimension(), 32);
        assert_eq!(IceVariant::EspIdeal.bits_per_dimension(), 4);
    }
}
