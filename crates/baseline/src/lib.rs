//! # reis-baseline — comparator system models for the REIS evaluation
//!
//! Analytic models of every system REIS is compared against:
//!
//! * [`cpu`] — the host CPU baseline of Table 3 (CPU-Real, No-I/O and the
//!   CPU+BQ variant of Fig. 3), pricing dataset loading from storage and
//!   in-memory flat / IVF search.
//! * [`ice`] — the ICE in-flash similarity-search accelerator and its
//!   idealised ICE-ESP variant (Fig. 10), dominated by the storage blow-up
//!   of its error-tolerant data format.
//! * [`ndsearch`] — the NDSearch graph-traversal near-data accelerator
//!   (Fig. 11), dominated by dependent flash reads during graph traversal.
//! * [`reis_asic`] — the REIS-ASIC comparator of Sec. 6.3.1 (ECC in the
//!   controller plus an ideal compute ASIC), dominated by page transfers.
//!
//! These are deliberately first-order models: each one prices exactly the
//! mechanism the paper attributes the corresponding performance gap to, and
//! each exposes its parameters so the benchmarks can sweep them.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpu;
pub mod ice;
pub mod ndsearch;
pub mod reis_asic;

pub use cpu::{CpuPrecision, CpuRetrievalEstimate, CpuSystem, CpuSystemConfig};
pub use ice::{IceModel, IceVariant};
pub use ndsearch::{NdSearchAlgorithm, NdSearchModel};
pub use reis_asic::ReisAsicModel;
