//! Model of NDSearch, the graph-traversal near-data ANNS accelerator
//! (Fig. 11).
//!
//! NDSearch executes HNSW / DiskANN-style searches near the flash dies. Graph
//! traversal is inherently sequential in depth — the next vertex to visit is
//! only known after the current vertex has been examined — so its latency is
//! governed by the number of traversal *steps* times the flash read latency,
//! with only the beam width available as parallelism, and with channel/chip
//! conflicts eroding even that (Sec. 3.2). The model exposes the hop count
//! and beam width so the benchmarks can sweep them; the defaults are
//! calibrated to billion-scale beam searches at the recall points of
//! Fig. 11.

use serde::{Deserialize, Serialize};

use reis_core::ReisConfig;
use reis_nand::{Nanos, ProgramScheme};
use reis_workloads::DatasetProfile;

/// Which graph index NDSearch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NdSearchAlgorithm {
    /// In-memory-style HNSW graph laid out in flash.
    Hnsw,
    /// The SSD-resident DiskANN (Vamana) graph.
    DiskAnn,
}

/// Analytic model of NDSearch on a given SSD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NdSearchModel {
    config: ReisConfig,
    algorithm: NdSearchAlgorithm,
    /// Vertices visited per query at the target recall.
    pub hops_per_query: usize,
    /// Traversal beam width (vertex expansions that can proceed in
    /// parallel).
    pub beam_width: usize,
    /// Fraction of beam parallelism lost to channel / chip conflicts caused
    /// by the irregular access pattern.
    pub conflict_factor: f64,
}

impl NdSearchModel {
    /// Create a model with hop counts calibrated for a billion-scale dataset
    /// at roughly 0.93–0.94 Recall@10 (the Fig. 11 operating points).
    pub fn new(config: ReisConfig, algorithm: NdSearchAlgorithm) -> Self {
        let (hops, beam) = match algorithm {
            // HNSW visits fewer vertices but each visit is a dependent flash
            // read; DiskANN uses larger beams over a flatter graph.
            NdSearchAlgorithm::Hnsw => (1_800, 4),
            NdSearchAlgorithm::DiskAnn => (2_600, 8),
        };
        NdSearchModel {
            config,
            algorithm,
            hops_per_query: hops,
            beam_width: beam,
            conflict_factor: 0.35,
        }
    }

    /// The modelled algorithm.
    pub fn algorithm(&self) -> NdSearchAlgorithm {
        self.algorithm
    }

    /// Builder-style override of the hop count (e.g. to model a different
    /// recall target or dataset scale).
    pub fn with_hops(mut self, hops: usize) -> Self {
        self.hops_per_query = hops.max(1);
        self
    }

    /// Per-query latency: dependent flash reads of visited vertices, with
    /// beam-width parallelism degraded by access conflicts, plus the
    /// neighbour-data transfers.
    pub fn query_latency(&self, profile: &DatasetProfile) -> Nanos {
        let timing = &self.config.ssd.timing;
        let effective_beam = (self.beam_width as f64 * (1.0 - self.conflict_factor)).max(1.0);
        let dependent_reads = (self.hops_per_query as f64 / effective_beam).ceil() as u64;
        let read = timing.read_latency(ProgramScheme::Ispp(reis_nand::CellMode::Slc));
        // Each visited vertex pulls its vector plus adjacency list over the
        // channel (vector bytes + ~64 neighbour ids).
        let vertex_bytes = profile.dim * 4 + 64 * 4;
        let transfer = timing.channel_transfer(vertex_bytes) * self.hops_per_query as u64
            / self.config.ssd.geometry.channels as u64;
        read * dependent_reads + transfer
    }

    /// Queries per second at the modelled operating point.
    pub fn qps(&self, profile: &DatasetProfile) -> f64 {
        let secs = self.query_latency(profile).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            1.0 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diskann_and_hnsw_have_distinct_operating_points() {
        let sift = DatasetProfile::sift_1b();
        let hnsw = NdSearchModel::new(ReisConfig::ssd2(), NdSearchAlgorithm::Hnsw);
        let diskann = NdSearchModel::new(ReisConfig::ssd2(), NdSearchAlgorithm::DiskAnn);
        assert_ne!(hnsw.query_latency(&sift), diskann.query_latency(&sift));
        assert_eq!(hnsw.algorithm(), NdSearchAlgorithm::Hnsw);
        assert!(hnsw.qps(&sift) > 0.0);
    }

    #[test]
    fn more_hops_cost_more() {
        let deep = DatasetProfile::deep_1b();
        let base = NdSearchModel::new(ReisConfig::ssd1(), NdSearchAlgorithm::Hnsw);
        let deeper = base.with_hops(base.hops_per_query * 2);
        assert!(deeper.query_latency(&deep) > base.query_latency(&deep));
    }

    #[test]
    fn graph_traversal_latency_is_dominated_by_dependent_reads() {
        // The whole point of the comparison: thousands of dependent flash
        // reads put NDSearch in the multi-millisecond range per query.
        let sift = DatasetProfile::sift_1b();
        let model = NdSearchModel::new(ReisConfig::ssd2(), NdSearchAlgorithm::Hnsw);
        let latency = model.query_latency(&sift);
        assert!(latency > Nanos::from_millis(5));
    }
}
