//! Cross-crate integration tests: the full path from synthetic corpus through
//! indexing, deployment, in-storage search, baselines and the RAG pipeline
//! model.

use reis::ann::flat::FlatIndex;
use reis::ann::metrics::recall_at_k;
use reis::ann::Metric;
use reis::baseline::{
    CpuPrecision, CpuSystem, IceModel, IceVariant, NdSearchAlgorithm, NdSearchModel,
};
use reis::core::{Optimizations, ReisConfig, ReisSystem, VectorDatabase};
use reis::rag::{RagPipeline, RagStage};
use reis::workloads::{DatasetProfile, GroundTruth, SyntheticDataset};

fn scaled_dataset(entries: usize, queries: usize, seed: u64) -> SyntheticDataset {
    SyntheticDataset::generate(
        DatasetProfile::hotpotqa()
            .scaled(entries)
            .with_queries(queries),
        seed,
    )
}

#[test]
fn in_storage_retrieval_matches_host_side_ground_truth() {
    let dataset = scaled_dataset(384, 6, 5);
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 12)
        .expect("database construction");
    let mut reis = ReisSystem::new(ReisConfig::ssd1());
    let db_id = reis.deploy(&database).expect("deployment");
    let truth = GroundTruth::compute(&dataset, 10).expect("ground truth");

    let mut recall = 0.0;
    for (qi, query) in dataset.queries().iter().enumerate() {
        let outcome = reis
            .ivf_search_with_nprobe(db_id, query, 10, 12)
            .expect("in-storage search");
        recall += recall_at_k(&outcome.result_ids(), truth.neighbors(qi), 10);
        // Every returned document must be the chunk of the returned entry.
        for (neighbor, doc) in outcome.results.iter().zip(outcome.documents.iter()) {
            assert_eq!(doc, &dataset.documents()[neighbor.id]);
        }
    }
    recall /= dataset.queries().len() as f64;
    assert!(recall > 0.8, "in-storage recall@10 = {recall}");
}

#[test]
fn in_storage_search_agrees_with_cpu_bq_ivf_algorithm() {
    // REIS executes the same BQ IVF + INT8 rerank algorithm as the CPU
    // implementation in reis-ann; probing every cluster they must agree on
    // the top hit for queries that have an exact match in the corpus.
    let dataset = scaled_dataset(256, 4, 9);
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 8)
        .expect("database construction");
    let mut reis = ReisSystem::new(ReisConfig::ssd1());
    let db_id = reis.deploy(&database).expect("deployment");
    let flat = FlatIndex::new(dataset.vectors().to_vec(), Metric::SquaredL2).expect("flat");
    for base in [3usize, 77, 150] {
        let query = dataset.vectors()[base].clone();
        let outcome = reis
            .ivf_search_with_nprobe(db_id, &query, 5, 8)
            .expect("search");
        assert_eq!(
            outcome.results[0].id, base,
            "self-query must return itself first"
        );
        let exact = flat.search(&query, 1).expect("exact");
        assert_eq!(exact[0].id, base);
    }
}

#[test]
fn optimizations_change_performance_but_not_results() {
    let dataset = scaled_dataset(256, 3, 21);
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 8)
        .expect("database construction");
    let mut full = ReisSystem::new(ReisConfig::ssd1());
    let mut none = ReisSystem::new(ReisConfig::ssd1().with_optimizations(Optimizations::none()));
    let id_full = full.deploy(&database).expect("deploy");
    let id_none = none.deploy(&database).expect("deploy");
    for query in dataset.queries() {
        let a = full
            .ivf_search_with_nprobe(id_full, query, 5, 8)
            .expect("search");
        let b = none
            .ivf_search_with_nprobe(id_none, query, 5, 8)
            .expect("search");
        assert_eq!(
            a.result_ids(),
            b.result_ids(),
            "optimizations must not change results"
        );
        assert!(
            a.total_latency() <= b.total_latency(),
            "optimizations must not slow REIS down"
        );
        assert!(a.activity.fine_entries <= b.activity.fine_entries);
    }
}

#[test]
fn full_scale_speedups_follow_the_paper_ordering() {
    // Whole-pipeline sanity of the headline claims' *shape*: REIS beats
    // CPU-Real, SSD2 beats SSD1, and prior ISP accelerators sit in between
    // or below.
    use reis_bench::fullscale::{estimate_reis, SearchMode};
    let profile = DatasetProfile::wiki_en();
    let cpu = CpuSystem::default();
    let cpu_real = cpu.cpu_real(&profile, 1_000, None, CpuPrecision::Float32);
    let reis1 = estimate_reis(
        &profile,
        &ReisConfig::ssd1(),
        SearchMode::BruteForce,
        0.05,
        10,
    );
    let reis2 = estimate_reis(
        &profile,
        &ReisConfig::ssd2(),
        SearchMode::BruteForce,
        0.05,
        10,
    );
    assert!(reis1.qps > cpu_real.qps(), "REIS must beat CPU-Real on QPS");
    assert!(reis2.qps > reis1.qps, "SSD2 must beat SSD1");
    assert!(
        reis1.qps_per_watt > cpu_real.qps_per_watt(),
        "REIS must beat CPU-Real on energy efficiency"
    );

    let ice = IceModel::new(ReisConfig::ssd1(), IceVariant::Published);
    assert!(
        reis1.qps > ice.qps(&profile, profile.full_entries, 10),
        "REIS must beat ICE for brute-force search"
    );
    let sift = DatasetProfile::sift_1b();
    let nd = NdSearchModel::new(ReisConfig::ssd2(), NdSearchAlgorithm::Hnsw);
    let reis_sift = estimate_reis(
        &sift,
        &ReisConfig::ssd2(),
        SearchMode::Ivf {
            nprobe_fraction: 0.01,
        },
        0.02,
        10,
    );
    assert!(
        reis_sift.qps > nd.qps(&sift),
        "REIS must beat NDSearch at billion scale"
    );
}

#[test]
fn rag_pipeline_bottleneck_shifts_from_retrieval_to_generation() {
    let profile = DatasetProfile::wiki_en();
    let pipeline = RagPipeline::default();
    let cpu = CpuSystem::default();
    let cpu_breakdown = pipeline.cpu_breakdown(&cpu, &profile, CpuPrecision::BinaryWithRerank);
    let reis_breakdown = pipeline.reis_breakdown(0.01);
    assert!(cpu_breakdown.retrieval_fraction() > reis_breakdown.retrieval_fraction() * 10.0);
    assert!(reis_breakdown.fraction(RagStage::Generation) > 0.8);
    assert!(reis_breakdown.total() < cpu_breakdown.total());
}

#[test]
fn batched_search_agrees_with_sequential_search_end_to_end() {
    // The batched front door must be a pure throughput feature: same results,
    // same documents, same modelled latency as issuing the queries one at a
    // time, for any worker count.
    let dataset = scaled_dataset(256, 6, 21);
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 8)
        .expect("database construction");
    let mut reis = ReisSystem::new(ReisConfig::ssd1());
    let db_id = reis.deploy(&database).expect("deployment");

    let queries: Vec<Vec<f32>> = dataset.queries().to_vec();
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| {
            reis.ivf_search_with_nprobe(db_id, q, 10, 4)
                .expect("sequential search")
        })
        .collect();
    for workers in [1usize, 2, 4] {
        let batch = reis
            .ivf_search_batch_with_nprobe(db_id, &queries, 10, 4, workers)
            .expect("batch search");
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(b.result_ids(), s.result_ids(), "workers {workers}");
            assert_eq!(b.documents, s.documents, "workers {workers}");
            assert_eq!(b.total_latency(), s.total_latency(), "workers {workers}");
        }
    }
}
