//! Cross-crate integration tests: the full path from synthetic corpus through
//! indexing, deployment, in-storage search, online mutation, durability,
//! batched execution, multi-device scale-out, baselines and the RAG
//! pipeline model — everything through the public `reis` facade.

use reis::ann::flat::FlatIndex;
use reis::ann::metrics::recall_at_k;
use reis::ann::Metric;
use reis::baseline::{
    CpuPrecision, CpuSystem, IceModel, IceVariant, NdSearchAlgorithm, NdSearchModel,
};
use reis::cluster::ClusterSystem;
use reis::core::{
    BatchFusion, DurableStore, MemVfs, Optimizations, ReisConfig, ReisSystem, VectorDatabase,
};
use reis::rag::{RagPipeline, RagStage};
use reis::workloads::{DatasetProfile, GroundTruth, SyntheticDataset};

fn scaled_dataset(entries: usize, queries: usize, seed: u64) -> SyntheticDataset {
    SyntheticDataset::generate(
        DatasetProfile::hotpotqa()
            .scaled(entries)
            .with_queries(queries),
        seed,
    )
}

#[test]
fn in_storage_retrieval_matches_host_side_ground_truth() {
    let dataset = scaled_dataset(384, 6, 5);
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 12)
        .expect("database construction");
    let mut reis = ReisSystem::new(ReisConfig::ssd1());
    let db_id = reis.deploy(&database).expect("deployment");
    let truth = GroundTruth::compute(&dataset, 10).expect("ground truth");

    let mut recall = 0.0;
    for (qi, query) in dataset.queries().iter().enumerate() {
        let outcome = reis
            .ivf_search_with_nprobe(db_id, query, 10, 12)
            .expect("in-storage search");
        recall += recall_at_k(&outcome.result_ids(), truth.neighbors(qi), 10);
        // Every returned document must be the chunk of the returned entry.
        for (neighbor, doc) in outcome.results.iter().zip(outcome.documents.iter()) {
            assert_eq!(doc, &dataset.documents()[neighbor.id]);
        }
    }
    recall /= dataset.queries().len() as f64;
    assert!(recall > 0.8, "in-storage recall@10 = {recall}");
}

#[test]
fn in_storage_search_agrees_with_cpu_bq_ivf_algorithm() {
    // REIS executes the same BQ IVF + INT8 rerank algorithm as the CPU
    // implementation in reis-ann; probing every cluster they must agree on
    // the top hit for queries that have an exact match in the corpus.
    let dataset = scaled_dataset(256, 4, 9);
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 8)
        .expect("database construction");
    let mut reis = ReisSystem::new(ReisConfig::ssd1());
    let db_id = reis.deploy(&database).expect("deployment");
    let flat = FlatIndex::new(dataset.vectors().to_vec(), Metric::SquaredL2).expect("flat");
    for base in [3usize, 77, 150] {
        let query = dataset.vectors()[base].clone();
        let outcome = reis
            .ivf_search_with_nprobe(db_id, &query, 5, 8)
            .expect("search");
        assert_eq!(
            outcome.results[0].id, base,
            "self-query must return itself first"
        );
        let exact = flat.search(&query, 1).expect("exact");
        assert_eq!(exact[0].id, base);
    }
}

#[test]
fn optimizations_change_performance_but_not_results() {
    let dataset = scaled_dataset(256, 3, 21);
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 8)
        .expect("database construction");
    let mut full = ReisSystem::new(ReisConfig::ssd1());
    let mut none = ReisSystem::new(ReisConfig::ssd1().with_optimizations(Optimizations::none()));
    let id_full = full.deploy(&database).expect("deploy");
    let id_none = none.deploy(&database).expect("deploy");
    for query in dataset.queries() {
        let a = full
            .ivf_search_with_nprobe(id_full, query, 5, 8)
            .expect("search");
        let b = none
            .ivf_search_with_nprobe(id_none, query, 5, 8)
            .expect("search");
        assert_eq!(
            a.result_ids(),
            b.result_ids(),
            "optimizations must not change results"
        );
        assert!(
            a.total_latency() <= b.total_latency(),
            "optimizations must not slow REIS down"
        );
        assert!(a.activity.fine_entries <= b.activity.fine_entries);
    }
}

#[test]
fn full_scale_speedups_follow_the_paper_ordering() {
    // Whole-pipeline sanity of the headline claims' *shape*: REIS beats
    // CPU-Real, SSD2 beats SSD1, and prior ISP accelerators sit in between
    // or below.
    use reis_bench::fullscale::{estimate_reis, SearchMode};
    let profile = DatasetProfile::wiki_en();
    let cpu = CpuSystem::default();
    let cpu_real = cpu.cpu_real(&profile, 1_000, None, CpuPrecision::Float32);
    let reis1 = estimate_reis(
        &profile,
        &ReisConfig::ssd1(),
        SearchMode::BruteForce,
        0.05,
        10,
    );
    let reis2 = estimate_reis(
        &profile,
        &ReisConfig::ssd2(),
        SearchMode::BruteForce,
        0.05,
        10,
    );
    assert!(reis1.qps > cpu_real.qps(), "REIS must beat CPU-Real on QPS");
    assert!(reis2.qps > reis1.qps, "SSD2 must beat SSD1");
    assert!(
        reis1.qps_per_watt > cpu_real.qps_per_watt(),
        "REIS must beat CPU-Real on energy efficiency"
    );

    let ice = IceModel::new(ReisConfig::ssd1(), IceVariant::Published);
    assert!(
        reis1.qps > ice.qps(&profile, profile.full_entries, 10),
        "REIS must beat ICE for brute-force search"
    );
    let sift = DatasetProfile::sift_1b();
    let nd = NdSearchModel::new(ReisConfig::ssd2(), NdSearchAlgorithm::Hnsw);
    let reis_sift = estimate_reis(
        &sift,
        &ReisConfig::ssd2(),
        SearchMode::Ivf {
            nprobe_fraction: 0.01,
        },
        0.02,
        10,
    );
    assert!(
        reis_sift.qps > nd.qps(&sift),
        "REIS must beat NDSearch at billion scale"
    );
}

#[test]
fn rag_pipeline_bottleneck_shifts_from_retrieval_to_generation() {
    let profile = DatasetProfile::wiki_en();
    let pipeline = RagPipeline::default();
    let cpu = CpuSystem::default();
    let cpu_breakdown = pipeline.cpu_breakdown(&cpu, &profile, CpuPrecision::BinaryWithRerank);
    let reis_breakdown = pipeline.reis_breakdown(0.01);
    assert!(cpu_breakdown.retrieval_fraction() > reis_breakdown.retrieval_fraction() * 10.0);
    assert!(reis_breakdown.fraction(RagStage::Generation) > 0.8);
    assert!(reis_breakdown.total() < cpu_breakdown.total());
}

#[test]
fn mutation_and_durability_round_trip_through_the_facade() {
    // Online mutation on a durably opened system, checkpointed, reopened:
    // the recovered corpus answers like the pre-crash one and stays live.
    let dataset = scaled_dataset(96, 2, 33);
    let database = VectorDatabase::flat(dataset.vectors(), dataset.documents_owned())
        .expect("database construction");
    let mem = MemVfs::new();
    let (mut reis, report) =
        ReisSystem::open(ReisConfig::tiny(), DurableStore::new(Box::new(mem.clone())))
            .expect("open fresh store");
    assert!(report.is_none(), "nothing to recover from a fresh store");
    let db_id = reis.deploy(&database).expect("deployment");

    let fresh: Vec<f32> = dataset.vectors()[0].iter().map(|x| x + 0.25).collect();
    let inserted = reis
        .insert(db_id, &fresh, b"freshly inserted".to_vec())
        .expect("insert")
        .ids[0];
    reis.delete(db_id, 7).expect("delete");
    reis.upsert(db_id, 11, &dataset.vectors()[12].clone(), b"upserted doc")
        .expect("upsert");
    reis.save().expect("checkpoint");

    let queries: Vec<Vec<f32>> = vec![fresh.clone(), dataset.queries()[0].clone()];
    let before: Vec<_> = queries
        .iter()
        .map(|q| reis.search(db_id, q, 5).expect("pre-crash search"))
        .collect();
    drop(reis);

    let (mut recovered, report) =
        ReisSystem::recover(ReisConfig::tiny(), DurableStore::new(Box::new(mem)))
            .expect("recovery");
    assert_eq!(report.snapshot_seq, 2, "deploy + explicit save");
    for (query, expected) in queries.iter().zip(&before) {
        let after = recovered
            .search(db_id, query, 5)
            .expect("post-crash search");
        assert_eq!(after.result_ids(), expected.result_ids());
        assert_eq!(after.documents, expected.documents);
    }
    let hit = recovered.search(db_id, &fresh, 1).expect("fresh lookup");
    assert_eq!(hit.results[0].id, inserted as usize);
    assert_eq!(hit.documents[0], b"freshly inserted");

    // The recovered system keeps mutating: ids continue past the watermark.
    let next = recovered
        .insert(db_id, &fresh, b"post recovery".to_vec())
        .expect("post-recovery insert")
        .ids[0];
    assert!(next > inserted);
}

#[test]
fn batch_fusion_modes_agree_end_to_end() {
    // Fused page-major execution and per-worker device replicas are two
    // schedules of the same computation: identical results, documents and
    // per-query modelled latency.
    let dataset = scaled_dataset(256, 6, 27);
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 8)
        .expect("database construction");
    let queries: Vec<Vec<f32>> = dataset.queries().to_vec();

    let mut outcomes = Vec::new();
    for fusion in [BatchFusion::Fused, BatchFusion::Replicas] {
        let mut reis = ReisSystem::new(ReisConfig::ssd1().with_batch_fusion(fusion));
        let db_id = reis.deploy(&database).expect("deployment");
        outcomes.push(
            reis.ivf_search_batch_with_nprobe(db_id, &queries, 10, 4, 4)
                .expect("batch search"),
        );
    }
    let (fused, replicas) = (&outcomes[0], &outcomes[1]);
    for (q, (a, b)) in fused.iter().zip(replicas.iter()).enumerate() {
        assert_eq!(a.result_ids(), b.result_ids(), "query {q}");
        assert_eq!(a.documents, b.documents, "query {q}");
        assert_eq!(a.total_latency(), b.total_latency(), "query {q}");
    }
}

#[test]
fn cluster_facade_matches_a_single_device_end_to_end() {
    // The scale-out aggregator behind `reis::cluster` serves a sharded
    // synthetic corpus bit-identically to one device holding the union —
    // including after routed mutations.
    let dataset = scaled_dataset(120, 4, 41);
    let vectors = dataset.vectors().to_vec();
    let documents = dataset.documents_owned();
    let config = ReisConfig::tiny();

    let mut single = ReisSystem::new(config.with_adaptive_filtering(false));
    let db_id = single
        .deploy(&VectorDatabase::flat(&vectors, documents.clone()).expect("database"))
        .expect("deployment");
    let mut cluster = ClusterSystem::new(config, 4).expect("cluster");
    cluster
        .deploy_flat(&vectors, &documents)
        .expect("sharded deployment");

    for query in dataset.queries() {
        let a = cluster.search(query, 8).expect("cluster search");
        let b = single.search(db_id, query, 8).expect("single search");
        let ids: Vec<usize> = a.results.iter().map(|n| n.id).collect();
        assert_eq!(ids, b.result_ids());
        assert_eq!(a.documents, b.documents);
        assert_eq!(a.activity.activity.fine_entries, b.activity.fine_entries);
    }

    // A routed mutation stays bit-identical: both sides insert the same
    // entry (the cluster mints the same global id a single device would).
    let fresh: Vec<f32> = dataset.queries()[0].clone();
    let cluster_id = cluster
        .insert(&fresh, b"routed insert".to_vec())
        .expect("cluster insert");
    let single_id = single
        .insert(db_id, &fresh, b"routed insert".to_vec())
        .expect("single insert")
        .ids[0];
    assert_eq!(cluster_id, single_id);
    let a = cluster.search(&fresh, 1).expect("cluster search");
    let b = single.search(db_id, &fresh, 1).expect("single search");
    assert_eq!(a.results[0].id, b.results[0].id);
    assert_eq!(a.documents, b.documents);
}

#[test]
fn batched_search_agrees_with_sequential_search_end_to_end() {
    // The batched front door must be a pure throughput feature: same results,
    // same documents, same modelled latency as issuing the queries one at a
    // time, for any worker count.
    let dataset = scaled_dataset(256, 6, 21);
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 8)
        .expect("database construction");
    let mut reis = ReisSystem::new(ReisConfig::ssd1());
    let db_id = reis.deploy(&database).expect("deployment");

    let queries: Vec<Vec<f32>> = dataset.queries().to_vec();
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| {
            reis.ivf_search_with_nprobe(db_id, q, 10, 4)
                .expect("sequential search")
        })
        .collect();
    for workers in [1usize, 2, 4] {
        let batch = reis
            .ivf_search_batch_with_nprobe(db_id, &queries, 10, 4, workers)
            .expect("batch search");
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(b.result_ids(), s.result_ids(), "workers {workers}");
            assert_eq!(b.documents, s.documents, "workers {workers}");
            assert_eq!(b.total_latency(), s.total_latency(), "workers {workers}");
        }
    }
}
