//! # REIS — Retrieval with In-Storage processing
//!
//! This is the facade crate of the REIS workspace. It re-exports every
//! sub-crate so that downstream users can depend on a single `reis` crate:
//!
//! * [`nand`] — NAND flash device simulator (geometry, latches, OOB,
//!   SLC/TLC/ESP programming, peripheral logic, timing).
//! * [`ssd`] — SSD controller simulator (FTL, internal DRAM, embedded cores,
//!   hybrid SLC/TLC partitioning, host command set).
//! * [`ann`] — ANNS algorithm library (IVF, HNSW, LSH, flat search,
//!   binary/INT8/product quantization, reranking, recall metrics).
//! * [`core`] — the REIS system itself: database layout, embedding–document
//!   linkage, R-DB / R-IVF / TTL structures, the in-storage ANNS engine
//!   (with batch-parallel search and intra-query scan sharding) and the
//!   energy model.
//! * [`persist`] — durability: CRC-checksummed snapshots, the mutation
//!   write-ahead log, pluggable storage backends and fault injection
//!   (consumed through `core`'s `ReisSystem::{open, save, recover}`).
//! * [`cluster`] — multi-device scale-out: an aggregator fanning queries
//!   out over N leaf systems with an exact scatter–gather merge, routed
//!   mutations, per-leaf durability plus a cluster manifest, and modelled
//!   straggler hedging.
//! * [`baseline`] — comparator system models (CPU-Real, No-I/O, CPU+BQ, ICE,
//!   ICE-ESP, NDSearch, REIS-ASIC).
//! * [`workloads`] — synthetic dataset generators and ground-truth
//!   computation for the evaluation datasets.
//! * [`rag`] — end-to-end RAG pipeline latency model.
//! * [`telemetry`] — allocation-free metrics registry, per-query trace
//!   spans and Prometheus/JSON exporters, threaded through `core`,
//!   `persist`, `update` and `cluster` (zero overhead when disabled).
//!
//! # Quickstart
//!
//! ```
//! use reis::core::{ReisConfig, ReisSystem, VectorDatabase};
//! use reis::workloads::{DatasetProfile, SyntheticDataset};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small synthetic corpus and index it (IVF + quantization).
//! let dataset =
//!     SyntheticDataset::generate(DatasetProfile::hotpotqa().scaled(256).with_queries(1), 7);
//! let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 8)?;
//!
//! // Deploy it into a simulated REIS SSD and run a top-10 IVF search.
//! let mut reis = ReisSystem::new(ReisConfig::ssd1());
//! let db = reis.deploy(&database)?;
//! let outcome = reis.ivf_search(db, &dataset.queries()[0], 10, 0.94)?;
//! assert_eq!(outcome.results.len(), 10);
//! # Ok(())
//! # }
//! ```

pub use reis_ann as ann;
pub use reis_baseline as baseline;
pub use reis_cluster as cluster;
pub use reis_core as core;
pub use reis_nand as nand;
pub use reis_persist as persist;
pub use reis_rag as rag;
pub use reis_ssd as ssd;
pub use reis_telemetry as telemetry;
pub use reis_workloads as workloads;
